"""Serving demo: HTTP worker, wire queries, feedback sessions, warm snapshots.

Walks the full ``repro.serve`` surface in one process:

1. start an HTTP worker (:class:`~repro.serve.http.ReproServer`) over a
   small synthetic database,
2. run the same frozen :class:`~repro.api.query.Query` in-process and over
   the wire and verify the rankings are identical,
3. drive a two-round relevance-feedback session through the stateless API
   (the token is the only state the client holds),
4. snapshot the warmed service and restore it as a new worker that answers
   the repeated query from the concept cache — zero retrains.

    python examples/serving_demo.py
"""

import tempfile
from pathlib import Path

from repro import Query, RetrievalService, quick_database
from repro.core.feedback import select_examples
from repro.serve import ReproClient, ReproServer, ServiceApp, load_service, save_service


def main() -> None:
    database = quick_database("scenes", images_per_category=6, seed=7)
    service = RetrievalService(database)
    service.warm("dd")
    print(f"serving {database}")

    selection = select_examples(
        database, database.image_ids, "waterfall", n_positive=3, n_negative=3, seed=7
    )
    query = Query(
        positive_ids=selection.positive_ids,
        negative_ids=selection.negative_ids,
        learner="dd",
        params={"scheme": "identical", "max_iterations": 40, "seed": 7},
        top_k=5,
    )

    local = service.query(query)

    with ReproServer(ServiceApp(service), port=0) as server:
        client = ReproClient(server.url)
        health = client.health()
        print(f"worker up at {server.url} (wire v{health['wire_version']})")

        # Served and in-process retrieval are interchangeable: same wire
        # query, bit-identical ranking.
        remote = client.query(query)
        assert remote.ranking.image_ids == local.ranking.image_ids
        print("served top 5:", [entry.image_id for entry in remote.top()])

        # A relevance-feedback loop across stateless requests: the session
        # token is the only state the client keeps.
        round1 = client.feedback(
            learner="dd",
            params=dict(query.params),
            add_positive_ids=selection.positive_ids,
            add_negative_ids=selection.negative_ids,
            top_k=5,
        )
        token = round1["session"]
        false_positives = [
            entry.image_id
            for entry in round1["ranking"]
            if entry.category != "waterfall"
        ][:2]
        round2 = client.feedback(
            token, false_positive_ids=false_positives, top_k=5
        )
        print(
            f"feedback session {token[:8]}…: "
            f"{len(round1['negative_ids'])} -> {len(round2['negative_ids'])} "
            f"negatives, new top: {round2['ranking'].image_ids[:3]}"
        )

        stats = client.stats()
        cache = stats["service"]["cache"]
        print(
            f"server stats: {stats['service']['n_queries']} queries, "
            f"cache {cache['hits']} hits / {cache['misses']} misses"
        )

    # Snapshot the warmed worker and start a new one hot: the repeated
    # query is answered from the restored concept cache — zero retrains.
    with tempfile.TemporaryDirectory() as tmp:
        info = save_service(service, Path(tmp) / "worker.npz")
        print(
            f"snapshot: {info.path.stat().st_size / 1024:.0f} KiB, "
            f"{info.n_cache_entries} cached concepts, corpora {info.corpus_keys}"
        )
        restored, _ = load_service(info.path)
        rerun = restored.query(query)
        cache = restored.cache_stats
        assert rerun.ranking.image_ids == local.ranking.image_ids
        assert cache.misses == 0, "warm worker should not retrain"
        print(
            f"restored worker answered with {cache.hits} cache hit(s), "
            f"{cache.misses} misses — no retraining"
        )


if __name__ == "__main__":
    main()
