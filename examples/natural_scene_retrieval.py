"""Natural-scene retrieval with relevance feedback (the Figure 4-3 workflow).

Runs the paper's full Section 4.1 protocol on the synthetic scene database:
split into potential-training/test sets, pick seeded examples, train three
rounds (promoting the top false positives to negatives after rounds 1 and
2), then rank the held-out test set and print the recall and
precision-recall curves.

    python examples/natural_scene_retrieval.py [category]

where category is one of: waterfall, mountain, field, lake_river, sunset.
"""

import sys

from repro import ExperimentConfig, RetrievalExperiment, build_scene_database
from repro.eval.reporting import ascii_curve


def main(category: str = "waterfall") -> None:
    print(f"target concept: {category!r}")
    print("building the scene database (25 images x 5 categories) ...")
    database = build_scene_database(images_per_category=25, size=(80, 80), seed=3)
    database.precompute_features()

    config = ExperimentConfig(
        target_category=category,
        scheme="inequality",
        beta=0.5,
        n_positive=5,
        n_negative=5,
        rounds=3,
        false_positives_per_round=5,
        training_fraction=0.4,
        start_bag_subset=2,
        start_instance_stride=2,
        max_iterations=60,
        seed=11,
    )
    experiment = RetrievalExperiment(database, config)
    print(
        f"split: {experiment.split.n_potential} potential-training images, "
        f"{experiment.split.n_test} test images"
    )
    print("running 3 feedback rounds ...")
    result = experiment.run()

    for record in result.outcome.rounds:
        promoted = ", ".join(record.added_negative_ids) or "-"
        print(
            f"  round {record.index}: {record.n_positive_bags} pos / "
            f"{record.n_negative_bags} neg bags, train p@10="
            f"{record.training_precision_at_10:.2f}, promoted: {promoted}"
        )

    xs, ys = result.recall_curve.points
    print()
    print(ascii_curve(xs, ys, title="recall curve (test set)", y_range=(0, 1)))
    pr_xs, pr_ys = result.pr_curve.points
    print()
    print(ascii_curve(pr_xs, pr_ys, title="precision-recall curve", y_range=(0, 1)))

    base_rate = result.n_relevant / len(result.relevance)
    print(
        f"\naverage precision = {result.average_precision:.3f} "
        f"(random ~ {base_rate:.2f}); "
        f"precision for recall in [0.3, 0.4] = {result.band_precision:.3f}"
    )
    print(f"total wall time: {result.elapsed_seconds:.1f}s")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "waterfall")
