"""Object-image retrieval: identical weights vs the inequality constraint.

The paper finds that on object databases — uniform backgrounds, little
intra-class variation — forcing all weights to 1 is sometimes the best
treatment, while loosening the constraint (beta = 0.25) helps categories
whose discriminative region is small (Figure 4-14).  This example runs a
car query under three weight treatments on a shared split and compares.

    python examples/object_retrieval.py [category]
"""

import sys

from repro import ExperimentConfig, RetrievalExperiment, build_object_database
from repro.eval.reporting import ascii_table


def main(category: str = "car") -> None:
    print(f"target concept: {category!r}")
    print("building the object database (19 categories x 8 images) ...")
    database = build_object_database(images_per_category=8, size=(80, 80), seed=3)
    database.precompute_features()

    base = ExperimentConfig(
        target_category=category,
        scheme="identical",
        n_positive=3,
        n_negative=5,
        rounds=3,
        false_positives_per_round=3,
        training_fraction=0.5,
        start_bag_subset=2,
        start_instance_stride=2,
        max_iterations=60,
        seed=17,
    )
    variants = {
        "identical weights": base,
        "inequality beta=0.50": base.with_overrides(scheme="inequality", beta=0.5),
        "inequality beta=0.25": base.with_overrides(scheme="inequality", beta=0.25),
    }

    shared_split = None
    rows = []
    for label, config in variants.items():
        experiment = RetrievalExperiment(database, config, split=shared_split)
        shared_split = experiment.split
        print(f"running {label} ...")
        result = experiment.run()
        top5 = sum(1 for e in result.outcome.test_ranking.top(5)
                   if e.category == category)
        rows.append([label, result.average_precision, top5 / 5,
                     result.elapsed_seconds])

    print()
    print(
        ascii_table(
            ["weight treatment", "average precision", "precision@5", "seconds"],
            rows,
            title=f"retrieving {category} images from the object database",
        )
    )
    print(
        "\npaper's expectation: identical weights is competitive on object "
        "images;\nbeta=0.25 can beat beta=0.5 when the discriminative region "
        "is small."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "car")
