"""Quickstart: build a small image database, train on examples, retrieve.

Shows both front doors: the stateful :class:`RetrievalSession` (the
interactive workflow) and the :class:`RetrievalService` query API the
session is built on (one ``Query`` in, one ``QueryResult`` out).

Runs in under a minute::

    python examples/quickstart.py
"""

from repro import Query, RetrievalService, RetrievalSession, quick_database


def main() -> None:
    # 1. Build a small synthetic natural-scene database (5 categories).
    #    In the paper this is 500 COREL photographs; here it is seeded
    #    procedural stand-ins with the same category structure.
    database = quick_database("scenes", images_per_category=12, seed=7)
    print(f"database: {database}")
    print(f"categories: {', '.join(database.categories())}")

    # 2. Open a query session.  The simulated user wants waterfalls and
    #    supplies 4 positive and 4 negative example images.
    session = RetrievalSession(
        database,
        scheme="inequality",  # the paper's best all-round weight scheme
        beta=0.5,
        max_iterations=50,
        start_bag_subset=2,  # the Section 4.3 training speed-up
        seed=7,
    )
    session.add_examples(category="waterfall", n_positive=4, n_negative=4)
    print(f"positive examples: {', '.join(session.positive_ids)}")

    # 3. Train Diverse Density and rank the rest of the database.
    result = session.train_and_rank()
    concept = session.concept
    print(
        f"\nlearned concept: {concept.n_dims} dims, scheme={concept.scheme}, "
        f"NLL={concept.nll:.3f}"
    )

    # 4. Inspect the top matches: waterfalls should dominate.
    print("\ntop 10 retrieved images:")
    hits = 0
    for entry in result.top(10):
        marker = "*" if entry.category == "waterfall" else " "
        hits += entry.category == "waterfall"
        print(f"  {marker} #{entry.rank + 1:2d}  {entry.image_id:20s} "
              f"distance={entry.distance:8.3f}")
    print(f"\nprecision@10 = {hits / 10:.2f} "
          f"(random would give ~{1 / len(database.categories()):.2f})")

    # 5. The same retrieval as one self-contained top-k service query.
    #    The session above is a thin wrapper over this API; swap the
    #    learner name (e.g. "emdd") to change the training algorithm.
    #    top_k=10 truncates the ranking server-side — the vectorised
    #    Ranker scores the whole packed corpus but only the ten best
    #    entries are materialised, while total_candidates still reports
    #    how many images competed.
    service = RetrievalService(database)
    response = service.query(
        Query(
            positive_ids=session.positive_ids,
            negative_ids=session.negative_ids,
            learner="dd",
            params={"scheme": "inequality", "beta": 0.5,
                    "max_iterations": 50, "start_bag_subset": 2, "seed": 7},
            top_k=10,
        )
    )
    same = response.ranking.image_ids == result.image_ids[:10]
    print(f"\ntop-10 service query reproduces the session ranking: {same}")
    print(f"kept {len(response.ranking)} of "
          f"{response.total_candidates} ranked candidates")
    print(f"service timing: fit {response.timing.fit_seconds:.2f}s, "
          f"rank {response.timing.rank_seconds:.2f}s")


if __name__ == "__main__":
    main()
