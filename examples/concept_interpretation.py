"""Interpreting a learned concept (Chapter 5 future work, implemented).

Trains a waterfall concept, then answers the question the thesis left open
("we have not been able to interpret those output values in an intuitive
way"): which region did each positive example match, do the positives agree
on a region, and where on the sampling grid does the weight mass sit?
Finally demonstrates automatic beta selection on the same query.

    python examples/concept_interpretation.py
"""

from repro import build_scene_database
from repro.bags.bag import BagSet
from repro.core.beta_selection import select_beta
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import select_examples
from repro.core.interpretation import consensus_region, explain_bag, weight_saliency
from repro.eval.reporting import ascii_table


def main() -> None:
    print("building a scene database ...")
    database = build_scene_database(images_per_category=12, size=(80, 80), seed=19)
    selection = select_examples(
        database, database.image_ids, "waterfall", n_positive=4, n_negative=4, seed=19
    )

    bag_set = BagSet()
    for image_id in selection.positive_ids:
        bag_set.add(database.bag_for(image_id, label=True))
    for image_id in selection.negative_ids:
        bag_set.add(database.bag_for(image_id, label=False))

    print("training (inequality, beta=0.5) ...")
    trainer = DiverseDensityTrainer(
        TrainerConfig(scheme="inequality", beta=0.5, max_iterations=60,
                      start_bag_subset=2, start_instance_stride=2)
    )
    concept = trainer.train(bag_set).concept

    # 1. Which region did each positive example match?
    rows = []
    feature_sets = {}
    for image_id in selection.positive_ids:
        features = database.record(image_id).features(database.generator)
        feature_sets[image_id] = features
        match = explain_bag(concept, features)
        rows.append([image_id, match.region_name, match.distance, match.margin])
    print()
    print(
        ascii_table(
            ["positive example", "matched region", "distance", "margin"],
            rows,
            title="which region does the concept see in each positive example?",
        )
    )

    # 2. Do the positives agree?
    votes = consensus_region(concept, feature_sets)
    print("\nregion consensus across positives:", votes)

    # 3. Where does the weight mass sit on the 10x10 grid?
    saliency = weight_saliency(concept)
    print(
        f"\nweight concentration (mass in top 10% of cells): "
        f"{saliency.concentration:.2f}"
    )
    print("heaviest cells (row, col, weight):", saliency.top_cells[:3])
    print("row marginals:", " ".join(f"{v:.2f}" for v in saliency.row_marginals))

    # 4. Automatic beta selection (the thesis's open question).
    print("\nselecting beta automatically on the potential training set ...")
    chosen = select_beta(
        database, selection, "waterfall", database.image_ids,
        betas=(0.1, 0.25, 0.5, 0.75, 1.0), max_iterations=40,
    )
    rows = [[c.beta, c.validation_ap] for c in chosen.candidates]
    print(
        ascii_table(
            ["beta", "validation AP"],
            rows,
            title=f"auto-selected beta = {chosen.best_beta:g}",
        )
    )


if __name__ == "__main__":
    main()
