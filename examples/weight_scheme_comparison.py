"""Weight-control schemes side by side on one query (Figures 3-7 .. 3-9).

Trains the same waterfall query under all four weight treatments and prints
each learned concept's weight-distribution profile — reproducing the
paper's observation that unconstrained DD collapses the weights to a few
spikes while the inequality constraint keeps them spread.

    python examples/weight_scheme_comparison.py
"""

from repro import build_scene_database
from repro.bags.bag import BagSet
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import select_examples
from repro.eval.reporting import ascii_table, format_weight_matrix


def main() -> None:
    print("building a small scene database ...")
    database = build_scene_database(images_per_category=10, size=(80, 80), seed=5)
    selection = select_examples(
        database, database.image_ids, "waterfall", n_positive=4, n_negative=4, seed=5
    )
    bag_set = BagSet()
    for image_id in selection.positive_ids:
        bag_set.add(database.bag_for(image_id, label=True))
    for image_id in selection.negative_ids:
        bag_set.add(database.bag_for(image_id, label=False))
    print(f"training set: {bag_set}")

    treatments = {
        "original": TrainerConfig(scheme="original", max_iterations=60,
                                  start_bag_subset=2, start_instance_stride=3),
        "identical": TrainerConfig(scheme="identical", max_iterations=60,
                                   start_bag_subset=2, start_instance_stride=3),
        "alpha_hack (a=50)": TrainerConfig(scheme="alpha_hack", alpha=50.0,
                                           max_iterations=60, start_bag_subset=2,
                                           start_instance_stride=3),
        "inequality (b=0.5)": TrainerConfig(scheme="inequality", beta=0.5,
                                            max_iterations=60, start_bag_subset=2,
                                            start_instance_stride=3),
    }

    rows = []
    inequality_concept = None
    for label, config in treatments.items():
        print(f"training with {label} ...")
        result = DiverseDensityTrainer(config).train(bag_set)
        profile = result.concept.weight_profile()
        rows.append(
            [label, result.concept.nll, profile.fraction_near_zero,
             profile.entropy, profile.mean]
        )
        if label.startswith("inequality"):
            inequality_concept = result.concept

    print()
    print(
        ascii_table(
            ["scheme", "NLL", "near-zero frac", "entropy", "mean weight"],
            rows,
            title="weight-distribution profiles (waterfall query)",
        )
    )

    if inequality_concept is not None:
        _, w_matrix = inequality_concept.as_matrices()
        print("\ninequality-constrained weight matrix (10x10, cf. Figure 3-9):")
        print(format_weight_matrix(w_matrix))


if __name__ == "__main__":
    main()
