"""Database snapshots: save a featurised database and query the restored copy.

Demonstrates the persistence layer: build a database, snapshot it to
``.npz``, reload it, and verify a query session over the restored database
reproduces the original ranking exactly.

    python examples/database_persistence.py
"""

import tempfile
from pathlib import Path

from repro import RetrievalSession, quick_database
from repro.database.persistence import load_database, save_database


def main() -> None:
    database = quick_database("objects", images_per_category=6, seed=13)
    print(f"built {database}")

    session = RetrievalSession(
        database, scheme="identical", max_iterations=50, seed=13
    )
    session.add_examples("camera", n_positive=3, n_negative=3)
    before = session.train_and_rank()
    print("top 5 before snapshot:", [e.image_id for e in before.top(5)])

    with tempfile.TemporaryDirectory() as tmp:
        path = save_database(database, Path(tmp) / "objects.npz")
        size_kb = path.stat().st_size / 1024
        print(f"snapshot written: {path.name} ({size_kb:.0f} KiB)")

        restored = load_database(path)
        print(f"restored {restored}")

        session2 = RetrievalSession(
            restored, scheme="identical", max_iterations=50, seed=13
        )
        session2.add_examples("camera", n_positive=3, n_negative=3)
        after = session2.train_and_rank()
        print("top 5 after restore: ", [e.image_id for e in after.top(5)])

        identical = before.image_ids == after.image_ids
        print(f"\nrankings identical across the snapshot roundtrip: {identical}")
        if not identical:
            raise SystemExit("snapshot roundtrip changed the ranking!")


if __name__ == "__main__":
    main()
