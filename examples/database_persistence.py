"""Database snapshots: save a featurised database and query the restored copy.

Demonstrates the persistence layer together with the query API: build a
database, snapshot it to ``.npz``, reload it, and verify that the *same
frozen* :class:`~repro.api.query.Query` executed by a fresh
:class:`~repro.api.service.RetrievalService` over the restored database
reproduces the original ranking exactly.

    python examples/database_persistence.py
"""

import tempfile
from pathlib import Path

from repro import Query, RetrievalService, quick_database
from repro.core.feedback import select_examples
from repro.database.persistence import load_database, save_database


def main() -> None:
    database = quick_database("objects", images_per_category=6, seed=13)
    print(f"built {database}")

    selection = select_examples(
        database, database.image_ids, "camera", n_positive=3, n_negative=3, seed=13
    )
    query = Query(
        positive_ids=selection.positive_ids,
        negative_ids=selection.negative_ids,
        learner="dd",
        params={"scheme": "identical", "max_iterations": 50, "seed": 13},
        top_k=5,
    )

    before = RetrievalService(database).query(query)
    print("top 5 before snapshot:", [e.image_id for e in before.top()])

    with tempfile.TemporaryDirectory() as tmp:
        path = save_database(database, Path(tmp) / "objects.npz")
        size_kb = path.stat().st_size / 1024
        print(f"snapshot written: {path.name} ({size_kb:.0f} KiB)")

        restored = load_database(path)
        print(f"restored {restored}")

        # The query object is frozen and database-independent, so the very
        # same request runs against the restored copy.
        after = RetrievalService(restored).query(query)
        print("top 5 after restore: ", [e.image_id for e in after.top()])

        identical = before.ranking.image_ids == after.ranking.image_ids
        print(f"\nrankings identical across the snapshot roundtrip: {identical}")
        if not identical:
            raise SystemExit("snapshot roundtrip changed the ranking!")


if __name__ == "__main__":
    main()
