"""Training speed-ups: start subsets, the batched engine, the concept cache.

Part 1 — the paper's own speed-up (Section 4.3, Figure 4-22 workflow):
start minimisation from a subset of the positive bags and watch performance
hold while training time drops.

Part 2 — the PR 3 engine stack on top of it: the same feedback experiment
trained sequentially (one solver per restart), with the batched lockstep
engine (one tensor pass per descent step, bit-identical results), with
dynamic restart pruning, and finally re-run against a shared trained-concept
cache (identical rounds skip training entirely).

    python examples/training_speedup.py
"""

import time

from repro import ConceptCache, ExperimentConfig, RetrievalExperiment, build_scene_database
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import FeedbackLoop, select_examples
from repro.eval.reporting import ascii_table


def subset_sweep(database) -> None:
    """Figure 4-22 workflow — subset-of-bags training speed-up."""
    base = ExperimentConfig(
        target_category="waterfall",
        scheme="inequality",
        beta=0.5,
        n_positive=5,
        n_negative=5,
        rounds=2,
        false_positives_per_round=3,
        training_fraction=0.4,
        start_instance_stride=3,
        max_iterations=50,
        seed=21,
    )
    shared_split = None
    rows = []
    full_band = None
    for k in (1, 2, 3, 5):
        config = base.with_overrides(start_bag_subset=None if k == 5 else k)
        experiment = RetrievalExperiment(database, config, split=shared_split)
        shared_split = experiment.split
        print(f"training from {k}/5 positive bags ...")
        result = experiment.run()
        train_time = result.outcome.final_training.elapsed_seconds
        if k == 5:
            full_band = result.band_precision
        rows.append([f"{k}/5", result.band_precision, train_time])

    for row in rows:
        row.append(row[1] / full_band if full_band else 0.0)

    print()
    print(
        ascii_table(
            ["start bags", "band precision", "final-round train s", "relative"],
            rows,
            title="Figure 4-22 workflow — subset-of-bags training speed-up",
        )
    )
    print(
        "\npaper: 2/5 bags ~ 95% of full performance, 3/5 indistinguishable, "
        "at a fraction of the training time."
    )


def engine_and_cache_comparison(database) -> None:
    """Sequential vs batched vs pruned vs cached-feedback timings."""
    potential = [
        image_id
        for image_id in database.image_ids
        if int(image_id.rsplit("-", 1)[1]) < 8
    ]
    test = [i for i in database.image_ids if i not in set(potential)]
    selection = select_examples(database, potential, "waterfall", 5, 5, seed=4)

    def loop_for(engine: str, margin: float | None, cache: ConceptCache | None):
        trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme="inequality",
                beta=0.5,
                max_iterations=50,
                engine=engine,
                restart_prune_margin=margin,
            )
        )
        return FeedbackLoop(
            corpus=database,
            trainer=trainer,
            target_category="waterfall",
            potential_ids=potential,
            test_ids=test,
            rounds=2,
            false_positives_per_round=3,
            cache=cache,
            warm_start=cache is not None,
        )

    rows = []
    cache = ConceptCache()
    variants = [
        ("sequential", "sequential", None, None),
        ("batched", "batched", None, None),
        ("batched + prune(1.0)", "batched", 1.0, None),
        ("batched + cache (1st run)", "batched", None, cache),
        ("batched + cache (repeat)", "batched", None, cache),
    ]
    for label, engine, margin, shared_cache in variants:
        print(f"running {label} ...")
        started = time.perf_counter()
        outcome = loop_for(engine, margin, shared_cache).run(selection)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                label,
                f"{elapsed:.2f}",
                f"{outcome.final_training.concept.nll:.4f}",
                outcome.final_training.n_starts_pruned,
            ]
        )
    stats = cache.stats
    print()
    print(
        ascii_table(
            ["configuration", "feedback wall s", "final NLL", "pruned"],
            rows,
            title="engine + concept-cache comparison (2 feedback rounds)",
        )
    )
    print(
        f"\nconcept cache: {stats.hits} hits / {stats.misses} misses — the "
        "repeated run retrained nothing; batched equals sequential bit for bit."
    )


def main() -> None:
    print("building the scene database ...")
    database = build_scene_database(images_per_category=20, size=(80, 80), seed=9)
    database.precompute_features()
    subset_sweep(database)
    print()
    engine_and_cache_comparison(database)


if __name__ == "__main__":
    main()
