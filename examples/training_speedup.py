"""The Section 4.3 speed-up: start minimisation from a subset of positive bags.

Sweeps the number of positive bags whose instances seed the gradient-ascent
restarts (the Figure 4-22 experiment, scaled down) and prints performance
against training time — showing that 2-3 of 5 bags retain nearly all the
retrieval quality at a fraction of the cost.

    python examples/training_speedup.py
"""

from repro import ExperimentConfig, RetrievalExperiment, build_scene_database
from repro.eval.reporting import ascii_table


def main() -> None:
    print("building the scene database ...")
    database = build_scene_database(images_per_category=20, size=(80, 80), seed=9)
    database.precompute_features()

    base = ExperimentConfig(
        target_category="waterfall",
        scheme="inequality",
        beta=0.5,
        n_positive=5,
        n_negative=5,
        rounds=2,
        false_positives_per_round=3,
        training_fraction=0.4,
        start_instance_stride=3,
        max_iterations=50,
        seed=21,
    )
    shared_split = None
    rows = []
    full_band = None
    for k in (1, 2, 3, 5):
        config = base.with_overrides(start_bag_subset=None if k == 5 else k)
        experiment = RetrievalExperiment(database, config, split=shared_split)
        shared_split = experiment.split
        print(f"training from {k}/5 positive bags ...")
        result = experiment.run()
        train_time = result.outcome.final_training.elapsed_seconds
        if k == 5:
            full_band = result.band_precision
        rows.append([f"{k}/5", result.band_precision, train_time])

    for row in rows:
        row.append(row[1] / full_band if full_band else 0.0)

    print()
    print(
        ascii_table(
            ["start bags", "band precision", "final-round train s", "relative"],
            rows,
            title="Figure 4-22 workflow — subset-of-bags training speed-up",
        )
    )
    print(
        "\npaper: 2/5 bags ~ 95% of full performance, 3/5 indistinguishable, "
        "at a fraction of the training time."
    )


if __name__ == "__main__":
    main()
