"""Every registered learner answering the same query, via one service.

Demonstrates the ``repro.api`` seam: a single :class:`RetrievalService`
executes the same retrieval request under each registered learner — the
paper's Diverse Density system, the EM-DD extension, the Maron & Lakshmi
Ratan colour baseline and the two sanity rankers — and the batch runs on a
worker pool the way multi-user traffic would.

    python examples/learner_comparison.py
"""

from repro import Query, RetrievalService, quick_database
from repro.core.feedback import select_examples

TARGET = "waterfall"

LEARNERS = {
    "dd": {"scheme": "inequality", "beta": 0.5, "max_iterations": 50,
           "start_bag_subset": 2, "seed": 7},
    "emdd": {"inner_scheme": "identical", "max_inner_iterations": 50,
             "start_bag_subset": 2, "seed": 7},
    "maron-ratan": {"scheme": "identical", "max_iterations": 50,
                    "start_bag_subset": 2, "seed": 7},
    "global-correlation": {"resolution": 8},
    "random": {"seed": 7},
}


def main() -> None:
    database = quick_database("scenes", images_per_category=12, seed=7)
    service = RetrievalService(database)
    print(f"database: {database}")

    selection = select_examples(
        database, database.image_ids, TARGET, n_positive=4, n_negative=4, seed=7
    )
    queries = [
        Query(
            positive_ids=selection.positive_ids,
            negative_ids=selection.negative_ids,
            learner=name,
            params=params,
            top_k=10,
            query_id=name,
        )
        for name, params in LEARNERS.items()
    ]

    print(f"running {len(queries)} learners on 4 workers ...\n")
    results = service.batch_query(queries, workers=4)

    print(f"{'learner':>20s}  {'p@10':>5s}  {'fit s':>6s}  best match")
    for result in results:
        p10 = result.precision_at(10, TARGET)
        best = result.top()[0]
        print(
            f"{result.query.query_id:>20s}  {p10:5.2f}  "
            f"{result.timing.fit_seconds:6.2f}  {best.image_id}"
        )

    print(
        "\nThe MIL learners should beat the no-learning baselines on "
        f"{TARGET!r}; 'random' sits near the base rate "
        f"({1 / len(database.categories()):.2f})."
    )


if __name__ == "__main__":
    main()
