"""Packaging for the ICDE 2000 MIL image-retrieval reproduction.

Kept as a plain ``setup.py`` (no ``wheel``/``build`` requirement) so the
package installs in offline environments; the version is sourced from
``src/repro/version.py`` so there is exactly one place to bump it.
"""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent

_version: dict = {}
exec((_HERE / "src" / "repro" / "version.py").read_text(), _version)

_readme = _HERE / "README.md"
_long_description = _readme.read_text() if _readme.exists() else ""

setup(
    name="repro-mil-retrieval",
    version=_version["__version__"],
    description=(
        "Image database retrieval with multiple-instance learning "
        "(Yang & Lozano-Perez, ICDE 2000 reproduction)"
    ),
    long_description=_long_description,
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Image Recognition",
    ],
)
