"""Figure 3-1 — correlation coefficient for 1-D signals.

Paper: three signal pairs illustrating r = 1 (perfectly correlated),
r ~ 0 (uncorrelated) and r = -1 (perfectly inversely correlated).

Reproduction claim: the three generated pairs hit their targets exactly
(+1, 0, -1 up to floating point).
"""

import pytest

from repro.datasets.signals import perfectly_correlated_pair
from repro.eval.reporting import ascii_table
from repro.experiments.correlation_demos import figure_3_1
from repro.imaging.correlation import correlation_coefficient


def test_figure_3_1(benchmark, report):
    rows = benchmark.pedantic(figure_3_1, rounds=1, iterations=1)
    by_label = {r.label: r.correlation for r in rows}
    assert by_label["perfectly correlated"] == pytest.approx(1.0)
    assert by_label["uncorrelated"] == pytest.approx(0.0, abs=1e-9)
    assert by_label["inversely correlated"] == pytest.approx(-1.0)

    table = ascii_table(
        ["signal pair", "paper r", "measured r"],
        [[r.label, r.expected, r.correlation] for r in rows],
        title="Figure 3-1 — 1-D correlation demonstrations",
    )
    report(table + "\nshape holds: all three panels exact")


def test_1d_correlation_kernel_speed(benchmark):
    """Microbenchmark: one 1-D correlation evaluation."""
    first, second = perfectly_correlated_pair(seed=1, n_samples=2000)
    value = benchmark(lambda: correlation_coefficient(first, second))
    assert value == pytest.approx(1.0)
