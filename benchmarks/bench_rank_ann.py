"""Extension bench — hash-coded approximate top-k vs the exact rank paths.

Not a paper artefact.  The approximate tier (:mod:`repro.index.ann`) puts
a signed-random-projection coarse filter in front of the exact ranker:
per-bag envelope summaries are hashed into packed bit codes, a banded
multi-table lookup plus a Hamming sweep selects a candidate set (15% of
the corpus by default), and only the candidates are re-ranked exactly.
This bench builds the same clustered synthetic corpus as
``bench_rank_sharded`` (re-packed in clustered-centroid order — the
``repro serve --rank-mode approx --reorder`` configuration), then races:

* the exhaustive :class:`~repro.core.retrieval.Ranker`,
* the exact sharded path (:class:`~repro.core.sharding.ShardedRanker`
  over a prebuilt index — the PR 5 serving configuration), and
* :class:`~repro.index.ann.ApproxRanker` at default knobs,

and measures recall@10 / recall@50 of the approximate ordering against
the exact one, plus the fraction of bags the approx path evaluated
exactly (its probe budget + bound-pruned re-rank, from the coarse
index's own counters).

Assertions (at >= 4096 bags, where the serving tiers engage): recall@10
and recall@50 at default knobs clear ``REPRO_ANN_BENCH_FLOOR`` (default
0.9), while the approx path exactly evaluates under 25% of the corpus.
``REPRO_ANN_BENCH_BAGS`` overrides the corpus size (default 100k, the
acceptance configuration).  Wall-clock speedups are recorded in
``BENCH_ann.json`` for trend tracking but never gated — shared CI
runners make timing floors flaky, and the recall/evaluated-fraction pair
is the property this tier actually promises.

One-off costs (centroid reorder, shard-index build, coarse-tier build)
are timed and reported separately: a serving worker pays them once and
snapshots/shared-memory segments carry all three
(:mod:`repro.database.persistence` format v4, :mod:`repro.serve.shm`).
"""

import os
import time

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.core.sharding import ShardIndex, ShardedRanker
from repro.datasets.synth import ScenarioConfig, feature_center
from repro.eval.reporting import ascii_table
from repro.index.ann import ApproxRanker, CoarseIndex, recall_at_k

from bench_rank_sharded import clustered_corpus, selective_concept

N_BAGS = int(os.environ.get("REPRO_ANN_BENCH_BAGS", "100000"))
RECALL_FLOOR = float(os.environ.get("REPRO_ANN_BENCH_FLOOR", "0.9"))
MAX_EVALUATED_FRACTION = 0.25
ASSERT_SCALE = 4096  # below this the tiers fall back / evaluate everything
REPEATS = 5


def unselective_concept(config: ScenarioConfig) -> LearnedConcept:
    """A concept at the global centroid: every cluster is competitive.

    The bound-pruner's worst case — the top-k threshold sits inside the
    bulk of the distance distribution, so envelope lower bounds prune
    almost nothing and the exact sharded path degrades toward exhaustive.
    The hash filter's cost stays bounded at its candidate budget
    regardless, which is the regime the approximate tier exists for.
    """
    centers = np.stack(
        [feature_center(config, category) for category in config.categories]
    )
    return LearnedConcept(
        t=centers.mean(axis=0),
        w=np.full(config.feature_dims, 0.5),
        nll=0.0,
    )


def test_approx_rank_recall_and_speed(report, bench_json, best_of):
    packed, config = clustered_corpus(N_BAGS, seed=11)
    concept = selective_concept(config, seed=23)

    reorder_started = time.perf_counter()
    packed, _ = packed.reordered_by_centroid()
    reorder_s = time.perf_counter() - reorder_started

    build_started = time.perf_counter()
    index = ShardIndex.build(packed)
    packed.adopt_shard_index(index)
    index_s = time.perf_counter() - build_started

    build_started = time.perf_counter()
    coarse = CoarseIndex.build(packed, index=index)
    packed.adopt_coarse_index(coarse)
    coarse_s = time.perf_counter() - build_started

    exhaustive = Ranker(auto_shard=False)
    sharded = ShardedRanker()
    approx = ApproxRanker()

    # Quality before timing: recall of the approximate ordering against
    # the exact one (the sharded path is ordering-identical to exhaustive;
    # tests/test_property_sharded_rank proves it).
    exact_50 = sharded.rank(concept, packed, top_k=50, index=index)
    approx_50 = approx.rank(concept, packed, top_k=50)
    recall_10 = recall_at_k(exact_50, approx_50, 10)
    recall_50 = recall_at_k(exact_50, approx_50, 50)
    stats = coarse.stats()
    evaluated_fraction = (
        stats["mean_evaluated"] / packed.n_bags if packed.n_bags else 0.0
    )

    exhaustive_s = best_of(
        REPEATS, lambda: exhaustive.rank(concept, packed, top_k=50)
    )
    sharded_s = best_of(
        REPEATS, lambda: sharded.rank(concept, packed, top_k=50, index=index)
    )
    approx_s = best_of(REPEATS, lambda: approx.rank(concept, packed, top_k=50))
    speedup_vs_exhaustive = (
        exhaustive_s / approx_s if approx_s > 0 else float("inf")
    )
    speedup_vs_sharded = sharded_s / approx_s if approx_s > 0 else float("inf")

    # The pruning-hostile regime: an unselective concept, where the exact
    # sharded path cannot prune but the hash filter's cost stays bounded.
    hard = unselective_concept(config)
    hard_exact = sharded.rank(hard, packed, top_k=50, index=index)
    hard_approx = approx.rank(hard, packed, top_k=50)
    hard_recall_50 = recall_at_k(hard_exact, hard_approx, 50)
    hard_sharded_s = best_of(
        REPEATS, lambda: sharded.rank(hard, packed, top_k=50, index=index)
    )
    hard_approx_s = best_of(REPEATS, lambda: approx.rank(hard, packed, top_k=50))
    hard_speedup = (
        hard_sharded_s / hard_approx_s if hard_approx_s > 0 else float("inf")
    )

    rows = [
        ["exhaustive Ranker", f"{exhaustive_s * 1e3:.2f}", "1.0x", "-"],
        ["sharded exact (PR 5 path)", f"{sharded_s * 1e3:.2f}",
         f"{exhaustive_s / sharded_s:.1f}x", "1.000"],
        [f"approx ({stats['n_bits']} bits, {stats['n_tables']} tables)",
         f"{approx_s * 1e3:.2f}", f"{speedup_vs_exhaustive:.1f}x",
         f"{recall_50:.3f}"],
        ["sharded exact, unselective concept", f"{hard_sharded_s * 1e3:.2f}",
         f"{exhaustive_s / hard_sharded_s:.1f}x", "1.000"],
        ["approx, unselective concept", f"{hard_approx_s * 1e3:.2f}",
         f"{exhaustive_s / hard_approx_s:.1f}x", f"{hard_recall_50:.3f}"],
        ["centroid reorder (one-off)", f"{reorder_s * 1e3:.2f}", "-", "-"],
        ["shard index build (one-off)", f"{index_s * 1e3:.2f}", "-", "-"],
        ["coarse tier build (one-off)", f"{coarse_s * 1e3:.2f}", "-", "-"],
    ]
    report(
        ascii_table(
            ["rank path", f"best of {REPEATS} (ms)", "speedup", "recall@50"],
            rows,
            title=(
                f"approx rank bench: {packed.n_bags} bags, "
                f"recall@10={recall_10:.3f}, "
                f"evaluated {evaluated_fraction:.1%} of bags exactly"
            ),
        )
    )
    bench_json("ann", "approx_vs_exact", {
        "n_bags": packed.n_bags,
        "n_instances": packed.n_instances,
        "top_k": 50,
        "n_bits": stats["n_bits"],
        "n_tables": stats["n_tables"],
        "band_bits": stats["band_bits"],
        "recall_at_10": recall_10,
        "recall_at_50": recall_50,
        "evaluated_fraction": evaluated_fraction,
        "bucket_hit_rate": stats["hit_rate"],
        "mean_candidates": stats["mean_candidates"],
        "reorder_seconds": reorder_s,
        "index_build_seconds": index_s,
        "coarse_build_seconds": coarse_s,
        "exhaustive_seconds": exhaustive_s,
        "sharded_seconds": sharded_s,
        "approx_seconds": approx_s,
        "approx_ops_per_s": 1.0 / approx_s,
        "speedup_vs_exhaustive": speedup_vs_exhaustive,
        "speedup_vs_sharded": speedup_vs_sharded,
        "unselective_sharded_seconds": hard_sharded_s,
        "unselective_approx_seconds": hard_approx_s,
        "unselective_speedup_vs_sharded": hard_speedup,
        "unselective_recall_at_50": hard_recall_50,
    })

    # Sanity at any scale: the approx results are true survivors with
    # exact distances (subset-of-exact membership is the deep property;
    # tests/test_property_ann_rank proves it on adversarial corpora).
    exact_by_id = dict(zip(exact_50.image_ids, exact_50.distances))
    for entry in approx_50:
        if entry.image_id in exact_by_id:
            assert entry.distance == exact_by_id[entry.image_id]

    if N_BAGS >= ASSERT_SCALE:
        assert recall_10 >= RECALL_FLOOR and recall_50 >= RECALL_FLOOR, (
            f"approx recall@10={recall_10:.3f} / recall@50={recall_50:.3f} "
            f"below the {RECALL_FLOOR} floor at {N_BAGS} bags"
        )
        assert evaluated_fraction < MAX_EVALUATED_FRACTION, (
            f"approx path evaluated {evaluated_fraction:.1%} of bags "
            f"exactly (must stay under {MAX_EVALUATED_FRACTION:.0%})"
        )
