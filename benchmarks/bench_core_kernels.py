"""Throughput microbenchmarks of the core computational kernels.

Not a paper artefact — these quantify the building blocks every experiment
leans on, so regressions in the hot paths are visible independently of the
end-to-end figures:

* one Diverse Density NLL + gradient evaluation (the inner loop of
  training),
* one exact projection onto the weight constraint set,
* one image's full feature extraction (the database preprocessing cost),
* ranking a thousand bags against a concept (the query-time cost).
"""

import numpy as np

from repro.bags.bag import Bag, BagSet
from repro.core.concept import LearnedConcept
from repro.core.objective import DiverseDensityObjective
from repro.core.projection import project_weights
from repro.core.retrieval import PackedCorpus, Ranker, RetrievalCandidate
from repro.datasets.base import category_rng
from repro.datasets.scenes import render_scene
from repro.imaging.features import FeatureConfig, FeatureExtractor
from repro.imaging.image import GrayImage, to_gray


def _paper_sized_objective() -> tuple[DiverseDensityObjective, np.ndarray, np.ndarray]:
    """5 positive + 15 negative bags of 40 x 100-dim instances (paper shape)."""
    rng = np.random.default_rng(0)
    bag_set = BagSet()
    for index in range(5):
        bag_set.add(
            Bag(instances=rng.normal(size=(40, 100)), label=True, bag_id=f"p{index}")
        )
    for index in range(15):
        bag_set.add(
            Bag(instances=rng.normal(size=(40, 100)), label=False, bag_id=f"n{index}")
        )
    return DiverseDensityObjective(bag_set), rng.normal(size=100), rng.uniform(0.1, 1, 100)


def test_objective_gradient_evaluation(benchmark):
    objective, t, w = _paper_sized_objective()
    value, grad_t, grad_w = benchmark(lambda: objective.value_and_grad(t, w))
    assert np.isfinite(value)
    assert grad_t.shape == (100,)
    assert grad_w.shape == (100,)


def test_weight_projection(benchmark):
    rng = np.random.default_rng(1)
    y = rng.normal(0, 1, size=100)
    projected = benchmark(lambda: project_weights(y, beta=0.5))
    assert projected.sum() >= 0.5 * 100 - 1e-6


def test_feature_extraction_per_image(benchmark):
    pixels = to_gray(render_scene("waterfall", category_rng(0, "waterfall", 0), (96, 96)))
    image = GrayImage(pixels=pixels, image_id="bench")
    extractor = FeatureExtractor(FeatureConfig(resolution=10))
    features = benchmark(lambda: extractor.extract(image))
    assert features.n_dims == 100
    assert 1 <= features.n_instances <= 40


def test_ranking_thousand_bags(benchmark):
    # The canonical query-time path: rank a cached packed corpus (see
    # bench_rank_corpus.py for the loop-vs-vectorized comparison).
    rng = np.random.default_rng(2)
    concept = LearnedConcept(t=rng.normal(size=100), w=np.ones(100), nll=0.0)
    packed = PackedCorpus.from_candidates(
        RetrievalCandidate(
            image_id=f"img-{index:04d}",
            category="x",
            instances=rng.normal(size=(40, 100)),
        )
        for index in range(1000)
    )
    ranker = Ranker()
    result = benchmark(lambda: ranker.rank(concept, packed))
    assert len(result) == 1000
