"""Extension bench — what deadline propagation costs a healthy pool.

Not a paper artefact.  The resilience layer (:mod:`repro.serve.resilience`)
stamps a ``deadline_ms`` budget on every hop, swaps the dispatcher's
blocking ``recv`` for a budget-bounded ``poll`` and re-checks expiry at
each boundary.  All of that must be noise on the healthy path: this bench
answers the same rank requests through one :class:`WorkerPool` twice —
once with no deadline (the pre-resilience dispatch shape) and once with a
generous per-request budget that never expires — and asserts the budgeted
path costs at most ``REPRO_RESILIENCE_MAX_OVERHEAD`` (default 5%) over
the bare one, with bit-identical rankings.

A second, report-only section measures the failure path: a stalled
worker with a tight deadline answers its 504 in roughly the budget, not
the stall (the no-hang guarantee, timed).

``REPRO_RESILIENCE_BENCH_BAGS`` overrides the corpus size.  Results land
in ``BENCH_resilience.json`` via the shared JSON reporter.
"""

import os
import time

import numpy as np

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.datasets.synth import ScenarioConfig, corpus_from_config, feature_center
from repro.eval.reporting import ascii_table
from repro.serve import codec
from repro.serve.workers import WorkerDispatchApp, WorkerPool
from repro.testing.faults import FaultPlan, FaultSpec

N_BAGS = int(os.environ.get("REPRO_RESILIENCE_BENCH_BAGS", "20000"))
MAX_OVERHEAD = float(os.environ.get("REPRO_RESILIENCE_MAX_OVERHEAD", "0.05"))
N_WORKERS = 2
N_DIMS = 16
N_CLUSTERS = 64
TOP_K = 50
N_REQUESTS = 32
REPEATS = 5
GENEROUS_MS = 120_000.0
TIGHT_MS = 300.0
STALL_SECONDS = 30.0


def clustered_corpus(n_bags: int, seed: int = 11):
    config = ScenarioConfig(
        name="bench-resilience",
        mode="feature",
        categories=tuple(f"cluster-{c:02d}" for c in range(N_CLUSTERS)),
        bags_per_category=1,
        seed=seed,
        feature_dims=N_DIMS,
        instances_per_bag=6,
        cluster_spread=0.05,
    ).with_total_bags(n_bags)
    return corpus_from_config(config), config


def rank_requests(config: ScenarioConfig, seed: int = 23) -> list[dict]:
    rng = np.random.default_rng(seed)
    payloads = []
    for i in range(N_REQUESTS):
        center = feature_center(config, config.categories[i % N_CLUSTERS])
        concept = LearnedConcept(
            t=center + rng.normal(scale=0.02, size=config.feature_dims),
            w=rng.uniform(0.5, 1.0, size=config.feature_dims),
            nll=0.0,
        )
        payloads.append(codec.envelope("rank", {
            "concept": codec.encode_concept(concept), "top_k": TOP_K,
        }))
    return payloads


def _drain(app, payloads, deadline_ms=None) -> list:
    replies = []
    for payload in payloads:
        send = dict(payload)
        if deadline_ms is not None:
            send["deadline_ms"] = deadline_ms
        status, reply = app.handle("rank", send)
        assert status == 200, reply
        replies.append(reply)
    return replies


def test_deadline_path_overhead(report, bench_json, best_of):
    packed, config = clustered_corpus(N_BAGS)
    service = RetrievalService(packed)
    payloads = rank_requests(config)

    with WorkerPool.from_service(service, N_WORKERS) as pool:
        app = WorkerDispatchApp(pool)

        # Correctness first: a generous budget changes nothing but time.
        bare = _drain(app, payloads)
        budgeted = _drain(app, payloads, deadline_ms=GENEROUS_MS)
        for mine, theirs in zip(bare, budgeted):
            assert mine["ranking"] == theirs["ranking"], (
                "deadline stamping changed a ranking"
            )

        bare_s = best_of(REPEATS, lambda: _drain(app, payloads))
        budget_s = best_of(
            REPEATS, lambda: _drain(app, payloads, deadline_ms=GENEROUS_MS)
        )
        assert pool.resilience.get("deadline_expiries") == 0
    overhead = budget_s / bare_s - 1.0 if bare_s > 0 else 0.0

    # Failure path (fresh pool): a 30s stall answers its 504 in roughly
    # the 300ms budget — the no-hang guarantee, timed.
    plan = FaultPlan(
        seed=0,
        faults=(FaultSpec(kind="stall", worker=0, after_requests=1,
                          seconds=STALL_SECONDS),),
    )
    with WorkerPool.from_service(service, 1, fault_plan=plan) as pool:
        app = WorkerDispatchApp(pool)
        send = dict(payloads[0])
        send["deadline_ms"] = TIGHT_MS
        started = time.perf_counter()
        status, reply = app.handle("rank", send)
        expiry_s = time.perf_counter() - started
        assert status == 504, reply
        assert expiry_s < STALL_SECONDS / 2, (
            f"504 took {expiry_s:.1f}s — the deadline did not cut the stall"
        )

    rows = [
        ["no deadline (blocking recv)", f"{bare_s * 1e3:.1f}", "-"],
        [f"deadline {GENEROUS_MS/1000:.0f}s (poll + stamping)",
         f"{budget_s * 1e3:.1f}", f"{overhead:+.1%}"],
        [f"504 on a {STALL_SECONDS:.0f}s stall ({TIGHT_MS:.0f}ms budget)",
         f"{expiry_s * 1e3:.1f}", "-"],
    ]
    report(
        ascii_table(
            ["dispatch path", f"{N_REQUESTS} ranks, best of {REPEATS} (ms)",
             "overhead"],
            rows,
            title=(
                f"resilience bench: {packed.n_bags} bags, top_k={TOP_K}, "
                f"{N_WORKERS} workers"
            ),
        )
    )
    bench_json("resilience", "deadline_path_overhead", {
        "n_bags": packed.n_bags,
        "n_dims": N_DIMS,
        "top_k": TOP_K,
        "n_requests": N_REQUESTS,
        "n_workers": N_WORKERS,
        "bare_seconds": bare_s,
        "budgeted_seconds": budget_s,
        "overhead_fraction": overhead,
        "max_overhead_allowed": MAX_OVERHEAD,
        "stall_504_seconds": expiry_s,
        "stall_seconds": STALL_SECONDS,
        "tight_deadline_ms": TIGHT_MS,
        "rankings_identical": True,
    })

    assert overhead <= MAX_OVERHEAD, (
        f"deadline-path dispatch costs {overhead:.1%} over bare dispatch "
        f"(budget: {MAX_OVERHEAD:.0%})"
    )
