"""Figures 4-3 / 4-4 — sample runs with 3 rounds of training.

Paper: waterfall retrieval (scenes) and car retrieval (objects), each with
5 positive / 5 negative initial examples and 5 false positives promoted to
negatives after rounds 1 and 2; the final top-ranked test images are
dominated by the target category.

Reproduction claims: the final ranking beats the category base rate by a
wide margin on both databases, and training-set precision does not
collapse across rounds.
"""

from repro.eval.reporting import ascii_table
from repro.experiments.sample_runs import figure_4_3, figure_4_4


def _report_run(run, base_rate: float, report) -> None:
    result = run.result
    k = min(12, len(result.relevance))
    precision_at_k = float(result.relevance[:k].mean())
    rows = [
        [record.index, record.n_positive_bags, record.n_negative_bags,
         record.training_precision_at_10]
        for record in result.outcome.rounds
    ]
    table = ascii_table(
        ["round", "pos bags", "neg bags", "train p@10"],
        rows,
        title=f"{run.figure} — retrieving {run.target_category} (3 rounds)",
    )
    report(
        table
        + f"\nfinal test ranking: precision@{k}={precision_at_k:.2f}, "
        f"AP={result.average_precision:.3f} (base rate {base_rate:.2f})\n"
        "paper: top retrieved images dominated by the target category"
    )


def test_figure_4_3_waterfalls(benchmark, report, scale):
    run = benchmark.pedantic(lambda: figure_4_3(scale), rounds=1, iterations=1)
    result = run.result
    base_rate = result.n_relevant / len(result.relevance)
    assert result.average_precision > base_rate + 0.1
    _report_run(run, base_rate, report)


def test_figure_4_4_cars(benchmark, report, scale):
    run = benchmark.pedantic(lambda: figure_4_4(scale), rounds=1, iterations=1)
    result = run.result
    base_rate = result.n_relevant / len(result.relevance)
    assert result.average_precision > base_rate + 0.1
    _report_run(run, base_rate, report)
