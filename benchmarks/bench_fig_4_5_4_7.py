"""Figures 4-5 / 4-6 / 4-7 — recall and precision-recall curves.

Paper: the Figure 4-3 waterfall run yields a convex recall curve (well above
the random 45-degree line) and a PR curve well above the 0.2 base-rate flat
line; Figure 4-7 shows the "misleading" PR-curve shape when the first
retrieval is wrong but the next seven are right.

Reproduction claims: recall-curve area beats the diagonal; PR curve beats
the base rate at every sampled recall below 0.5; the misleading curve
starts at 0 and recovers to 7/8.
"""

import numpy as np
import pytest

from repro.eval.reporting import ascii_curve
from repro.experiments.sample_runs import figure_4_7, figures_4_5_4_6


def test_figures_4_5_4_6(benchmark, report, scale):
    pair = benchmark.pedantic(lambda: figures_4_5_4_6(scale), rounds=1, iterations=1)
    recall_curve, pr_curve = pair.recall_curve, pair.pr_curve

    # Fig 4-5: convex recall curve = positive area above the diagonal.
    assert recall_curve.convexity_gain() > 0.05

    # Fig 4-6: PR above base rate in the working range.
    n_total = recall_curve.n_retrieved
    base_rate = recall_curve.n_relevant / n_total
    grid, precisions = pr_curve.sampled(np.array([0.1, 0.2, 0.3, 0.4, 0.5]))
    assert np.mean(precisions) > base_rate

    xs, ys = recall_curve.points
    recall_plot = ascii_curve(
        xs, ys, title="Figure 4-5 — recall curve (waterfalls)", y_range=(0, 1)
    )
    pr_xs, pr_ys = pr_curve.points
    pr_plot = ascii_curve(
        pr_xs, pr_ys, title="Figure 4-6 — precision-recall curve", y_range=(0, 1)
    )
    report(
        recall_plot
        + "\n"
        + pr_plot
        + f"\nrecall-curve area={recall_curve.area():.3f} (random=0.5); "
        f"mean precision@recall<=0.5 = {np.mean(precisions):.3f} "
        f"(base rate {base_rate:.2f})"
    )


def test_figure_4_7_misleading_curve(benchmark, report):
    curve = benchmark.pedantic(figure_4_7, rounds=1, iterations=1)
    recalls, precisions = curve.points
    assert precisions[0] == pytest.approx(0.0)
    assert precisions[7] == pytest.approx(7 / 8)
    plot = ascii_curve(
        recalls, precisions,
        title="Figure 4-7 — a somewhat misleading precision-recall curve",
        y_range=(0, 1),
    )
    report(
        plot
        + "\npaper: first image wrong (precision pinned low at the left edge) "
        "but the next 7 are correct\n"
        f"measured: precision after 1st = {precisions[0]:.2f}, after 8th = "
        f"{precisions[7]:.2f}"
    )
