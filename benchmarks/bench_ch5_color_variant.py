"""Chapter 5 extension — the RGB-tripled colour feature variant.

The thesis reports: "We used RGB values separately and used a similar
approach as we did with gray-scale images, tripling the number of dimensions
of feature vectors.  No significant improvements have been observed."

This bench reproduces that *negative result*: the colour variant runs the
same waterfall protocol through :class:`repro.imaging.color_features.
RgbRegionCorpus` and is compared with the gray pipeline on the same split.
Claims: both beat the base rate; the colour variant does not significantly
out-perform gray (within 0.15 AP), matching the thesis's conclusion.
"""

from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import FeedbackLoop, select_examples
from repro.eval.curves import PrecisionRecallCurve
from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
from repro.eval.reporting import ascii_table
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.imaging.color_features import RgbRegionCorpus
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


def _run_color(database, split, scale, seed: int):
    corpus = RgbRegionCorpus(
        database,
        FeatureConfig(resolution=10, region_family=region_family("default20")),
    )
    selection = select_examples(
        corpus, split.potential_ids, "waterfall", n_positive=5, n_negative=5, seed=seed
    )
    base = base_config_kwargs(scale)
    loop = FeedbackLoop(
        corpus=corpus,
        trainer=DiverseDensityTrainer(
            TrainerConfig(
                scheme="inequality",
                beta=0.5,
                max_iterations=base["max_iterations"],
                start_bag_subset=base["start_bag_subset"],
                start_instance_stride=base["start_instance_stride"],
                seed=seed,
            )
        ),
        target_category="waterfall",
        potential_ids=split.potential_ids,
        test_ids=split.test_ids,
        rounds=base["rounds"],
        false_positives_per_round=5,
    )
    outcome = loop.run(selection)
    relevance = outcome.test_ranking.relevance("waterfall")
    n_relevant = sum(
        1 for i in split.test_ids if corpus.category_of(i) == "waterfall"
    )
    return PrecisionRecallCurve(relevance, n_relevant).average_precision()


def test_color_variant_no_significant_improvement(benchmark, report, scale):
    def run_both():
        database = scene_database(scale)
        gray_cfg = ExperimentConfig(
            target_category="waterfall",
            scheme="inequality",
            beta=0.5,
            seed=33,
            **base_config_kwargs(scale),
        )
        gray_experiment = RetrievalExperiment(database, gray_cfg)
        split = gray_experiment.split
        gray_ap = gray_experiment.run().average_precision
        color_ap = _run_color(database, split, scale, seed=33)
        base_rate = sum(
            1 for i in split.test_ids if database.category_of(i) == "waterfall"
        ) / len(split.test_ids)
        return gray_ap, color_ap, base_rate

    gray_ap, color_ap, base_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert gray_ap > base_rate
    assert color_ap > base_rate
    # The thesis's negative result: colour does not significantly improve.
    assert color_ap - gray_ap <= 0.15

    table = ascii_table(
        ["pipeline", "AP (waterfalls)"],
        [
            ["gray-scale (paper default)", gray_ap],
            ["RGB-tripled (Ch. 5 variant)", color_ap],
        ],
        title="Chapter 5 — colour feature variant vs gray (waterfalls)",
    )
    report(
        table
        + "\npaper: 'No significant improvements have been observed' with RGB "
        "tripling\n"
        f"measured: color - gray = {color_ap - gray_ap:+.3f} AP "
        f"(base rate {base_rate:.2f})"
    )
