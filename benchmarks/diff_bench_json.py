"""Diff two directories of ``BENCH_*.json`` reports (report-only).

Usage::

    python benchmarks/diff_bench_json.py PREVIOUS_DIR CURRENT_DIR

Prints one table per ``BENCH_<name>.json`` comparing every numeric metric
in the previous and current runs, with the relative change.  Non-numeric
fields, missing files, and unparsable JSON are noted, never fatal: this
script is CI's perf-trajectory commentary, not a gate, so it **always
exits 0**.  Regressions are for humans to read, not for the build to
block on — shared runners are far too noisy for wall-clock assertions
beyond the loose floors the benches themselves own.

Stdlib only (CI runs it before any dependency install step).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _load(path: Path) -> dict | None:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"  [skip] {path}: {exc}")
        return None
    return data if isinstance(data, dict) else None


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}"
    return f"{value:.5f}"


def _diff_entry(entry: str, prev: dict, curr: dict) -> list[list[str]]:
    rows: list[list[str]] = []
    for key in sorted(set(prev) | set(curr)):
        before, after = prev.get(key), curr.get(key)
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (before, after)
        )
        if not numeric:
            if before != after:
                rows.append([f"{entry}.{key}", repr(before), repr(after), "-"])
            continue
        if before == after:
            continue
        if before:
            change = f"{(after - before) / abs(before) * 100.0:+.1f}%"
        else:
            change = "-"
        rows.append([f"{entry}.{key}", _fmt(before), _fmt(after), change])
    return rows


def _print_table(title: str, rows: list[list[str]]) -> None:
    headers = ["metric", "previous", "current", "change"]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ]
    print(title)
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    print()


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} PREVIOUS_DIR CURRENT_DIR")
        return 0
    previous_dir, current_dir = Path(argv[1]), Path(argv[2])
    current_files = sorted(current_dir.glob("BENCH_*.json"))
    if not current_files:
        print(f"no BENCH_*.json in {current_dir}; nothing to diff")
        return 0
    print(f"bench diff: {previous_dir} -> {current_dir}\n")
    for current_path in current_files:
        previous_path = previous_dir / current_path.name
        if not previous_path.exists():
            print(f"{current_path.name}: new in this run (no previous data)\n")
            continue
        prev, curr = _load(previous_path), _load(current_path)
        if prev is None or curr is None:
            continue
        rows: list[list[str]] = []
        for entry in sorted(set(prev) | set(curr)):
            entry_prev, entry_curr = prev.get(entry), curr.get(entry)
            if not isinstance(entry_prev, dict) or not isinstance(entry_curr, dict):
                rows.append([entry, "present" if entry_prev else "-",
                             "present" if entry_curr else "-", "-"])
                continue
            rows.extend(_diff_entry(entry, entry_prev, entry_curr))
        if rows:
            _print_table(current_path.name, rows)
        else:
            print(f"{current_path.name}: unchanged\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
