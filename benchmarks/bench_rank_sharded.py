"""Extension bench — sharded bound-pruned top-k vs the exhaustive Ranker.

Not a paper artefact.  The rank-index redesign gave the serving path a
two-stage shape: per-bag envelope lower bounds prune bags that provably
cannot enter the top ``k``, shards fan out over threads, and survivors are
re-ranked exactly.  This bench builds a clustered synthetic corpus (the
regime the index exists for: a *selective* concept whose top-k concentrates
in a small region of feature space), then races:

* the exhaustive :class:`~repro.core.retrieval.Ranker` (every instance
  scored on every query), against
* :class:`~repro.core.sharding.ShardedRanker` over a prebuilt
  :class:`~repro.core.sharding.ShardIndex` (the serving configuration — a
  warmed worker holds the index, so queries pay only the bound pass plus
  the survivors).

Assertions (at full scale): the orderings are identical — pruning is
exact, the deep equivalence lives in ``tests/test_property_sharded_rank``
— and the sharded path is at least 4x faster at 100k bags / ``top_k=50``.
The one-off index build is timed and reported separately (it is amortised
across a worker's lifetime and snapshotted by ``repro.serve``).

``REPRO_SHARD_BENCH_BAGS`` overrides the corpus size; the speedup floor
only applies at >= 100k bags, where the exhaustive kernel's instance
streaming dominates.  ``REPRO_SHARD_BENCH_FLOOR`` overrides the floor
itself: the default 4x holds on dedicated hardware, but shared CI runners
(2 oversubscribed cores, thread-scheduling noise) set it to 1.0 so the
step asserts "sharded beats exhaustive" without flaking on wall-clock
variance.  Results land in ``BENCH_rank.json`` via the shared JSON
reporter.

The corpus comes from :mod:`repro.datasets.synth` in feature mode: a
"clean" scenario (tight clusters, no clutter) over 64 categories is
exactly the regime this index exists for, and building it through the
generator means the bench exercises the same deterministic
``(seed, category, index)`` derivation the million-bag corpora use —
any corpus this bench times can be regenerated bit-identically.
"""

import os
import time

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.core.sharding import ShardIndex, ShardedRanker
from repro.datasets.synth import ScenarioConfig, corpus_from_config, feature_center
from repro.eval.reporting import ascii_table

N_BAGS = int(os.environ.get("REPRO_SHARD_BENCH_BAGS", "100000"))
N_DIMS = 16
N_CLUSTERS = 64
TOP_K = 50
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SHARD_BENCH_FLOOR", "4.0"))
FULL_SCALE = 100_000
REPEATS = 5


def clustered_corpus(n_bags: int, seed: int = 11):
    """A synth feature-mode corpus: 64 tight clusters, ingested per category.

    Returns the packed corpus and its :class:`ScenarioConfig`.  Cluster
    spread is small relative to centre separation, so per-bag envelopes
    are tight and a concept near one centre is *selective*: almost every
    other cluster's bags are bound-prunable.  The generator emits bags
    category-by-category — exactly how every
    :class:`~repro.database.store.ImageDatabase` in this repo is populated
    — which is the layout the index's coarse group envelopes exploit.
    """
    config = ScenarioConfig(
        name="bench-clusters",
        mode="feature",
        categories=tuple(f"cluster-{c:02d}" for c in range(N_CLUSTERS)),
        bags_per_category=1,
        seed=seed,
        feature_dims=N_DIMS,
        instances_per_bag=6,
        cluster_spread=0.05,
    ).with_total_bags(n_bags)
    return corpus_from_config(config), config


def selective_concept(config: ScenarioConfig, seed: int = 23) -> LearnedConcept:
    """A trained-concept stand-in sitting near one category's centre."""
    rng = np.random.default_rng(seed)
    center = feature_center(config, config.categories[0])
    return LearnedConcept(
        t=center + rng.normal(scale=0.02, size=config.feature_dims),
        w=rng.uniform(0.5, 1.0, size=config.feature_dims),
        nll=0.0,
    )


def test_sharded_rank_vs_exhaustive(report, bench_json, best_of):
    packed, config = clustered_corpus(N_BAGS)
    concept = selective_concept(config)
    exhaustive = Ranker(auto_shard=False)
    sharded = ShardedRanker()

    build_started = time.perf_counter()
    index = ShardIndex.build(packed)
    build_s = time.perf_counter() - build_started

    # Orderings must be identical before anything is timed.
    fast = sharded.rank(concept, packed, top_k=TOP_K, index=index)
    slow = exhaustive.rank(concept, packed, top_k=TOP_K)
    assert fast.image_ids == slow.image_ids, "pruned ranking diverged"
    assert fast.total_candidates == slow.total_candidates == packed.n_bags

    exhaustive_s = best_of(
        REPEATS, lambda: exhaustive.rank(concept, packed, top_k=TOP_K)
    )
    sharded_s = best_of(
        REPEATS, lambda: sharded.rank(concept, packed, top_k=TOP_K, index=index)
    )
    sequential_s = best_of(
        REPEATS,
        lambda: ShardedRanker(workers=1).rank(
            concept, packed, top_k=TOP_K, index=index
        ),
    )
    speedup = exhaustive_s / sharded_s if sharded_s > 0 else float("inf")
    sequential_speedup = (
        exhaustive_s / sequential_s if sequential_s > 0 else float("inf")
    )

    rows = [
        ["exhaustive Ranker", f"{exhaustive_s * 1e3:.2f}", "1.0x"],
        ["sharded (1 thread)", f"{sequential_s * 1e3:.2f}",
         f"{sequential_speedup:.1f}x"],
        [f"sharded ({index.n_shards} shards, threaded)",
         f"{sharded_s * 1e3:.2f}", f"{speedup:.1f}x"],
        ["index build (one-off)", f"{build_s * 1e3:.2f}", "-"],
    ]
    report(
        ascii_table(
            ["rank path", f"best of {REPEATS} (ms)", "speedup"],
            rows,
            title=(
                f"sharded rank bench: {packed.n_bags} bags, "
                f"{packed.n_instances} instances, top_k={TOP_K}"
            ),
        )
    )
    bench_json("rank", "sharded_vs_exhaustive", {
        "n_bags": packed.n_bags,
        "n_instances": packed.n_instances,
        "n_dims": N_DIMS,
        "top_k": TOP_K,
        "n_shards": index.n_shards,
        "index_build_seconds": build_s,
        "exhaustive_seconds": exhaustive_s,
        "sharded_seconds": sharded_s,
        "sharded_sequential_seconds": sequential_s,
        "exhaustive_ops_per_s": 1.0 / exhaustive_s,
        "sharded_ops_per_s": 1.0 / sharded_s,
        "speedup_vs_exhaustive": speedup,
        "orderings_identical": True,
    })

    # Below full scale both paths take microseconds and the index's
    # bound-pass/threading overhead legitimately loses to the exhaustive
    # kernel (the reason AUTO_SHARD_MIN_BAGS exists), so reduced-scale
    # runs only report the timing — the ordering-identity assertion above
    # is the correctness gate.
    if N_BAGS >= FULL_SCALE:
        assert speedup > 1.0 and speedup >= SPEEDUP_FLOOR, (
            f"sharded top-{TOP_K} only {speedup:.1f}x faster than the "
            f"exhaustive ranker (needs >= {SPEEDUP_FLOOR}x at {N_BAGS} bags)"
        )
