"""Ablation benches for design choices DESIGN.md calls out.

Not paper artefacts — these isolate two pipeline decisions the thesis makes
in passing, so their value is measured rather than assumed:

* the **low-variance region filter** ("throw out regions whose variances
  are below a certain threshold, since low-variance regions are not likely
  to be interesting", Section 3.2);
* the **mirror instances** ("left-right mirror images occur very frequently
  in image databases and we would like to regard them as the same",
  Section 3.2).

Each ablation runs the standard waterfall experiment with the feature
switched off and reports the delta.  Mirrors and the filter should not
*hurt*; the filter should also shrink bags (its actual purpose is noise and
cost reduction).
"""

from repro.database.splits import split_database
from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
from repro.datasets.loader import build_scene_database
from repro.eval.reporting import ascii_table
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family


def _database(scale, variance_threshold: float, include_mirrors: bool):
    config = FeatureConfig(
        resolution=10,
        region_family=region_family("default20"),
        include_mirrors=include_mirrors,
        variance_threshold=variance_threshold,
    )
    database = build_scene_database(
        images_per_category=scale.scene_images_per_category,
        size=scale.image_size,
        seed=20000,
        feature_config=config,
    )
    database.precompute_features()
    return database


def _run(scale, database, seed: int = 31):
    config = ExperimentConfig(
        target_category="waterfall",
        scheme="inequality",
        beta=0.5,
        max_iterations=scale.max_iterations,
        start_bag_subset=scale.start_bag_subset,
        start_instance_stride=scale.start_instance_stride,
        rounds=scale.rounds,
        training_fraction=scale.scene_training_fraction,
        seed=seed,
    )
    return RetrievalExperiment(database, config).run()


def test_ablation_variance_filter(benchmark, report, scale):
    def run_both():
        with_filter = _run(scale, _database(scale, 1e-4, True))
        without_filter = _run(scale, _database(scale, 0.0, True))
        return with_filter, without_filter

    with_filter, without_filter = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # The filter is a noise/cost optimisation; it must not cost much quality.
    assert with_filter.average_precision >= without_filter.average_precision - 0.2

    table = ascii_table(
        ["configuration", "AP (waterfalls)"],
        [
            ["variance filter on (paper)", with_filter.average_precision],
            ["variance filter off", without_filter.average_precision],
        ],
        title="Ablation — low-variance region filter (Section 3.2)",
    )
    report(table)


def test_ablation_mirror_instances(benchmark, report, scale):
    def run_both():
        with_mirrors = _run(scale, _database(scale, 1e-4, True))
        without_mirrors = _run(scale, _database(scale, 1e-4, False))
        return with_mirrors, without_mirrors

    with_mirrors, without_mirrors = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert with_mirrors.average_precision >= without_mirrors.average_precision - 0.2

    table = ascii_table(
        ["configuration", "AP (waterfalls)"],
        [
            ["mirrors on (paper, 40 inst/bag)", with_mirrors.average_precision],
            ["mirrors off (20 inst/bag)", without_mirrors.average_precision],
        ],
        title="Ablation — left-right mirror instances (Section 3.2)",
    )
    report(table)
