"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark prints a "paper vs measured" report for its artefact; the
``report`` fixture collects those blocks and emits them after the run so
they survive pytest-benchmark's own output.

The ``bench_json`` fixture additionally writes machine-readable results —
``BENCH_rank.json``, ``BENCH_serve.json``, ... — so the perf trajectory
(ops/s, speedups, corpus sizes) is tracked across PRs and uploadable as a
CI artifact.  ``REPRO_BENCH_JSON_DIR`` overrides the output directory
(default: this ``benchmarks/`` directory).

Scale is controlled by ``REPRO_BENCH_SCALE`` (quick | medium | paper); see
:mod:`repro.experiments.scale`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.scale import resolve_scale

_REPORTS: list[str] = []


@pytest.fixture(scope="session")
def scale():
    """The active benchmark scale."""
    return resolve_scale()


@pytest.fixture(scope="session")
def best_of():
    """Callable timing ``fn`` ``repeats`` times and returning the minimum."""
    import time

    def _best(repeats: int, fn) -> float:
        elapsed = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            elapsed.append(time.perf_counter() - started)
        return min(elapsed)

    return _best


@pytest.fixture(scope="session")
def bench_json():
    """Callable merging one benchmark's results into ``BENCH_<name>.json``.

    ``bench_json("rank", "sharded_vs_exhaustive", {...})`` read-modifies
    ``BENCH_rank.json`` so several benchmark files can contribute entries
    to one report without clobbering each other.
    """
    directory = Path(
        os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).resolve().parent)
    )

    def _write(name: str, entry: str, payload: dict) -> Path:
        path = directory / f"BENCH_{name}.json"
        results: dict = {}
        if path.exists():
            try:
                results = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                results = {}
        results[entry] = payload
        directory.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture(scope="session")
def report():
    """Callable collecting report blocks printed at session end."""

    def _add(block: str) -> None:
        _REPORTS.append(block)
        print("\n" + block)

    return _add


def pytest_sessionfinish(session, exitstatus):
    if _REPORTS:
        print("\n" + "=" * 78)
        print("REPRODUCTION REPORTS ({} artefacts)".format(len(_REPORTS)))
        print("=" * 78)
        for block in _REPORTS:
            print()
            print(block)
