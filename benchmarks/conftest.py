"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark prints a "paper vs measured" report for its artefact; the
``report`` fixture collects those blocks and emits them after the run so
they survive pytest-benchmark's own output.

Scale is controlled by ``REPRO_BENCH_SCALE`` (quick | medium | paper); see
:mod:`repro.experiments.scale`.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import resolve_scale

_REPORTS: list[str] = []


@pytest.fixture(scope="session")
def scale():
    """The active benchmark scale."""
    return resolve_scale()


@pytest.fixture(scope="session")
def report():
    """Callable collecting report blocks printed at session end."""

    def _add(block: str) -> None:
        _REPORTS.append(block)
        print("\n" + block)

    return _add


def pytest_sessionfinish(session, exitstatus):
    if _REPORTS:
        print("\n" + "=" * 78)
        print("REPRODUCTION REPORTS ({} artefacts)".format(len(_REPORTS)))
        print("=" * 78)
        for block in _REPORTS:
            print()
            print(block)
