"""Extension bench — cross-process scatter/gather rank vs single process.

Not a paper artefact.  The PR 7 worker pool parallelises across
*requests*; :class:`~repro.serve.scatter.ScatterRanker` makes a **single**
rank query scale out: the coordinator cuts the
:class:`~repro.core.sharding.ShardIndex`'s contiguous shard partition into
one bag range per worker, ships each range as an internal
``rank_fragment`` request seeded with an argpartition-sample threshold,
and merges the compact ``(positions, distances)`` fragments with the same
id-tie-broken partial sort the single-process path ends with.

This bench builds the same clustered corpus as ``bench_rank_sharded``
(64 tight clusters — the regime the rank index exists for) and races,
query by query:

* the exhaustive :class:`~repro.core.retrieval.Ranker` (no pruning),
* the single-process :class:`~repro.core.sharding.ShardedRanker`
  (PR 5 bound-pruned path, thread fan-out inside one process),
* the scatter path through :class:`~repro.serve.workers.WorkerDispatchApp`
  (bound pass + survivor evaluation split across worker *processes*).

Assertions (always): all three orderings are identical — ids and
bit-identical distances — and every query scattered (no fallbacks).
At full scale on a multi-core machine with >= 2 workers the scatter path
must beat single-process sharded by ``REPRO_SCATTER_BENCH_FLOOR``
(default 1.2x; CI's oversubscribed runners set 1.0).  On a single-core
machine the speedup is report-only: worker processes time-slicing one
core measure IPC overhead, not the subsystem.

``REPRO_SCATTER_BENCH_BAGS`` overrides the corpus size,
``REPRO_SCATTER_BENCH_WORKERS`` the pool width.  Results land in
``BENCH_scatter.json`` via the shared JSON reporter.
"""

import os

import numpy as np

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.core.sharding import ShardedRanker
from repro.datasets.synth import ScenarioConfig, corpus_from_config, feature_center
from repro.eval.reporting import ascii_table
from repro.serve import codec
from repro.serve.app import handle_safely
from repro.serve.workers import WorkerDispatchApp, WorkerPool

N_BAGS = int(os.environ.get("REPRO_SCATTER_BENCH_BAGS", "100000"))
N_WORKERS = int(os.environ.get("REPRO_SCATTER_BENCH_WORKERS", "2"))
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SCATTER_BENCH_FLOOR", "1.2"))
N_DIMS = 16
N_CLUSTERS = 64
TOP_K = 50
N_QUERIES = 8
FULL_SCALE = 100_000
REPEATS = 3


def clustered_corpus(n_bags: int, seed: int = 11):
    """Same corpus family as ``bench_rank_sharded`` (see its docstring)."""
    config = ScenarioConfig(
        name="bench-clusters",
        mode="feature",
        categories=tuple(f"cluster-{c:02d}" for c in range(N_CLUSTERS)),
        bags_per_category=1,
        seed=seed,
        feature_dims=N_DIMS,
        instances_per_bag=6,
        cluster_spread=0.05,
    ).with_total_bags(n_bags)
    return corpus_from_config(config), config


def selective_concepts(config: ScenarioConfig, seed: int = 23):
    """One selective concept per cluster — the regime pruning thrives in."""
    rng = np.random.default_rng(seed)
    concepts = []
    for i in range(N_QUERIES):
        center = feature_center(config, config.categories[i % N_CLUSTERS])
        concepts.append(LearnedConcept(
            t=center + rng.normal(scale=0.02, size=config.feature_dims),
            w=rng.uniform(0.5, 1.0, size=config.feature_dims),
            nll=0.0,
        ))
    return concepts


def _rank_all_exhaustive(packed, concepts):
    ranker = Ranker(auto_shard=False)
    return [ranker.rank(c, packed, top_k=TOP_K) for c in concepts]


def _rank_all_sharded(packed, concepts):
    ranker = ShardedRanker()
    return [ranker.rank(c, packed, top_k=TOP_K) for c in concepts]


def _rank_all_scatter(app, payloads):
    results = []
    for payload in payloads:
        status, reply = handle_safely(app, "rank", payload)
        assert status == 200, reply
        results.append(codec.decode_ranking(reply["ranking"]))
    return results


def test_scatter_vs_single_process(report, bench_json, best_of):
    packed, config = clustered_corpus(N_BAGS)
    service = RetrievalService(packed)
    concepts = selective_concepts(config)
    payloads = [
        codec.envelope("rank", {
            "concept": codec.encode_concept(c), "top_k": TOP_K,
        })
        for c in concepts
    ]
    index = packed.shard_index()  # build once; every path reuses the cache

    with WorkerPool.from_service(service, N_WORKERS) as pool:
        app = WorkerDispatchApp(pool, service=service, min_scatter_bags=1)
        assert app.scatter is not None

        # Correctness before anything is timed: three paths, one ordering.
        exhaustive = _rank_all_exhaustive(packed, concepts)
        sharded = _rank_all_sharded(packed, concepts)
        scattered = _rank_all_scatter(app, payloads)
        for a, b, c in zip(exhaustive, sharded, scattered):
            assert a.image_ids == b.image_ids == c.image_ids, (
                "scatter ranking diverged from the single-process paths"
            )
            np.testing.assert_array_equal(a.distances, b.distances)
            np.testing.assert_array_equal(a.distances, c.distances)
        scatter_stats = app.scatter.stats()
        assert scatter_stats["requests"] == N_QUERIES
        assert scatter_stats["fallbacks"] == 0, "a scatter fell back"
        fan_out = scatter_stats["last"]["fan_out"]
        assert fan_out == min(N_WORKERS, index.n_shards)

        exhaustive_s = best_of(
            REPEATS, lambda: _rank_all_exhaustive(packed, concepts)
        )
        sharded_s = best_of(
            REPEATS, lambda: _rank_all_sharded(packed, concepts)
        )
        scatter_s = best_of(
            REPEATS, lambda: _rank_all_scatter(app, payloads)
        )
        last = app.scatter.stats()["last"]

    speedup_sharded = sharded_s / scatter_s if scatter_s > 0 else float("inf")
    speedup_exhaustive = (
        exhaustive_s / scatter_s if scatter_s > 0 else float("inf")
    )
    n_cores = os.cpu_count() or 1

    rows = [
        ["exhaustive Ranker", f"{exhaustive_s * 1e3:.1f}",
         f"{exhaustive_s / sharded_s:.2f}x"],
        ["single-process sharded", f"{sharded_s * 1e3:.1f}", "1.0x"],
        [f"scatter across {N_WORKERS} workers", f"{scatter_s * 1e3:.1f}",
         f"{speedup_sharded:.2f}x"],
    ]
    report(
        ascii_table(
            ["rank path", f"{N_QUERIES} queries, best of {REPEATS} (ms)",
             "vs sharded"],
            rows,
            title=(
                f"scatter bench: {packed.n_bags} bags, top_k={TOP_K}, "
                f"fan-out {fan_out}, {n_cores} cores"
            ),
        )
    )
    bench_json("scatter", "scatter_vs_single_process", {
        "n_bags": packed.n_bags,
        "n_instances": packed.n_instances,
        "n_dims": N_DIMS,
        "top_k": TOP_K,
        "n_queries": N_QUERIES,
        "n_workers": N_WORKERS,
        "n_cores": n_cores,
        "fan_out": fan_out,
        "n_shards": index.n_shards,
        "survivors_per_worker": last["survivors_per_worker"],
        "seed_threshold_finite": last["seed_threshold"] is not None,
        "exhaustive_seconds": exhaustive_s,
        "sharded_seconds": sharded_s,
        "scatter_seconds": scatter_s,
        "speedup_vs_sharded": speedup_sharded,
        "speedup_vs_exhaustive": speedup_exhaustive,
        "fallbacks": 0,
        "rankings_identical": True,
    })

    # A 1-core machine runs the workers by time-slicing; the scatter path
    # then pays IPC overhead for no parallelism and the number is
    # report-only (same regime as bench_serve_workers).
    if N_BAGS >= FULL_SCALE and n_cores >= 2 and N_WORKERS >= 2:
        assert speedup_sharded >= SPEEDUP_FLOOR, (
            f"scatter across {N_WORKERS} workers only {speedup_sharded:.2f}x "
            f"faster than single-process sharded (needs >= "
            f"{SPEEDUP_FLOOR}x at {N_BAGS} bags on {n_cores} cores)"
        )
