"""Figure 4-22 — starting minimisation from a subset of positive bags.

Paper: using mean precision for recall in [0.3, 0.4] as the measure,
starting gradient ascent from only 2 of 5 positive bags yields ~95% of full
performance, and 3 of 5 is "indistinguishable from the original", while
training time shrinks roughly linearly with the subset size.

Reproduction claims:
* band precision at k = 3 reaches >= 80% of the full (k = 5) value;
* band precision at k = 2 reaches >= 60% of the full value;
* training time at k = 2 is under 70% of the k = 5 time.
"""

from repro.eval.reporting import ascii_table
from repro.experiments.start_subsets import figure_4_22

PAPER_RELATIVE = {1: None, 2: 0.95, 3: 1.0, 4: 1.0, 5: 1.0}


def test_figure_4_22(benchmark, report, scale):
    sweep = benchmark.pedantic(lambda: figure_4_22(scale), rounds=1, iterations=1)
    by_k = {point.n_start_bags: point for point in sweep.points}

    assert sweep.full_band_precision > 0, "full training must reach the recall band"
    assert by_k[3].relative_performance >= 0.8
    assert by_k[2].relative_performance >= 0.6
    assert by_k[2].training_seconds <= 0.7 * by_k[5].training_seconds

    rows = [
        [
            point.n_start_bags,
            point.band_precision,
            point.relative_performance,
            "-" if PAPER_RELATIVE[point.n_start_bags] is None
            else PAPER_RELATIVE[point.n_start_bags],
            point.training_seconds,
        ]
        for point in sweep.points
    ]
    table = ascii_table(
        ["start bags (of 5)", "band precision", "measured relative",
         "paper relative", "train s"],
        rows,
        title="Figure 4-22 — minimisation from positive-bag subsets "
        "(waterfalls, precision at recall 0.3-0.4)",
    )
    report(
        table
        + "\npaper: 2/5 bags ~ 95% of full performance; 3/5 indistinguishable; "
        "time scales with subset size\n"
        f"measured: k=2 -> {by_k[2].relative_performance:.2f}x, "
        f"k=3 -> {by_k[3].relative_performance:.2f}x of full band precision"
    )
