"""Figures 3-7 / 3-8 / 3-9 — DD output (t, w) under three weight schemes.

Paper: on a waterfall query, the original DD algorithm pushes "most of the
weight factors ... very close to zero, leaving only a few large weight
values" (Fig 3-7); identical weights are flat at 1 (Fig 3-8); the beta = 0.5
inequality constraint keeps at least half the weight mass, spreading the
weights out (Fig 3-9).

Reproduction claims:
* original scheme's near-zero weight fraction >> constrained scheme's;
* identical scheme's weights exactly 1;
* constrained scheme satisfies sum(w) >= 0.5 * n and has higher weight
  entropy than the original scheme.
"""

import numpy as np

from repro.core.projection import is_feasible
from repro.eval.reporting import ascii_table
from repro.experiments.weight_outputs import figures_3_7_to_3_9


def test_figures_3_7_to_3_9(benchmark, report, scale):
    outputs = benchmark.pedantic(
        lambda: figures_3_7_to_3_9(scale), rounds=1, iterations=1
    )
    by_scheme = {o.scheme: o for o in outputs}

    original = by_scheme["original"]
    identical = by_scheme["identical"]
    constrained = by_scheme["inequality"]

    # Fig 3-8: identical weights are exactly flat.
    np.testing.assert_allclose(identical.concept.w, 1.0)

    # Fig 3-9: the constraint is honoured.
    n = constrained.concept.n_dims
    assert is_feasible(constrained.concept.w, 0.5, tolerance=1e-5)

    # Fig 3-7 vs 3-9: the original scheme concentrates weight mass far more.
    assert (
        original.profile.fraction_near_zero
        >= constrained.profile.fraction_near_zero
    )
    assert original.profile.entropy <= constrained.profile.entropy + 1e-9

    rows = [
        [
            o.figure,
            o.scheme,
            o.profile.fraction_near_zero,
            o.profile.entropy,
            o.profile.total / o.concept.n_dims,
        ]
        for o in outputs
    ]
    table = ascii_table(
        ["figure", "scheme", "near-zero frac", "entropy", "mean weight"],
        rows,
        title="Figures 3-7/3-8/3-9 — weight distributions by scheme (waterfall query)",
    )
    report(
        table
        + "\npaper:    original collapses to a few spikes; identical flat at 1; "
        "beta=0.5 keeps >= half the mass\n"
        f"measured: original near-zero={original.profile.fraction_near_zero:.2f} "
        f"vs constrained {constrained.profile.fraction_near_zero:.2f}; "
        f"constrained mean weight={constrained.profile.total / n:.2f} (>= 0.5)"
    )
