"""Extension bench — serving-layer throughput (wire codec + HTTP workers).

Not a paper artefact.  The ``repro.serve`` redesign added a versioned wire
format and an HTTP worker; this bench measures what crossing the process
boundary costs and what a warm snapshot buys:

* **codec round-trip** — encode+decode of a full ``QueryResult`` (ranking,
  concept, training diagnostics) must be cheap relative to ranking itself;
* **end-to-end requests/sec over localhost** — the same repeated wire
  query against a *cold* worker (concept cache disabled, every request
  trains) and a *warm* worker (snapshot-restored concept cache, every
  request is a cache hit).

Claims: the wire round-trip reproduces the ranking exactly, and the warm
worker sustains strictly higher throughput than the cold one (it skips the
multi-start training entirely).
"""

import time

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.core.feedback import select_examples
from repro.eval.reporting import ascii_table
from repro.experiments.databases import scene_database
from repro.serve import (
    ReproClient,
    ReproServer,
    ServiceApp,
    decode,
    encode,
    load_service,
    save_service,
    wire_equal,
)

CODEC_REPEATS = 200
REQUEST_REPEATS = 5


def _build_query(database, scale) -> Query:
    category = database.categories()[0]
    selection = select_examples(
        database, database.image_ids, category, n_positive=3, n_negative=3, seed=47
    )
    return Query(
        positive_ids=selection.positive_ids,
        negative_ids=selection.negative_ids,
        learner="dd",
        params={
            "scheme": "identical",
            "max_iterations": scale.max_iterations,
            "start_bag_subset": scale.start_bag_subset,
            "start_instance_stride": scale.start_instance_stride,
            "seed": 47,
        },
        top_k=10,
        query_id=category,
    )


def _requests_per_second(client: ReproClient, query: Query) -> tuple[float, tuple]:
    started = time.perf_counter()
    ids = None
    for _ in range(REQUEST_REPEATS):
        ids = client.query(query).ranking.image_ids
    elapsed = time.perf_counter() - started
    return REQUEST_REPEATS / elapsed, ids


def test_serve_throughput(benchmark, report, scale, tmp_path, bench_json):
    def run_all():
        database = scene_database(scale)
        service = RetrievalService(database)
        service.warm("dd")
        query = _build_query(database, scale)
        reference = service.query(query)

        # Codec round-trip throughput on a real result payload.
        started = time.perf_counter()
        for _ in range(CODEC_REPEATS):
            rebuilt = decode(encode(reference))
        codec_s = (time.perf_counter() - started) / CODEC_REPEATS
        codec_exact = wire_equal(rebuilt, reference)

        # Warm snapshot taken after the service has trained the concept.
        snapshot_path = save_service(service, tmp_path / "worker.npz").path

        cold_service = RetrievalService(database, cache_size=0)
        cold_service.warm("dd")
        with ReproServer(ServiceApp(cold_service), port=0) as server:
            cold_rps, cold_ids = _requests_per_second(ReproClient(server.url), query)

        warm_service, _ = load_service(snapshot_path)
        with ReproServer(ServiceApp(warm_service), port=0) as server:
            warm_rps, warm_ids = _requests_per_second(ReproClient(server.url), query)
        warm_misses = warm_service.cache_stats.misses

        identical = (
            cold_ids == warm_ids == reference.ranking.image_ids
        )
        return (codec_s, codec_exact, cold_rps, warm_rps, warm_misses,
                identical, len(database))

    (codec_s, codec_exact, cold_rps, warm_rps, warm_misses, identical,
     n_images) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        ascii_table(
            ["path", "throughput"],
            [
                ["codec round-trip", f"{1.0 / codec_s:.0f} results/s"],
                ["cold worker (trains per request)", f"{cold_rps:.2f} req/s"],
                ["warm worker (snapshot cache)", f"{warm_rps:.2f} req/s"],
                ["warm/cold speed-up", f"{warm_rps / cold_rps:.1f}x"],
            ],
            title="serving throughput (localhost, single client)",
        )
    )

    bench_json("serve", "codec_and_workers", {
        "n_images": n_images,
        "codec_roundtrips_per_s": 1.0 / codec_s if codec_s > 0 else None,
        "cold_requests_per_s": cold_rps,
        "warm_requests_per_s": warm_rps,
        "warm_vs_cold_speedup": warm_rps / cold_rps if cold_rps > 0 else None,
        "warm_cache_misses": warm_misses,
        "rankings_identical": bool(identical),
    })

    assert codec_exact, "codec round-trip changed the result"
    assert identical, "served rankings diverged from the in-process reference"
    assert warm_misses == 0, "warm worker retrained despite the snapshot cache"
    assert warm_rps > cold_rps, (
        f"warm worker ({warm_rps:.2f} req/s) should beat the cold worker "
        f"({cold_rps:.2f} req/s)"
    )
