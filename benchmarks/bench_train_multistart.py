"""Extension bench — batched multi-start training engine vs sequential.

Not a paper artefact.  PR 3 replaced the one-solver-per-restart training
loop with a lockstep engine: every descent step evaluates the noisy-or
objective for all restarts at once through one ``(R, n_instances)``
distance tensor, with converged restarts masked out.  This bench measures
what that buys on a 20-bag synthetic set (10 positive bags x 8 instances =
80 restarts), trains the same problem through both engines, and asserts:

* the batched engine is at least ``REPRO_TRAIN_BENCH_MIN_SPEEDUP`` times
  faster (default 3x) for the all-starts configuration;
* both engines return bit-identical best concepts and per-start values
  (batching is an execution strategy, not an approximation).

A third row reports the dynamic restart-pruning mode
(``restart_prune_margin``), which freezes restarts dominated by the
incumbent best — the Section 4.3 thinning applied at run time.
"""

import os
import time

import numpy as np

from repro.bags.bag import Bag, BagSet
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.eval.reporting import ascii_table

#: Minimum accepted batched-over-sequential speed-up.
MIN_SPEEDUP = float(os.environ.get("REPRO_TRAIN_BENCH_MIN_SPEEDUP", "3.0"))
#: Feature dimensionality of the synthetic set (shrink for smoke runs).
N_DIMS = int(os.environ.get("REPRO_TRAIN_BENCH_DIMS", "16"))
#: Per-start solver iteration cap.
MAX_ITERATIONS = int(os.environ.get("REPRO_TRAIN_BENCH_ITERATIONS", "60"))

N_POSITIVE = 10
N_NEGATIVE = 10
INSTANCES_PER_BAG = 8


def twenty_bag_set(seed: int = 0) -> BagSet:
    """10 positive + 10 negative synthetic bags with one planted concept."""
    rng = np.random.default_rng(seed)
    target = rng.uniform(-1.0, 1.0, N_DIMS)
    bag_set = BagSet()
    for index in range(N_POSITIVE):
        instances = rng.uniform(-3.0, 3.0, (INSTANCES_PER_BAG, N_DIMS))
        hit = int(rng.integers(INSTANCES_PER_BAG))
        instances[hit] = target + rng.normal(0.0, 0.1, N_DIMS)
        bag_set.add(Bag(instances=instances, label=True, bag_id=f"pos-{index}"))
    for index in range(N_NEGATIVE):
        instances = rng.uniform(-3.0, 3.0, (INSTANCES_PER_BAG, N_DIMS))
        bag_set.add(Bag(instances=instances, label=False, bag_id=f"neg-{index}"))
    return bag_set


def _train(bag_set: BagSet, engine: str, margin: float | None = None):
    trainer = DiverseDensityTrainer(
        TrainerConfig(
            scheme="inequality",
            beta=0.5,
            max_iterations=MAX_ITERATIONS,
            engine=engine,
            restart_prune_margin=margin,
        )
    )
    started = time.perf_counter()
    result = trainer.train(bag_set)
    return result, time.perf_counter() - started


def test_batched_engine_speedup(benchmark, report, bench_json):
    def run_all():
        bag_set = twenty_bag_set()
        sequential, sequential_s = _train(bag_set, "sequential")
        batched, batched_s = _train(bag_set, "batched")
        pruned, pruned_s = _train(bag_set, "batched", margin=1.0)
        return sequential, sequential_s, batched, batched_s, pruned, pruned_s

    sequential, sequential_s, batched, batched_s, pruned, pruned_s = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )

    # Batching must not change the mathematics: bit-identical results.
    assert batched.concept.nll == sequential.concept.nll
    assert np.array_equal(batched.concept.t, sequential.concept.t)
    assert np.array_equal(batched.concept.w, sequential.concept.w)
    assert [r.value for r in batched.starts] == [r.value for r in sequential.starts]

    speedup = sequential_s / batched_s
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster than sequential "
        f"(required {MIN_SPEEDUP:.1f}x)"
    )

    bench_json("train", "multistart_engines", {
        "n_bags": N_POSITIVE + N_NEGATIVE,
        "n_dims": N_DIMS,
        "n_starts": batched.n_starts,
        "max_iterations": MAX_ITERATIONS,
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "pruned_seconds": pruned_s,
        "speedup_batched": speedup,
        "speedup_pruned": sequential_s / pruned_s,
        "n_starts_pruned": pruned.n_starts_pruned,
        "bit_identical": True,
    })

    rows = [
        ["sequential", f"{sequential_s:.3f}", "1.00",
         f"{sequential.concept.nll:.5f}", sequential.n_starts_pruned],
        ["batched", f"{batched_s:.3f}", f"{speedup:.2f}",
         f"{batched.concept.nll:.5f}", batched.n_starts_pruned],
        ["batched + prune(1.0)", f"{pruned_s:.3f}",
         f"{sequential_s / pruned_s:.2f}",
         f"{pruned.concept.nll:.5f}", pruned.n_starts_pruned],
    ]
    report(
        ascii_table(
            ["engine", "train s", "speed-up", "best NLL", "pruned"],
            rows,
            title=f"multi-start training engines, {batched.n_starts} restarts "
            f"({N_POSITIVE}+{N_NEGATIVE} bags, {N_DIMS} dims; "
            f"bit-identical: True)",
        )
    )
