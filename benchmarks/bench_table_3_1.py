"""Table 3.1 — correlation coefficients of sample object-image pairs.

Paper: same-category pairs correlate at 0.652 .. 0.838; cross-category
pairs at 0.110 .. 0.224 (after h = 10 smoothing and sampling).

Reproduction claim: same-category correlations strictly exceed
cross-category correlations, with a clear margin.
"""

import numpy as np
import pytest

from repro.datasets.base import category_rng
from repro.datasets.objects import render_object
from repro.eval.reporting import ascii_table
from repro.experiments.correlation_demos import table_3_1
from repro.imaging.correlation import image_correlation
from repro.imaging.image import to_gray

PAPER_SAME_RANGE = (0.652, 0.838)
PAPER_CROSS_RANGE = (0.110, 0.224)


def test_table_3_1(benchmark, report, scale):
    rows = benchmark.pedantic(
        lambda: table_3_1(size=scale.image_size), rounds=1, iterations=1
    )
    same = [r.correlation for r in rows if r.same_category]
    cross = [r.correlation for r in rows if not r.same_category]
    assert min(same) > max(cross), "same-category pairs must out-correlate cross pairs"

    table = ascii_table(
        ["picture 1", "picture 2", "same category", "correlation"],
        [[r.first, r.second, str(r.same_category), r.correlation] for r in rows],
        title="Table 3.1 — correlation of object-image pairs (h=10)",
    )
    report(
        f"{table}\n"
        f"paper:    same-category r in [{PAPER_SAME_RANGE[0]}, {PAPER_SAME_RANGE[1]}], "
        f"cross in [{PAPER_CROSS_RANGE[0]}, {PAPER_CROSS_RANGE[1]}]\n"
        f"measured: same-category r in [{min(same):.3f}, {max(same):.3f}], "
        f"cross in [{min(cross):.3f}, {max(cross):.3f}]\n"
        f"shape holds: separation margin = {min(same) - max(cross):.3f} (> 0)"
    )


def test_correlation_kernel_speed(benchmark, scale):
    """Microbenchmark of the Table 3.1 kernel: smooth + correlate one pair."""
    first = to_gray(render_object("car", category_rng(0, "car", 0), scale.image_size))
    second = to_gray(render_object("car", category_rng(0, "car", 1), scale.image_size))
    value = benchmark(lambda: image_correlation(first, second, 10))
    assert -1.0 <= value <= 1.0
    assert np.isfinite(value)
