"""Extension bench — vectorized Ranker vs legacy per-bag loop.

Not a paper artefact.  The corpus/ranking redesign replaced the
per-candidate Python loop with one broadcast kernel over a
:class:`~repro.core.retrieval.PackedCorpus` (weighted distances in one
matrix product, ``np.minimum.reduceat`` per bag, id-tie-broken lexsort).
This bench races the two implementations on a synthetic 1k-image database
(no image pipeline — the rank kernel is the thing under test) and asserts:

* the orderings are identical (the equivalence suite checks this in depth;
  here it guards the timed configuration), and
* at full scale, the vectorized top-k serving path is at least 5x faster
  and the full-ranking path at least 2x faster.

Timing is per-query and end-to-end for each era's serving path: the legacy
``RetrievalService.rank_with`` rebuilt the per-image candidate list every
query before looping (``corpus.retrieval_candidates(chosen)``), so the
loop side is charged that construction; the redesigned path ranks the
cached packed view directly.  The full-ranking speedup is smaller because
both sides pay the same ~2ms to materialise 1000 ``RankedImage`` entries —
which is exactly why the API grew ``top_k``.

``REPRO_RANK_BENCH_IMAGES`` overrides the database size; CI runs a tiny
corpus on every supported Python so the kernel path is exercised cheaply
(the speedup assertions only apply at >= 1000 images, where Python-loop
overhead, not numpy dispatch, dominates).
"""

import os

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    rank_by_loop,
)
from repro.eval.reporting import ascii_table

N_IMAGES = int(os.environ.get("REPRO_RANK_BENCH_IMAGES", "1000"))
N_DIMS = 64
CATEGORIES = ("waterfall", "sunset", "field", "mountain", "lake")
TOP_K_SPEEDUP_FLOOR = 5.0
FULL_RANK_SPEEDUP_FLOOR = 2.0
REPEATS = 5


def synthetic_corpus(n_images: int, seed: int = 17):
    """A seeded synthetic database: ``n_images`` bags of 20-40 instances."""
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(n_images):
        n_instances = int(rng.integers(20, 41))
        candidates.append(
            RetrievalCandidate(
                image_id=f"img-{index:06d}",
                category=CATEGORIES[index % len(CATEGORIES)],
                instances=rng.normal(size=(n_instances, N_DIMS)),
            )
        )
    return candidates


def test_vectorized_ranker_vs_loop(report, bench_json, best_of):
    candidates = synthetic_corpus(N_IMAGES)
    packed = PackedCorpus.from_candidates(candidates)
    rng = np.random.default_rng(5)
    concept = LearnedConcept(
        t=rng.normal(size=N_DIMS), w=rng.uniform(0.1, 1.0, N_DIMS), nll=0.0
    )
    ranker = Ranker()
    exclude = packed.image_ids[::97]

    # Orderings must agree before anything is timed.
    vectorized = ranker.rank(concept, packed, exclude=exclude)
    reference = rank_by_loop(concept, candidates, exclude=exclude)
    assert vectorized.image_ids == reference.image_ids

    def legacy_query():
        # What the pre-redesign service did per query: materialise the
        # candidate list, then loop over it.
        return rank_by_loop(concept, list(packed.candidates()), exclude=exclude)

    loop_s = best_of(REPEATS, legacy_query)
    kernel_s = best_of(REPEATS, lambda: ranker.rank(concept, packed,
                                                    exclude=exclude))
    top_k_s = best_of(REPEATS, lambda: ranker.rank(concept, packed,
                                                   exclude=exclude, top_k=10))
    full_speedup = loop_s / kernel_s if kernel_s > 0 else float("inf")
    top_k_speedup = loop_s / top_k_s if top_k_s > 0 else float("inf")

    rows = [
        ["legacy loop (full rank)", f"{loop_s * 1e3:.2f}", "1.0x"],
        ["vectorized full rank", f"{kernel_s * 1e3:.2f}",
         f"{full_speedup:.1f}x"],
        ["vectorized top-10", f"{top_k_s * 1e3:.2f}", f"{top_k_speedup:.1f}x"],
    ]
    report(
        ascii_table(
            ["rank path", "best of 5 (ms)", "speedup"],
            rows,
            title=(
                f"rank corpus bench: {N_IMAGES} images, "
                f"{packed.n_instances} instances, {N_DIMS} dims"
            ),
        )
    )

    bench_json("rank", "vectorized_vs_loop", {
        "n_images": N_IMAGES,
        "n_instances": packed.n_instances,
        "n_dims": N_DIMS,
        "loop_seconds": loop_s,
        "vectorized_full_seconds": kernel_s,
        "vectorized_top10_seconds": top_k_s,
        "vectorized_ops_per_s": 1.0 / kernel_s if kernel_s > 0 else None,
        "top_k_ops_per_s": 1.0 / top_k_s if top_k_s > 0 else None,
        "full_speedup_vs_loop": full_speedup,
        "top_k_speedup_vs_loop": top_k_speedup,
    })

    if N_IMAGES >= 1000:
        assert top_k_speedup >= TOP_K_SPEEDUP_FLOOR, (
            f"vectorized top-k path only {top_k_speedup:.1f}x faster than "
            f"the loop (needs >= {TOP_K_SPEEDUP_FLOOR}x at {N_IMAGES} images)"
        )
        assert full_speedup >= FULL_RANK_SPEEDUP_FLOOR, (
            f"vectorized full rank only {full_speedup:.1f}x faster than "
            f"the loop (needs >= {FULL_RANK_SPEEDUP_FLOOR}x at {N_IMAGES} "
            "images)"
        )
