"""Figures 4-8 .. 4-13 — weight-scheme comparison across six categories.

Paper: original DD vs identical weights vs inequality (beta = 0.5) on
waterfalls, fields, sunsets (scenes) and cars, pants, airplanes (objects).
"There is a lot of variation in the relative performance in different
experiments"; the inequality method is best or close to best in a majority
of cases; on objects, identical weights is sometimes best (uniform
backgrounds, little intra-class variation).

Reproduction claims:
* every scheme beats the category base rate on every target (the system
  works everywhere);
* the inequality scheme is within 80% of the best scheme's AP in a majority
  of the six categories ("best or close to best");
* on at least one object category, identical weights is the top scheme or
  within 10% of it.
"""

from repro.eval.reporting import ascii_table
from repro.experiments.scheme_comparison import figures_4_8_to_4_13


def test_figures_4_8_to_4_13(benchmark, report, scale):
    comparisons = benchmark.pedantic(
        lambda: figures_4_8_to_4_13(scale), rounds=1, iterations=1
    )

    rows = []
    inequality_close = 0
    identical_wins_objects = 0
    for comparison in comparisons:
        aps = comparison.average_precisions()
        best_ap = max(aps.values())
        sample = next(iter(comparison.results.values()))
        base_rate = sample.n_relevant / len(sample.relevance)
        for scheme, ap in aps.items():
            assert ap > base_rate, (
                f"{scheme} failed to beat base rate on {comparison.target_category}"
            )
        if aps["inequality"] >= 0.8 * best_ap:
            inequality_close += 1
        if comparison.database_kind == "objects" and aps["identical"] >= 0.9 * best_ap:
            identical_wins_objects += 1
        rows.append(
            [
                comparison.figure,
                comparison.target_category,
                aps["original"],
                aps["identical"],
                aps["inequality"],
                comparison.best_scheme(),
            ]
        )

    assert inequality_close >= 3, "inequality must be close-to-best in a majority"
    assert identical_wins_objects >= 1, "identical weights must shine on objects"

    table = ascii_table(
        ["figure", "category", "AP original", "AP identical", "AP inequality", "best"],
        rows,
        title="Figures 4-8..4-13 — scheme comparison (average precision)",
    )
    report(
        table
        + f"\npaper: inequality best-or-close in a majority; identical weights "
        "sometimes best on objects\n"
        f"measured: inequality within 80% of best in {inequality_close}/6 "
        f"categories; identical near-best on {identical_wins_objects} object "
        "categories"
    )
