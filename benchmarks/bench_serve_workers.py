"""Extension bench — multi-process worker pool vs single-process serving.

Not a paper artefact.  The ``repro.serve.workers`` subsystem pre-forks N
worker processes over **one** shared-memory corpus mapping
(:class:`~repro.serve.shm.SharedPackedCorpus`), so concurrent rank
requests fan out across cores instead of queueing behind a single
process.  This bench builds the same clustered synthetic corpus as
``bench_rank_sharded`` (64 tight clusters — the regime the serving rank
index exists for), then races:

* a single in-process :class:`~repro.serve.app.ServiceApp` answering a
  batch of rank requests sequentially (the ``repro serve`` default),
  against
* a :class:`~repro.serve.workers.WorkerPool` behind a
  :class:`~repro.serve.workers.WorkerDispatchApp`, the same requests
  issued from one client thread per worker (the ``repro serve
  --workers N`` configuration).

Assertions (always): every worker reports ``owns_instances: False`` —
its instance matrix is a *view* into the shared segment, not a per-worker
copy — and the pool's rankings are identical to the single-process
answers (ids and distances; the deep equivalence lives in
``tests/test_serve_workers``).  At full scale on a multi-core machine the
pool must beat the sequential baseline by ``REPRO_WORKER_BENCH_FLOOR``
(default 1.2x; CI's oversubscribed runners set 1.0).  On a single-core
machine the speedup is report-only: N workers time-slicing one core
measure scheduling overhead, not the subsystem.

``REPRO_WORKER_BENCH_BAGS`` overrides the corpus size,
``REPRO_WORKER_BENCH_WORKERS`` the pool width.  Results land in
``BENCH_serve_workers.json`` via the shared JSON reporter.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.datasets.synth import ScenarioConfig, corpus_from_config, feature_center
from repro.eval.reporting import ascii_table
from repro.serve import codec
from repro.serve.app import ServiceApp, handle_safely
from repro.serve.workers import WorkerDispatchApp, WorkerPool

N_BAGS = int(os.environ.get("REPRO_WORKER_BENCH_BAGS", "100000"))
N_WORKERS = int(os.environ.get("REPRO_WORKER_BENCH_WORKERS", "2"))
SPEEDUP_FLOOR = float(os.environ.get("REPRO_WORKER_BENCH_FLOOR", "1.2"))
N_DIMS = 16
N_CLUSTERS = 64
TOP_K = 50
N_REQUESTS = 24
FULL_SCALE = 100_000
REPEATS = 3


def clustered_corpus(n_bags: int, seed: int = 11):
    """Same corpus family as ``bench_rank_sharded`` (see its docstring)."""
    config = ScenarioConfig(
        name="bench-clusters",
        mode="feature",
        categories=tuple(f"cluster-{c:02d}" for c in range(N_CLUSTERS)),
        bags_per_category=1,
        seed=seed,
        feature_dims=N_DIMS,
        instances_per_bag=6,
        cluster_spread=0.05,
    ).with_total_bags(n_bags)
    return corpus_from_config(config), config


def rank_requests(config: ScenarioConfig, seed: int = 23) -> list[dict]:
    """Wire-ready rank envelopes, one selective concept per cluster."""
    rng = np.random.default_rng(seed)
    payloads = []
    for i in range(N_REQUESTS):
        center = feature_center(config, config.categories[i % N_CLUSTERS])
        concept = LearnedConcept(
            t=center + rng.normal(scale=0.02, size=config.feature_dims),
            w=rng.uniform(0.5, 1.0, size=config.feature_dims),
            nll=0.0,
        )
        payloads.append(codec.envelope("rank", {
            "concept": codec.encode_concept(concept), "top_k": TOP_K,
        }))
    return payloads


def _drain(app, payloads) -> list:
    """Answer every request sequentially on the calling thread."""
    replies = []
    for payload in payloads:
        status, reply = handle_safely(app, "rank", payload)
        assert status == 200, reply
        replies.append(reply)
    return replies


def _fan_out(app, payloads, n_clients: int) -> list:
    """Answer every request from a pool of concurrent client threads."""
    def one(payload):
        status, reply = handle_safely(app, "rank", payload)
        assert status == 200, reply
        return reply

    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        return list(pool.map(one, payloads))


def test_worker_pool_vs_single_process(report, bench_json, best_of):
    packed, config = clustered_corpus(N_BAGS)
    service = RetrievalService(packed)
    payloads = rank_requests(config)
    single_app = ServiceApp(service)

    with WorkerPool.from_service(service, N_WORKERS) as pool:
        dispatch_app = WorkerDispatchApp(pool)

        # The tentpole claim: N workers, one corpus mapping.  Every
        # worker's instance matrix must be a shared-segment view.
        pongs = pool.ping()
        assert len(pongs) == N_WORKERS
        for pong in pongs:
            assert pong["owns_instances"] is False, (
                "worker holds a private corpus copy — sharing is broken"
            )
        segment_mb = sum(s.nbytes for s in pool.shared.values()) / 2**20

        # Correctness before anything is timed: identical answers.
        local = _drain(single_app, payloads)
        remote = _drain(dispatch_app, payloads)
        for mine, theirs in zip(local, remote):
            a = codec.decode_ranking(mine["ranking"])
            b = codec.decode_ranking(theirs["ranking"])
            assert a.image_ids == b.image_ids, "pool ranking diverged"
            np.testing.assert_array_equal(a.distances, b.distances)

        single_s = best_of(REPEATS, lambda: _drain(single_app, payloads))
        pool_s = best_of(
            REPEATS, lambda: _fan_out(dispatch_app, payloads, N_WORKERS)
        )

    speedup = single_s / pool_s if pool_s > 0 else float("inf")
    n_cores = os.cpu_count() or 1

    rows = [
        ["single process (sequential)", f"{single_s * 1e3:.1f}", "1.0x"],
        [f"{N_WORKERS}-worker pool ({N_WORKERS} clients)",
         f"{pool_s * 1e3:.1f}", f"{speedup:.2f}x"],
    ]
    report(
        ascii_table(
            ["serving path", f"{N_REQUESTS} ranks, best of {REPEATS} (ms)",
             "speedup"],
            rows,
            title=(
                f"worker-pool bench: {packed.n_bags} bags, top_k={TOP_K}, "
                f"{n_cores} cores, {segment_mb:.0f} MiB shared"
            ),
        )
    )
    bench_json("serve_workers", "pool_vs_single_process", {
        "n_bags": packed.n_bags,
        "n_instances": packed.n_instances,
        "n_dims": N_DIMS,
        "top_k": TOP_K,
        "n_requests": N_REQUESTS,
        "n_workers": N_WORKERS,
        "n_cores": n_cores,
        "shared_segment_mib": segment_mb,
        "workers_own_instances": False,
        "single_process_seconds": single_s,
        "pool_seconds": pool_s,
        "single_requests_per_s": N_REQUESTS / single_s,
        "pool_requests_per_s": N_REQUESTS / pool_s,
        "speedup_vs_single_process": speedup,
        "rankings_identical": True,
    })

    # A 1-core machine runs N workers by time-slicing; the pool then pays
    # dispatch overhead for no parallelism and the number is report-only.
    if N_BAGS >= FULL_SCALE and n_cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{N_WORKERS}-worker pool only {speedup:.2f}x faster than "
            f"single-process serving (needs >= {SPEEDUP_FLOOR}x at "
            f"{N_BAGS} bags on {n_cores} cores)"
        )
