"""Figures 4-20 / 4-21 — comparison with the Maron & Lakshmi Ratan approach.

Paper: on waterfall retrieval from the natural-scene database, our
gray-scale region-correlation system performs "very close" to the previous
colour-feature approach — shown once for our original-DD variant (Fig 4-20)
and once for the inequality beta = 0.25 variant (Fig 4-21).  The previous
approach is colour-specific and "would not work with object images".

Reproduction claims: both of our variants and the baseline beat the base
rate, and at least one of our variants lands within 0.2 AP of the baseline
(the paper's "very close" at the resolution our substrate supports).
"""

from repro.eval.reporting import ascii_table
from repro.experiments.previous_approach import figures_4_20_4_21


def test_figures_4_20_4_21(benchmark, report, scale):
    comparisons = benchmark.pedantic(
        lambda: figures_4_20_4_21(scale), rounds=1, iterations=1
    )

    baseline_ap = comparisons[0].baseline.average_precision
    sample = comparisons[0].ours
    base_rate = sample.n_relevant / len(sample.relevance)
    assert baseline_ap > base_rate, "the colour baseline must work on scenes"

    rows = []
    close_hits = 0
    for comparison in comparisons:
        ours_ap = comparison.ours.average_precision
        assert ours_ap > base_rate
        if abs(comparison.gap) <= 0.2:
            close_hits += 1
        rows.append(
            [
                comparison.figure,
                comparison.ours.config.scheme,
                ours_ap,
                baseline_ap,
                comparison.gap,
            ]
        )
    assert close_hits >= 1, "at least one variant must be close to the baseline"

    table = ascii_table(
        ["figure", "our scheme", "AP ours", "AP baseline", "gap"],
        rows,
        title="Figures 4-20/4-21 — vs Maron & Lakshmi Ratan colour features "
        "(waterfalls)",
    )
    report(
        table
        + "\npaper: our approach performs very close to the previous approach "
        "on natural scenes\n"
        f"measured: {close_hits}/2 variants within 0.2 AP of the baseline "
        f"(base rate {base_rate:.2f})"
    )
