"""Extension bench — EM-DD vs the paper's Diverse Density trainer.

Not a paper artefact.  EM-DD (Zhang & Goldman, NIPS 2001) is the canonical
successor to the Diverse Density algorithm this paper builds on; this bench
measures what a downstream adopter would ask: on the paper's own waterfall
task, how does EM-DD's retrieval quality and training cost compare with the
full noisy-or trainer under the same restart budget?

Claims: EM-DD beats the base rate, lands within 0.25 AP of plain DD, and
trains at least as fast per restart budget (loosely asserted — timings on
shared machines are noisy).
"""

from repro.bags.bag import BagSet
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.emdd import EMDDConfig, EMDDTrainer
from repro.core.feedback import select_examples
from repro.core.retrieval import RetrievalEngine
from repro.database.splits import split_database
from repro.eval.metrics import average_precision
from repro.eval.reporting import ascii_table
from repro.experiments.databases import scene_database


def test_emdd_vs_dd(benchmark, report, scale):
    def run_both():
        database = scene_database(scale)
        split = split_database(
            database, training_fraction=scale.scene_training_fraction, seed=41
        )
        selection = select_examples(
            database, split.potential_ids, "waterfall", 5, 5, seed=41
        )
        bag_set = BagSet()
        for image_id in selection.positive_ids:
            bag_set.add(database.bag_for(image_id, label=True))
        for image_id in selection.negative_ids:
            bag_set.add(database.bag_for(image_id, label=False))

        dd_result = DiverseDensityTrainer(
            TrainerConfig(
                scheme="identical",
                max_iterations=scale.max_iterations,
                start_bag_subset=scale.start_bag_subset,
                start_instance_stride=scale.start_instance_stride,
                seed=41,
            )
        ).train(bag_set)
        emdd_result = EMDDTrainer(
            EMDDConfig(
                inner_scheme="identical",
                max_inner_iterations=scale.max_iterations,
                start_bag_subset=scale.start_bag_subset,
                start_instance_stride=scale.start_instance_stride,
                seed=41,
            )
        ).train(bag_set)

        engine = RetrievalEngine()
        examples = set(selection.positive_ids) | set(selection.negative_ids)
        candidates = database.retrieval_candidates(split.test_ids)
        rows = {}
        for label, training in (("DD (noisy-or)", dd_result), ("EM-DD", emdd_result)):
            ranking = engine.rank(training.concept, candidates, exclude=examples)
            rows[label] = (
                average_precision(ranking.relevance("waterfall")),
                training.elapsed_seconds,
            )
        base_rate = sum(
            1 for i in split.test_ids if database.category_of(i) == "waterfall"
        ) / len(split.test_ids)
        return rows, base_rate

    rows, base_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    dd_ap, dd_time = rows["DD (noisy-or)"]
    emdd_ap, emdd_time = rows["EM-DD"]
    assert emdd_ap > base_rate
    assert abs(emdd_ap - dd_ap) <= 0.25

    table = ascii_table(
        ["trainer", "AP (waterfalls)", "train s"],
        [[label, ap, seconds] for label, (ap, seconds) in rows.items()],
        title="Extension — EM-DD vs Diverse Density (same restart budget)",
    )
    report(
        table
        + f"\nEM-DD gap = {emdd_ap - dd_ap:+.3f} AP at "
        f"{emdd_time / max(dd_time, 1e-9):.2f}x the training time "
        f"(base rate {base_rate:.2f})"
    )
