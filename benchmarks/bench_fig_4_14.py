"""Figure 4-14 — retrieving cars with beta = 0.25.

Paper: on the car query the beta = 0.5 inequality constraint is "not very
good, but when we change beta to 0.25, it works very well" — loosening the
constraint helps when the discriminative region is small.

Reproduction claims: the beta = 0.25 inequality run beats the base rate
clearly, and is at least as good as the beta = 0.5 run from the same split
(or within a small tolerance — the paper's own figures show run-to-run
variation).
"""

from repro.eval.reporting import ascii_table
from repro.experiments.scheme_comparison import compare_category, figure_4_14


def test_figure_4_14(benchmark, report, scale):
    loose = benchmark.pedantic(lambda: figure_4_14(scale), rounds=1, iterations=1)
    tight = compare_category("Figure 4-11", "car", "objects", scale, beta=0.5, seed=5)

    ap_25 = loose.results["inequality"].average_precision
    ap_50 = tight.results["inequality"].average_precision
    sample = loose.results["inequality"]
    base_rate = sample.n_relevant / len(sample.relevance)

    assert ap_25 > base_rate + 0.1
    # The paper's direction: beta=0.25 >= beta=0.5 on cars (tolerance for
    # the different synthetic substrate).
    assert ap_25 >= ap_50 - 0.15

    table = ascii_table(
        ["constraint", "AP (cars)"],
        [["inequality beta=0.50", ap_50], ["inequality beta=0.25", ap_25]],
        title="Figure 4-14 — cars: loosening the weight constraint",
    )
    report(
        table
        + f"\npaper: beta=0.25 works very well where beta=0.5 struggled\n"
        f"measured: AP(0.25)-AP(0.5) = {ap_25 - ap_50:+.3f} "
        f"(base rate {base_rate:.2f})"
    )
