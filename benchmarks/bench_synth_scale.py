"""Extension bench — synth corpus generation throughput and end-to-end rank.

Not a paper artefact.  The :mod:`repro.datasets.synth` subsystem exists to
put million-bag corpora behind the retrieval stack without ever holding a
million bags in memory; this bench measures the full path at a configurable
scale:

* **generation throughput** — ``generate_corpus`` streaming a feature-mode
  scenario into checksummed npz shards, reported as bags/s;
* **resume** — the same call again must adopt every shard by checksum and
  generate nothing;
* **image-mode throughput** — the procedural renderer + feature extractor,
  at a small fixed count (rendering is orders of magnitude slower than
  feature-mode synthesis and scales linearly, so a sample is enough);
* **end-to-end sharded rank** — the corpus read back shard-by-shard into a
  :class:`~repro.core.retrieval.PackedCorpus`, a
  :class:`~repro.core.sharding.ShardIndex` built over it, and the sharded
  path raced against the exhaustive ranker with the ordering-identity
  assertion that makes the race meaningful.

``REPRO_SYNTH_BENCH_BAGS`` sets the corpus size (default 8000 so CI stays
fast; set it to 1000000 for the million-bag configuration — generation is
O(bags) in time and O(shard_size) in memory, so nothing else changes).
Results land in ``BENCH_synth.json`` via the shared JSON reporter.
"""

import os
import time

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import Ranker
from repro.core.sharding import ShardIndex, ShardedRanker
from repro.datasets.synth import (
    ScenarioConfig,
    ShardedCorpusReader,
    feature_center,
    generate_corpus,
    iter_bags,
)
from repro.eval.reporting import ascii_table

N_BAGS = int(os.environ.get("REPRO_SYNTH_BENCH_BAGS", "8000"))
N_IMAGE_BAGS = int(os.environ.get("REPRO_SYNTH_BENCH_IMAGE_BAGS", "60"))
N_CLUSTERS = 32
N_DIMS = 16
SHARD_SIZE = 2048
TOP_K = 50
REPEATS = 3


def bench_config(n_bags: int) -> ScenarioConfig:
    """A feature-mode scenario with mild clutter at the bench scale."""
    return ScenarioConfig(
        name="bench-synth-scale",
        mode="feature",
        categories=tuple(f"cluster-{c:02d}" for c in range(N_CLUSTERS)),
        bags_per_category=1,
        seed=7,
        feature_dims=N_DIMS,
        instances_per_bag=6,
        cluster_spread=0.05,
        clutter=0.1,
    ).with_total_bags(n_bags)


def test_synth_generate_and_rank(tmp_path, report, bench_json, best_of):
    config = bench_config(N_BAGS)
    corpus_dir = tmp_path / "corpus"

    generated = generate_corpus(config, corpus_dir, shard_size=SHARD_SIZE)
    assert generated.n_shards_skipped == 0

    resumed = generate_corpus(config, corpus_dir, shard_size=SHARD_SIZE)
    assert resumed.n_shards_skipped == resumed.n_shards, (
        "resume regenerated shards that were already on disk"
    )

    # Image-mode throughput: sample the renderer, do not persist.
    image_config = ScenarioConfig(name="bench-synth-image", mode="image")
    image_count = 0
    image_started = time.perf_counter()
    for _ in iter_bags(image_config, 0, N_IMAGE_BAGS):
        image_count += 1
    image_s = time.perf_counter() - image_started
    image_rate = image_count / image_s if image_s > 0 else float("inf")

    # End-to-end: read the store back and race the rank paths over it.
    reader = ShardedCorpusReader(corpus_dir)
    read_started = time.perf_counter()
    packed = reader.packed()
    read_s = time.perf_counter() - read_started
    assert packed.n_bags == generated.n_bags

    rng = np.random.default_rng(23)
    concept = LearnedConcept(
        t=feature_center(config, config.categories[0])
        + rng.normal(scale=0.02, size=N_DIMS),
        w=rng.uniform(0.5, 1.0, size=N_DIMS),
        nll=0.0,
    )
    index = ShardIndex.build(packed)
    sharded = ShardedRanker()
    exhaustive = Ranker(auto_shard=False)

    fast = sharded.rank(concept, packed, top_k=TOP_K, index=index)
    slow = exhaustive.rank(concept, packed, top_k=TOP_K)
    assert fast.image_ids == slow.image_ids, "pruned ranking diverged"

    exhaustive_s = best_of(
        REPEATS, lambda: exhaustive.rank(concept, packed, top_k=TOP_K)
    )
    sharded_s = best_of(
        REPEATS, lambda: sharded.rank(concept, packed, top_k=TOP_K, index=index)
    )
    speedup = exhaustive_s / sharded_s if sharded_s > 0 else float("inf")

    rows = [
        ["generate (feature mode)", f"{generated.elapsed_seconds:.2f}",
         f"{generated.bags_per_second:.0f} bags/s"],
        ["generate (image mode sample)", f"{image_s:.2f}",
         f"{image_rate:.0f} bags/s"],
        ["read shards -> packed", f"{read_s:.2f}", "-"],
        ["exhaustive rank", f"{exhaustive_s * 1e3:.2f} ms", "1.0x"],
        ["sharded rank", f"{sharded_s * 1e3:.2f} ms", f"{speedup:.1f}x"],
    ]
    report(
        ascii_table(
            ["stage", "wall", "rate / speedup"],
            rows,
            title=(
                f"synth scale bench: {generated.n_bags} bags / "
                f"{generated.n_instances} instances in "
                f"{generated.n_shards} shards (shard_size={SHARD_SIZE})"
            ),
        )
    )
    bench_json("synth", "generate_and_rank", {
        "n_bags": generated.n_bags,
        "n_instances": generated.n_instances,
        "n_dims": N_DIMS,
        "n_shards": generated.n_shards,
        "shard_size": SHARD_SIZE,
        "fingerprint": generated.fingerprint,
        "generate_seconds": generated.elapsed_seconds,
        "generate_bags_per_s": generated.bags_per_second,
        "resume_shards_adopted": resumed.n_shards_skipped,
        "image_mode_bags": image_count,
        "image_mode_bags_per_s": image_rate,
        "read_packed_seconds": read_s,
        "top_k": TOP_K,
        "exhaustive_seconds": exhaustive_s,
        "sharded_seconds": sharded_s,
        "speedup_vs_exhaustive": speedup,
        "orderings_identical": True,
    })
