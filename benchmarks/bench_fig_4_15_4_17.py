"""Figures 4-15 .. 4-17 — sweeping beta in the inequality constraint.

Paper: on the sunset query, as beta moves toward 0 the PR curve approaches
the original DD algorithm's; as beta moves toward 1 it approaches the
identical-weights curve.  (Endpoints need not match exactly — the
minimisation algorithms differ, as the thesis footnotes.)

Reproduction claims:
* the beta = 0 result is closer in AP to the original scheme than the
  beta = 1 result is;
* the beta = 1 result is closer in AP to the identical scheme than the
  beta = 0 result is;
* every sweep point beats the category base rate.
"""

from repro.eval.reporting import ascii_curve, ascii_table
from repro.experiments.beta_sweep import figures_4_15_to_4_17

#: A coarser grid than the paper's 9 points at quick scale; the paper grid
#: is used automatically at paper scale.
QUICK_BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)
PAPER_BETAS = (0.0, 0.1, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 1.0)


def test_figures_4_15_to_4_17(benchmark, report, scale):
    betas = PAPER_BETAS if scale.name == "paper" else QUICK_BETAS
    sweep = benchmark.pedantic(
        lambda: figures_4_15_to_4_17(scale, betas=betas), rounds=1, iterations=1
    )
    aps = sweep.average_precisions()
    ap_original = sweep.original.average_precision
    ap_identical = sweep.identical.average_precision
    sample = sweep.original
    base_rate = sample.n_relevant / len(sample.relevance)

    for beta, ap in aps.items():
        assert ap > base_rate, f"beta={beta} failed to beat the base rate"

    low, high = min(betas), max(betas)
    gap_low_to_original = abs(aps[low] - ap_original)
    gap_high_to_original = abs(aps[high] - ap_original)
    gap_high_to_identical = abs(aps[high] - ap_identical)
    gap_low_to_identical = abs(aps[low] - ap_identical)
    # Interpolation shape (with slack for optimiser differences the thesis
    # itself footnotes).
    assert gap_low_to_original <= gap_high_to_original + 0.1
    assert gap_high_to_identical <= gap_low_to_identical + 0.1

    rows = [["original DD (reference)", ap_original]]
    rows += [[f"inequality beta={beta:g}", aps[beta]] for beta in betas]
    rows += [["identical weights (reference)", ap_identical]]
    table = ascii_table(
        ["configuration", f"AP ({sweep.target_category})"],
        rows,
        title="Figures 4-15..4-17 — beta sweep",
    )
    curve = ascii_curve(
        list(betas),
        [aps[beta] for beta in betas],
        title="AP vs beta",
        y_range=(0, 1),
    )
    report(
        table
        + "\n"
        + curve
        + "\npaper: beta->0 approaches original DD; beta->1 approaches "
        "identical weights\n"
        f"measured: |AP(beta={low})-AP(original)|={gap_low_to_original:.3f}, "
        f"|AP(beta={high})-AP(identical)|={gap_high_to_identical:.3f}"
    )
