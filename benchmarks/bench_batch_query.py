"""Extension bench — RetrievalService batch throughput, single vs multi-worker.

Not a paper artefact.  The ``repro.api`` redesign added
``RetrievalService.batch_query(queries, workers=N)`` for multi-user
traffic; this bench measures what that buys: the same seeded query batch
executed sequentially and on a thread pool, with the determinism guarantee
(bit-identical rankings either way) asserted as part of the run.

Claims: multi-worker execution returns exactly the sequential rankings,
and wall time does not regress catastrophically (loosely asserted — thread
speed-ups depend on how much time numpy spends outside the GIL on the
machine at hand).
"""

import time

from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.core.feedback import select_examples
from repro.eval.reporting import ascii_table
from repro.experiments.databases import scene_database

WORKERS = 4


def _build_queries(database, scale) -> list[Query]:
    queries = []
    for index, category in enumerate(database.categories()):
        selection = select_examples(
            database, database.image_ids, category,
            n_positive=3, n_negative=3, seed=31 + index,
        )
        queries.append(
            Query(
                positive_ids=selection.positive_ids,
                negative_ids=selection.negative_ids,
                learner="dd",
                params={
                    "scheme": "identical",
                    "max_iterations": scale.max_iterations,
                    "start_bag_subset": scale.start_bag_subset,
                    "start_instance_stride": scale.start_instance_stride,
                    "seed": 31 + index,
                },
                top_k=10,
                query_id=category,
            )
        )
    return queries


def test_batch_query_throughput(benchmark, report, scale, bench_json):
    def run_both():
        database = scene_database(scale)
        # The concept cache would answer the second (parallel) pass without
        # training; disable it so the bench keeps measuring thread scaling.
        service = RetrievalService(database, cache_size=0)
        service.warm("dd")  # charge feature extraction up front, not per run
        queries = _build_queries(database, scale)

        started = time.perf_counter()
        sequential = service.batch_query(queries, workers=1)
        sequential_s = time.perf_counter() - started

        started = time.perf_counter()
        parallel = service.batch_query(queries, workers=WORKERS)
        parallel_s = time.perf_counter() - started

        identical = all(
            seq.ranking.image_ids == par.ranking.image_ids
            for seq, par in zip(sequential, parallel)
        )
        return len(queries), sequential_s, parallel_s, identical

    n_queries, sequential_s, parallel_s, identical = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert identical, "multi-worker batch diverged from sequential execution"
    # Threads must not make things pathologically slower.
    assert parallel_s < sequential_s * 3.0

    bench_json("batch", "batch_query_throughput", {
        "n_queries": n_queries,
        "workers": WORKERS,
        "sequential_seconds": sequential_s,
        "parallel_seconds": parallel_s,
        "sequential_queries_per_s": n_queries / sequential_s,
        "parallel_queries_per_s": n_queries / parallel_s,
        "speedup_parallel": sequential_s / parallel_s,
        "rankings_identical": identical,
    })

    rows = [
        ["sequential (workers=1)", f"{sequential_s:.2f}",
         f"{n_queries / sequential_s:.2f}"],
        [f"thread pool (workers={WORKERS})", f"{parallel_s:.2f}",
         f"{n_queries / parallel_s:.2f}"],
    ]
    report(
        ascii_table(
            ["execution", "wall s", "queries/s"],
            rows,
            title=f"batch_query throughput, {n_queries} queries "
            f"(speed-up x{sequential_s / parallel_s:.2f}, "
            f"rankings identical: {identical})",
        )
    )
