"""Figures 3-3 / 3-4 — whole-image vs matched-region correlation.

Paper: two multi-object images correlate at 0.118 as whole frames but at
0.674 on their matched regions — the motivation for region bags.

Reproduction claim: matched-region correlation clearly exceeds whole-image
correlation (weak whole, strong region).
"""

from repro.eval.reporting import ascii_table
from repro.experiments.correlation_demos import figure_3_3_3_4

PAPER_WHOLE = 0.118
PAPER_REGION = 0.674


def test_figures_3_3_3_4(benchmark, report, scale):
    result = benchmark.pedantic(
        lambda: figure_3_3_3_4(size=scale.image_size), rounds=1, iterations=1
    )
    assert result.matched_region_correlation > result.whole_image_correlation + 0.3
    assert result.whole_image_correlation < 0.45
    assert result.matched_region_correlation > 0.4

    table = ascii_table(
        ["comparison", "paper r", "measured r"],
        [
            ["whole images", PAPER_WHOLE, result.whole_image_correlation],
            ["matched regions", PAPER_REGION, result.matched_region_correlation],
        ],
        title="Figures 3-3/3-4 — why regions: whole vs matched-region correlation",
    )
    gain = result.matched_region_correlation - result.whole_image_correlation
    report(table + f"\nshape holds: region matching gains {gain:+.3f} correlation")
