"""Figure 4-18 — choosing different numbers of instances per bag.

Paper: 18, 40 and 84 instances per bag on sunsets, waterfalls and fields.
"Having more instances per bag means a higher chance of hitting the 'right'
region ... [but] also means introducing more noise ... more instances per
bag do not guarantee better performance."

Reproduction claims: every configuration beats the base rate, and bag size
is not uniformly monotone — 84 instances does not dominate 40 on every
category.
"""

from repro.eval.reporting import ascii_table
from repro.experiments.bag_size import BAG_SIZES, figure_4_18

#: Quick scale trims to two categories to keep the bench under a minute.
QUICK_CATEGORIES = ("sunset", "waterfall")
PAPER_CATEGORIES = ("sunset", "waterfall", "field")


def test_figure_4_18(benchmark, report, scale):
    categories = PAPER_CATEGORIES if scale.name == "paper" else QUICK_CATEGORIES
    results = benchmark.pedantic(
        lambda: figure_4_18(scale, categories=categories), rounds=1, iterations=1
    )

    rows = []
    dominated_everywhere = True
    for result in results:
        aps = result.average_precisions()
        sample = next(iter(result.by_instances.values()))
        base_rate = sample.n_relevant / len(sample.relevance)
        for n_instances, ap in aps.items():
            assert ap > base_rate, (
                f"{n_instances} instances failed base rate on {result.target_category}"
            )
        if aps[84] < max(aps[18], aps[40]) + 1e-9:
            dominated_everywhere = False
        rows.append(
            [result.target_category, aps[18], aps[40], aps[84]]
        )

    # The paper's claim is the *absence* of a free lunch: the largest bag
    # size must not strictly dominate on every category.
    assert not dominated_everywhere or len(results) == 1

    table = ascii_table(
        ["category", "AP @18 inst", "AP @40 inst", "AP @84 inst"],
        rows,
        title="Figure 4-18 — instances per bag (region families "
        + ", ".join(f"{n}->{fam}" for n, fam in BAG_SIZES)
        + ")",
    )
    report(
        table
        + "\npaper: more instances per bag do not guarantee better performance\n"
        "measured: see non-monotone rows above"
    )
