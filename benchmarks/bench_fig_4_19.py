"""Figure 4-19 — smoothing and sampling at different resolutions.

Paper: h in {6, 10, 15} on sunsets, waterfalls and fields.  "As we increase
the resolution, performance first rises, then declines" in many cases: very
low h starves the comparison of information, very high h restores shift
sensitivity and noise.

Reproduction claims: every resolution beats the base rate, and h = 15 does
not strictly dominate h = 10 across categories (no monotone win for higher
resolution).
"""

from repro.eval.reporting import ascii_table
from repro.experiments.resolution import figure_4_19

QUICK_CATEGORIES = ("sunset", "waterfall")
PAPER_CATEGORIES = ("sunset", "waterfall", "field")


def test_figure_4_19(benchmark, report, scale):
    categories = PAPER_CATEGORIES if scale.name == "paper" else QUICK_CATEGORIES
    results = benchmark.pedantic(
        lambda: figure_4_19(scale, categories=categories), rounds=1, iterations=1
    )

    rows = []
    high_res_dominates = True
    for result in results:
        aps = result.average_precisions()
        sample = next(iter(result.by_resolution.values()))
        base_rate = sample.n_relevant / len(sample.relevance)
        for resolution, ap in aps.items():
            assert ap > base_rate, (
                f"h={resolution} failed base rate on {result.target_category}"
            )
        if aps[15] < max(aps[6], aps[10]) + 1e-9:
            high_res_dominates = False
        rows.append([result.target_category, aps[6], aps[10], aps[15]])

    assert not high_res_dominates or len(results) == 1

    table = ascii_table(
        ["category", "AP @6x6", "AP @10x10", "AP @15x15"],
        rows,
        title="Figure 4-19 — feature resolution sweep",
    )
    report(
        table
        + "\npaper: performance rises then declines with resolution in many cases\n"
        "measured: see rows above (no monotone win for 15x15)"
    )
