"""Exception hierarchy for the repro package.

All errors raised deliberately by this package derive from :class:`ReproError`
so callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""


class ReproError(Exception):
    """Base class for every deliberate error raised by this package."""


class ImageFormatError(ReproError):
    """An image array has the wrong dtype, shape or value range."""


class RegionError(ReproError):
    """A region specification falls outside its image or is degenerate."""


class FeatureError(ReproError):
    """Feature extraction produced an invalid vector (e.g. zero variance)."""


class BagError(ReproError):
    """A bag or bag set violates the multiple-instance data model."""


class TrainingError(ReproError):
    """The Diverse Density trainer was configured or invoked incorrectly."""


class OptimizationError(TrainingError):
    """An optimiser failed to produce a usable solution."""


class LearnerError(ReproError):
    """A learner name is unknown to the registry or its parameters are invalid."""


class QueryError(ReproError):
    """A retrieval query request is malformed."""


class DatabaseError(ReproError):
    """The image database was queried or mutated incorrectly."""


class SplitError(DatabaseError):
    """A train/test split request cannot be satisfied."""


class EvaluationError(ReproError):
    """An evaluation metric or curve was given inconsistent inputs."""


class DatasetError(ReproError):
    """A synthetic dataset generator was configured incorrectly."""


class CodecError(ReproError):
    """A wire payload cannot be encoded or decoded (bad kind, version or fields)."""


class SessionError(ReproError):
    """A serving session token is unknown, expired or misused."""


class ServeError(ReproError):
    """The serving layer was configured or invoked incorrectly."""
