"""Exception hierarchy for the repro package.

All errors raised deliberately by this package derive from :class:`ReproError`
so callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""


class ReproError(Exception):
    """Base class for every deliberate error raised by this package."""

    #: Whether the failed request may be retried verbatim with a reasonable
    #: expectation of success (e.g. after a worker restart).  Carried over
    #: the wire in error payloads so clients can retry without parsing
    #: messages.  Class-level default; instances may override.
    retryable: bool = False


class ImageFormatError(ReproError):
    """An image array has the wrong dtype, shape or value range."""


class RegionError(ReproError):
    """A region specification falls outside its image or is degenerate."""


class FeatureError(ReproError):
    """Feature extraction produced an invalid vector (e.g. zero variance)."""


class BagError(ReproError):
    """A bag or bag set violates the multiple-instance data model."""


class TrainingError(ReproError):
    """The Diverse Density trainer was configured or invoked incorrectly."""


class OptimizationError(TrainingError):
    """An optimiser failed to produce a usable solution."""


class LearnerError(ReproError):
    """A learner name is unknown to the registry or its parameters are invalid."""


class QueryError(ReproError):
    """A retrieval query request is malformed."""


class DatabaseError(ReproError):
    """The image database was queried or mutated incorrectly."""


class SplitError(DatabaseError):
    """A train/test split request cannot be satisfied."""


class EvaluationError(ReproError):
    """An evaluation metric or curve was given inconsistent inputs."""


class DatasetError(ReproError):
    """A synthetic dataset generator was configured incorrectly."""


class CodecError(ReproError):
    """A wire payload cannot be encoded or decoded (bad kind, version or fields)."""


class SessionError(ReproError):
    """A serving session token is unknown, expired or misused."""


class ServeError(ReproError):
    """The serving layer was configured or invoked incorrectly."""


class DeadlineError(ReproError):
    """A request's time budget expired before an answer was produced.

    Maps to HTTP 504.  Retryable by definition: the work was abandoned,
    not wrong — a retry with a fresh budget may well succeed.
    """

    retryable = True


class WorkerUnresponsiveError(ServeError):
    """A pooled worker did not answer within the request deadline.

    Raised parent-side when ``poll(remaining)`` times out on a worker
    pipe.  The worker is alive but wedged (or just too slow); the pool
    must restart it — a late reply would desynchronise the pipe protocol.
    """

    retryable = True


class WorkerProtocolError(ServeError):
    """A pooled worker sent something that is not a ``(status, payload)`` reply.

    The pipe framing survived but the content is corrupt; the worker can
    no longer be trusted and must be restarted.
    """

    retryable = True
