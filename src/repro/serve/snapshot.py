"""Warm-worker snapshots: persist and restore a serving service.

A cold worker pays three start-up costs before its first fast answer: it
must featurise the database (building the packed region corpus), rebuild
any auxiliary bag corpora (the colour baseline's SBN bags), and retrain
every concept its traffic repeats.  :func:`save_service` captures all
three — the database *with* its cached packed view, every extra corpus in
packed columnar form, and the trained-concept cache's entries serialised
through the versioned wire codec — in one ``.npz``; :func:`load_service`
rebuilds a :class:`~repro.api.service.RetrievalService` that answers a
repeated query with **zero retrains** (the first lookup is a cache hit).

Cache entries whose values the codec cannot express (custom model types
without training diagnostics) are skipped, counted, and reported in the
returned :class:`SnapshotInfo` rather than silently dropped.

:func:`load_corpus_service` is the third way to start a worker: it opens a
sharded synthetic corpus directory (``repro synth generate`` output),
builds the packed view shard by shard, and serves the bare
:class:`~repro.core.retrieval.PackedCorpus` directly — no pixel database
exists for generated corpora, and none is needed to rank.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.api.learners import ConceptModel, LearnedModel
from repro.api.service import RetrievalService
from repro.core.diverse_density import TrainingResult
from repro.core.retrieval import PackedCorpus, packed_view
from repro.core.sharding import adopt_index_payload, index_payload
from repro.index.ann import adopt_ann_payload, ann_payload
from repro.database.persistence import database_from_payload, database_payload
from repro.errors import CodecError, ServeError
from repro.serve import codec

_SNAPSHOT_VERSION = 1
#: The database corpus key; its packed view rides inside the database
#: payload, not the extra-corpora section.
_DATABASE_KEY = "region-bags"


@dataclass(frozen=True)
class SnapshotInfo:
    """What a snapshot save/load actually carried.

    Attributes:
        path: the snapshot file.
        n_images: database size.
        corpus_keys: corpora included (packed), database corpus first.
        n_cache_entries: trained-concept cache entries carried.
        n_cache_skipped: cache entries the codec could not serialise
            (skipped on save) or reconstruct (skipped on load).
        n_corpora_skipped: warmed corpora that could not be packed for
            the snapshot (the restored worker rebuilds them cold).
    """

    path: Path
    n_images: int
    corpus_keys: tuple[str, ...]
    n_cache_entries: int
    n_cache_skipped: int
    n_corpora_skipped: int = 0


def encode_cache_entry(key: str, value: object) -> dict | None:
    """The JSON form of one cache entry, or ``None`` when not expressible.

    Shared by serve snapshots and the worker pool's warm-start handoff
    (:mod:`repro.serve.workers`): both carry trained-concept cache entries
    across a process boundary through the versioned wire codec.
    """
    if isinstance(value, TrainingResult):
        return {
            "key": key,
            "value_kind": "training",
            "payload": codec.encode_training_result(value),
        }
    if isinstance(value, LearnedModel) and value.training is not None:
        return {
            "key": key,
            "value_kind": "model",
            "payload": codec.encode_training_result(value.training),
        }
    return None


def decode_cache_entry(entry: dict) -> tuple[str, object] | None:
    """Inverse of :func:`encode_cache_entry` (``None`` for unknown kinds)."""
    value_kind = entry.get("value_kind")
    training = codec.decode_training_result(entry["payload"])
    if value_kind == "training":
        return str(entry["key"]), training
    if value_kind == "model":
        return str(entry["key"]), ConceptModel(training)
    return None


def save_service(service: RetrievalService, path: str | Path) -> SnapshotInfo:
    """Write a warm-worker snapshot; returns what it carried.

    The snapshot holds the database (pixels + cached packed corpus), every
    additional warmed corpus as a bare packed view, the shard index of any
    corpus that built one (so a warm worker's first large ``top_k`` query
    skips the index build too), and the concept cache's serialisable
    entries in LRU order.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    # A snapshot exists to start workers hot — force the packed region
    # corpus to exist so it always rides along.
    service.database.packed()
    # The database's rank index (when built) now rides inside the database
    # payload itself (format v3); serve snapshots no longer duplicate it.
    db_manifest, arrays = database_payload(service.database, key_prefix="db_")

    corpora_manifest: dict[str, dict] = {}
    n_corpora_skipped = 0
    for key in service.corpus_keys:
        if key == _DATABASE_KEY:
            continue
        corpus = service.get_corpus(key)
        try:
            # packed_view answers from the corpus's cache when it has one
            # and packs legacy candidate-iterator corpora on the spot.
            packed = packed_view(corpus)
        except Exception:  # noqa: BLE001 - an unpackable corpus skips, counted
            n_corpora_skipped += 1
            continue
        slug = f"corpus_{len(corpora_manifest):02d}"
        arrays[f"{slug}_instances"] = packed.instances
        arrays[f"{slug}_offsets"] = packed.offsets
        corpora_manifest[key] = {
            "instances": f"{slug}_instances",
            "offsets": f"{slug}_offsets",
            "image_ids": list(packed.image_ids),
            "categories": list(packed.categories),
        }
        if packed.cached_shard_index is not None:
            corpora_manifest[key]["index"] = index_payload(
                packed.cached_shard_index, f"{slug}_index", arrays
            )
        if packed.cached_coarse_index is not None:
            corpora_manifest[key]["ann"] = ann_payload(
                packed.cached_coarse_index, f"{slug}_ann", arrays
            )

    cache_entries: list[dict] = []
    n_skipped = 0
    cache = service.concept_cache
    if cache is not None:
        for key, value in cache.export_entries():
            encoded = encode_cache_entry(key, value)
            if encoded is None:
                n_skipped += 1
            else:
                cache_entries.append(encoded)

    manifest = {
        "version": _SNAPSHOT_VERSION,
        "wire_version": codec.WIRE_VERSION,
        "database": db_manifest,
        "corpora": corpora_manifest,
        "cache": cache_entries,
        "service": {
            "max_history": service.max_history,
            "rank_mode": service.rank_mode,
            "reorder_bags": service.reorder_bags,
        },
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return SnapshotInfo(
        path=path,
        n_images=len(service.database),
        corpus_keys=(_DATABASE_KEY, *corpora_manifest),
        n_cache_entries=len(cache_entries),
        n_cache_skipped=n_skipped,
        n_corpora_skipped=n_corpora_skipped,
    )


def load_service(
    path: str | Path,
    *,
    cache_size: int | None = 128,
    max_history: int | None = None,
    rank_index: bool = True,
    rank_shards: int | None = None,
    rank_mode: str | None = None,
) -> tuple[RetrievalService, SnapshotInfo]:
    """Restore a warm service from a snapshot.

    Args:
        path: a file written by :func:`save_service`.
        cache_size: concept-cache capacity of the restored service
            (``0``/``None`` disables it — cached concepts are then dropped).
        max_history: history bound; ``None`` keeps the saved service's.
        rank_index: allow the sharded bound-pruned rank index; snapshotted
            indexes are restored either way (they are inert when disabled).
        rank_shards: pin the restored service's shard count.
        rank_mode: exact/approx serving mode; ``None`` keeps the saved
            service's (snapshots written before the coarse tier default
            to ``"exact"``).

    Returns:
        ``(service, info)`` — the service answers a repeated query without
        retraining, and ``info`` reports what was restored.

    Raises:
        ServeError: missing file or unsupported snapshot version.
        DatabaseError: malformed database payload.
    """
    path = Path(path)
    if not path.exists():
        raise ServeError(f"service snapshot {path} does not exist")
    try:
        archive = np.load(path)
    except (OSError, EOFError, ValueError) as exc:
        raise ServeError(
            f"service snapshot {path} is not a readable .npz archive: {exc}"
        ) from exc
    with archive as payload:
        try:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise ServeError(f"snapshot {path} has no valid manifest: {exc}") from exc
        version = manifest.get("version")
        if version != _SNAPSHOT_VERSION:
            raise ServeError(
                f"snapshot {path} has version {version}, "
                f"expected {_SNAPSHOT_VERSION}"
            )
        database = database_from_payload(manifest["database"], payload)
        saved_service = manifest.get("service", {})
        if max_history is None:
            max_history = saved_service.get("max_history")
        if rank_mode is None:
            rank_mode = saved_service.get("rank_mode", "exact")
        service = RetrievalService(
            database,
            cache_size=cache_size,
            max_history=max_history,
            rank_index=rank_index,
            rank_shards=rank_shards,
            rank_mode=rank_mode,
        )
        if database.cached_packed is not None:
            # Snapshots written before database format v3 carried the
            # database's rank index beside the database payload.
            adopt_index_payload(
                database.cached_packed, manifest.get("database_index"), payload
            )
        corpus_keys = [_DATABASE_KEY]
        for key, info in manifest.get("corpora", {}).items():
            packed = PackedCorpus(
                instances=payload[info["instances"]],
                offsets=payload[info["offsets"]],
                image_ids=info["image_ids"],
                categories=info["categories"],
            )
            adopt_index_payload(packed, info.get("index"), payload)
            adopt_ann_payload(packed, info.get("ann"), payload)
            service.adopt_corpus(key, packed)
            corpus_keys.append(key)

        n_entries = 0
        n_skipped = 0
        cache = service.concept_cache
        if cache is not None:
            restored: list[tuple[str, object]] = []
            for entry in manifest.get("cache", ()):
                try:
                    decoded = decode_cache_entry(entry)
                except (CodecError, KeyError, TypeError):
                    # An entry this codec cannot reconstruct (e.g. written
                    # by a newer wire version) costs a cold cache slot, not
                    # the whole restore.
                    decoded = None
                if decoded is None:
                    n_skipped += 1
                else:
                    restored.append(decoded)
            n_entries = cache.import_entries(restored)
    return service, SnapshotInfo(
        path=path,
        n_images=len(database),
        corpus_keys=tuple(corpus_keys),
        n_cache_entries=n_entries,
        n_cache_skipped=n_skipped,
    )


def load_corpus_service(
    path: str | Path,
    *,
    cache_size: int | None = 128,
    max_history: int | None = 1000,
    rank_index: bool = True,
    rank_shards: int | None = None,
    rank_mode: str = "exact",
    reorder_bags: bool = False,
    verify: bool = True,
) -> tuple[RetrievalService, SnapshotInfo]:
    """Serve a sharded synthetic corpus directory directly.

    The directory is a ``repro synth generate`` output
    (:class:`~repro.datasets.synth.store.ShardedCorpusReader` layout).  Its
    packed view becomes the service's database stand-in: ranking, the
    concept cache, ``batch_query`` and the rank-index policy all work
    unchanged; only pixel-level operations (there are no pixels) do not.

    Args:
        path: the corpus directory.
        cache_size / max_history / rank_index / rank_shards /
            rank_mode / reorder_bags: as
            :class:`~repro.api.service.RetrievalService`.
        verify: re-checksum every shard while building the packed view.

    Returns:
        ``(service, info)`` — ``info.corpus_keys`` is the region-bag key,
        cache counters are zero (generated corpora carry no trained cache).

    Raises:
        DatasetError: missing/corrupt/incomplete corpus directory.
    """
    from repro.datasets.synth.store import ShardedCorpusReader

    reader = ShardedCorpusReader(path)
    packed = reader.packed(verify=verify)
    service = RetrievalService(
        packed,
        cache_size=cache_size,
        max_history=max_history,
        rank_index=rank_index,
        rank_shards=rank_shards,
        rank_mode=rank_mode,
        reorder_bags=reorder_bags,
    )
    return service, SnapshotInfo(
        path=reader.directory,
        n_images=packed.n_bags,
        corpus_keys=(_DATABASE_KEY,),
        n_cache_entries=0,
        n_cache_skipped=0,
    )
