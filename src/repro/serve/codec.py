"""Schema-versioned wire codecs for the serving layer.

Every object that crosses a process boundary — requests, rankings, learned
concepts, training diagnostics, cache counters — is encoded as a plain
JSON-safe dict wrapped in a small envelope::

    {"kind": "<dto name>", "version": 1, ...fields}

The envelope carries the wire contract:

* **Versioning** — :data:`WIRE_VERSION` is bumped whenever a field changes
  meaning; a decoder presented with a version it does not speak *rejects*
  the payload (:class:`~repro.errors.CodecError`) instead of guessing.
* **Tolerance** — unknown *fields* are ignored on decode, so a newer peer
  may add fields without breaking older workers (add-only evolution within
  a version).
* **Round-trip fidelity** — ``decode(encode(x))`` reconstructs an object
  indistinguishable from ``x`` (:func:`wire_equal`; floats survive exactly
  via JSON's shortest-repr round-trip, arrays via element lists).

Use the generic :func:`encode` / :func:`decode` pair (dispatch on type /
``kind``) or the per-DTO functions when the expected kind is known.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.query import Query, QueryResult, QueryTiming
from repro.core.cache import CacheStats
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import StartRecord, TrainingResult
from repro.core.retrieval import RankedImage, RetrievalResult
from repro.errors import CodecError

#: Current wire-format version.  Decoders reject any other value.
WIRE_VERSION = 1


# --------------------------------------------------------------------- #
# Envelope helpers                                                       #
# --------------------------------------------------------------------- #


def envelope(kind: str, fields: Mapping[str, Any]) -> dict:
    """Wrap encoded fields in the ``{"kind", "version"}`` envelope."""
    return {"kind": kind, "version": WIRE_VERSION, **fields}


def open_envelope(payload: Any, kind: str | None = None) -> dict:
    """Validate an envelope and return it as a plain dict.

    Args:
        payload: the wire payload (must be a mapping).
        kind: when given, the payload's ``kind`` must match exactly.

    Raises:
        CodecError: on a non-mapping payload, a missing/mismatched kind, or
            a wire version this codec does not speak.
    """
    if not isinstance(payload, Mapping):
        raise CodecError(
            f"wire payload must be a mapping, got {type(payload).__name__}"
        )
    found = payload.get("kind")
    if not isinstance(found, str) or not found:
        raise CodecError("wire payload carries no 'kind'")
    if kind is not None and found != kind:
        raise CodecError(f"expected a {kind!r} payload, got {found!r}")
    version = payload.get("version")
    if version != WIRE_VERSION:
        raise CodecError(
            f"unsupported wire version {version!r} for kind {found!r} "
            f"(this codec speaks version {WIRE_VERSION})"
        )
    return dict(payload)


def _field(payload: Mapping, kind: str, name: str) -> Any:
    try:
        return payload[name]
    except KeyError:
        raise CodecError(f"{kind} payload is missing field {name!r}") from None


def _opt_tuple(value) -> tuple | None:
    return None if value is None else tuple(value)


def deadline_ms_field(payload: Any) -> float | None:
    """Validate and return a payload's ``deadline_ms`` field.

    ``deadline_ms`` is the *remaining* request budget in milliseconds at
    the moment the payload was sent (relative, not absolute — monotonic
    clocks do not cross process or host boundaries).  It may ride any
    request envelope; every hop re-stamps the remaining budget before
    forwarding.

    Returns ``None`` when the payload is not a mapping or carries no
    deadline.  A present deadline must be a positive finite number.

    Raises:
        CodecError: on a non-numeric, boolean, non-finite or non-positive
            ``deadline_ms``.
    """
    if not isinstance(payload, Mapping):
        return None
    value = payload.get("deadline_ms")
    if value is None:
        return None
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(float(value))
        or float(value) <= 0
    ):
        raise CodecError(
            "deadline_ms must be a positive finite number of milliseconds, "
            f"got {value!r}"
        )
    return float(value)


# --------------------------------------------------------------------- #
# Per-DTO codecs                                                         #
# --------------------------------------------------------------------- #


def encode_query(query: Query) -> dict:
    """Encode a :class:`~repro.api.query.Query`."""
    return envelope(
        "query",
        {
            "positive_ids": list(query.positive_ids),
            "negative_ids": list(query.negative_ids),
            "learner": query.learner,
            "params": dict(query.params),
            "candidate_ids": (
                None if query.candidate_ids is None else list(query.candidate_ids)
            ),
            "top_k": query.top_k,
            "category_filter": query.category_filter,
            "query_id": query.query_id,
        },
    )


def decode_query(payload: Any) -> Query:
    """Decode a ``query`` payload (validation is the Query's own)."""
    data = open_envelope(payload, "query")
    return Query(
        positive_ids=tuple(_field(data, "query", "positive_ids")),
        negative_ids=tuple(data.get("negative_ids", ())),
        learner=str(data.get("learner", "dd")),
        params=dict(data.get("params", {})),
        candidate_ids=_opt_tuple(data.get("candidate_ids")),
        top_k=data.get("top_k"),
        category_filter=data.get("category_filter"),
        query_id=str(data.get("query_id", "")),
    )


def encode_timing(timing: QueryTiming) -> dict:
    """Encode a :class:`~repro.api.query.QueryTiming`."""
    return envelope(
        "query_timing",
        {
            "fit_seconds": timing.fit_seconds,
            "rank_seconds": timing.rank_seconds,
            "total_seconds": timing.total_seconds,
        },
    )


def decode_timing(payload: Any) -> QueryTiming:
    """Decode a ``query_timing`` payload."""
    data = open_envelope(payload, "query_timing")
    return QueryTiming(
        fit_seconds=float(_field(data, "query_timing", "fit_seconds")),
        rank_seconds=float(_field(data, "query_timing", "rank_seconds")),
        total_seconds=float(_field(data, "query_timing", "total_seconds")),
    )


def encode_ranked_image(entry: RankedImage) -> dict:
    """Encode one :class:`~repro.core.retrieval.RankedImage`."""
    return envelope(
        "ranked_image",
        {
            "rank": entry.rank,
            "image_id": entry.image_id,
            "category": entry.category,
            "distance": entry.distance,
        },
    )


def decode_ranked_image(payload: Any) -> RankedImage:
    """Decode a ``ranked_image`` payload."""
    data = open_envelope(payload, "ranked_image")
    return RankedImage(
        rank=int(_field(data, "ranked_image", "rank")),
        image_id=str(_field(data, "ranked_image", "image_id")),
        category=str(_field(data, "ranked_image", "category")),
        distance=float(_field(data, "ranked_image", "distance")),
    )


def encode_ranking(result: RetrievalResult) -> dict:
    """Encode a :class:`~repro.core.retrieval.RetrievalResult`."""
    return envelope(
        "ranking",
        {
            "ranked": [encode_ranked_image(entry) for entry in result.ranked],
            "total_candidates": result.total_candidates,
        },
    )


def decode_ranking(payload: Any) -> RetrievalResult:
    """Decode a ``ranking`` payload."""
    data = open_envelope(payload, "ranking")
    ranked = tuple(
        decode_ranked_image(entry) for entry in _field(data, "ranking", "ranked")
    )
    return RetrievalResult(
        ranked, total_candidates=int(_field(data, "ranking", "total_candidates"))
    )


def encode_concept(concept: LearnedConcept) -> dict:
    """Encode a :class:`~repro.core.concept.LearnedConcept`."""
    return envelope(
        "concept",
        {
            "t": concept.t.tolist(),
            "w": concept.w.tolist(),
            "nll": concept.nll,
            "scheme": concept.scheme,
            "metadata": dict(concept.metadata),
        },
    )


def decode_concept(payload: Any) -> LearnedConcept:
    """Decode a ``concept`` payload."""
    data = open_envelope(payload, "concept")
    return LearnedConcept(
        t=np.asarray(_field(data, "concept", "t"), dtype=np.float64),
        w=np.asarray(_field(data, "concept", "w"), dtype=np.float64),
        nll=float(_field(data, "concept", "nll")),
        scheme=str(data.get("scheme", "")),
        metadata=dict(data.get("metadata", {})),
    )


def encode_start_record(record: StartRecord) -> dict:
    """Encode one :class:`~repro.core.diverse_density.StartRecord`."""
    return envelope(
        "start_record",
        {
            "bag_id": record.bag_id,
            "instance_index": record.instance_index,
            "value": record.value,
            "n_iterations": record.n_iterations,
            "converged": record.converged,
            "pruned": record.pruned,
        },
    )


def decode_start_record(payload: Any) -> StartRecord:
    """Decode a ``start_record`` payload."""
    data = open_envelope(payload, "start_record")
    return StartRecord(
        bag_id=str(_field(data, "start_record", "bag_id")),
        instance_index=int(_field(data, "start_record", "instance_index")),
        value=float(_field(data, "start_record", "value")),
        n_iterations=int(_field(data, "start_record", "n_iterations")),
        converged=bool(_field(data, "start_record", "converged")),
        pruned=bool(data.get("pruned", False)),
    )


def encode_training_result(training: TrainingResult) -> dict:
    """Encode a :class:`~repro.core.diverse_density.TrainingResult`."""
    return envelope(
        "training_result",
        {
            "concept": encode_concept(training.concept),
            "starts": [encode_start_record(record) for record in training.starts],
            "n_starts": training.n_starts,
            "elapsed_seconds": training.elapsed_seconds,
            "n_starts_pruned": training.n_starts_pruned,
        },
    )


def decode_training_result(payload: Any) -> TrainingResult:
    """Decode a ``training_result`` payload."""
    data = open_envelope(payload, "training_result")
    return TrainingResult(
        concept=decode_concept(_field(data, "training_result", "concept")),
        starts=tuple(
            decode_start_record(record) for record in data.get("starts", ())
        ),
        n_starts=int(data.get("n_starts", 0)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        n_starts_pruned=int(data.get("n_starts_pruned", 0)),
    )


def encode_query_result(result: QueryResult) -> dict:
    """Encode a :class:`~repro.api.query.QueryResult` (nested envelopes)."""
    return envelope(
        "query_result",
        {
            "query": encode_query(result.query),
            "ranking": encode_ranking(result.ranking),
            "concept": (
                None if result.concept is None else encode_concept(result.concept)
            ),
            "training": (
                None
                if result.training is None
                else encode_training_result(result.training)
            ),
            "timing": encode_timing(result.timing),
        },
    )


def decode_query_result(payload: Any) -> QueryResult:
    """Decode a ``query_result`` payload."""
    data = open_envelope(payload, "query_result")
    concept = data.get("concept")
    training = data.get("training")
    return QueryResult(
        query=decode_query(_field(data, "query_result", "query")),
        ranking=decode_ranking(_field(data, "query_result", "ranking")),
        concept=None if concept is None else decode_concept(concept),
        training=None if training is None else decode_training_result(training),
        timing=decode_timing(_field(data, "query_result", "timing")),
    )


def encode_cache_stats(stats: CacheStats) -> dict:
    """Encode :class:`~repro.core.cache.CacheStats` (engine/cache metadata)."""
    return envelope(
        "cache_stats",
        {
            "hits": stats.hits,
            "misses": stats.misses,
            "entries": stats.entries,
            "max_entries": stats.max_entries,
        },
    )


def decode_cache_stats(payload: Any) -> CacheStats:
    """Decode a ``cache_stats`` payload."""
    data = open_envelope(payload, "cache_stats")
    return CacheStats(
        hits=int(_field(data, "cache_stats", "hits")),
        misses=int(_field(data, "cache_stats", "misses")),
        entries=int(_field(data, "cache_stats", "entries")),
        max_entries=int(_field(data, "cache_stats", "max_entries")),
    )


# --------------------------------------------------------------------- #
# Generic dispatch                                                       #
# --------------------------------------------------------------------- #

_ENCODERS: tuple[tuple[type, Callable[[Any], dict]], ...] = (
    (Query, encode_query),
    (QueryTiming, encode_timing),
    (RankedImage, encode_ranked_image),
    (RetrievalResult, encode_ranking),
    (LearnedConcept, encode_concept),
    (StartRecord, encode_start_record),
    (TrainingResult, encode_training_result),
    (QueryResult, encode_query_result),
    (CacheStats, encode_cache_stats),
)

_DECODERS: dict[str, Callable[[Any], Any]] = {
    "query": decode_query,
    "query_timing": decode_timing,
    "ranked_image": decode_ranked_image,
    "ranking": decode_ranking,
    "concept": decode_concept,
    "start_record": decode_start_record,
    "training_result": decode_training_result,
    "query_result": decode_query_result,
    "cache_stats": decode_cache_stats,
}


def encode(obj: Any) -> dict:
    """Encode any wire DTO (dispatch on type).

    Raises:
        CodecError: for a type with no registered codec.
    """
    for cls, encoder in _ENCODERS:
        if isinstance(obj, cls):
            return encoder(obj)
    raise CodecError(f"no wire codec for {type(obj).__name__}")


def decode(payload: Any) -> Any:
    """Decode any wire payload (dispatch on its ``kind``).

    Raises:
        CodecError: for a malformed envelope, unknown kind or unsupported
            version.
    """
    data = open_envelope(payload)
    decoder = _DECODERS.get(data["kind"])
    if decoder is None:
        raise CodecError(f"unknown wire kind {data['kind']!r}")
    return decoder(data)


def wire_equal(a: Any, b: Any) -> bool:
    """Whether two DTOs are indistinguishable on the wire.

    The DTOs carry numpy arrays, which breaks plain ``==``; comparing the
    encoded forms gives exact structural (and exact float) equality — the
    round-trip property the codec tests assert is
    ``wire_equal(decode(encode(x)), x)``.
    """
    return encode(a) == encode(b)
