"""The transport-agnostic serving facade.

:class:`ServiceApp` exposes the retrieval system as plain dict-in/dict-out
endpoints — ``query``, ``batch_query``, ``feedback``, ``rank``,
``rank_fragment``, ``health`` and ``stats`` — over one shared
:class:`~repro.api.service.RetrievalService` and one multi-tenant
:class:`~repro.serve.sessions.SessionStore`.  Payloads are the versioned
wire envelopes of :mod:`repro.serve.codec`; the app never touches a socket,
so the same instance serves the stdlib HTTP transport
(:mod:`repro.serve.http`), an in-process test driver, or any transport a
deployment prefers (WSGI, gRPC, a queue) without change.

Endpoints are stateless with one deliberate exception: ``feedback`` (and
session-addressed ``rank``) resolve their token through the session store,
which is exactly the state a relevance-feedback loop needs to survive
stateless requests.

Request/response shapes (all enveloped, version-checked)::

    query        <- {"kind": "query", ...}                      -> query_result
    batch_query  <- {"kind": "batch_query", "queries": [...]}   -> batch_query_result
    feedback     <- {"kind": "feedback", "session": tok|None,   -> feedback_result
                     "add_positive_ids": [...], ...}
    rank         <- {"kind": "rank", "session": tok             -> rank_result
                     | "concept": {...}, "top_k": ...}
    rank_fragment<- {"kind": "rank_fragment", "concept": {...}, -> rank_fragment_result
                     "top_k": ..., "start": ..., "stop": ...}
    health       <- (no payload)                                -> health
    stats        <- (no payload)                                -> stats

``rank_fragment`` is the internal scatter/gather half of a distributed
rank: it evaluates one contiguous bag range and returns the compact
``(positions, distances)`` candidate fragment the coordinator merges
(:mod:`repro.serve.scatter`).  It is a public endpoint like the others —
a fragment request over plain HTTP gets the same answer a pooled worker
computes over its pipe.

Errors raise the package's typed exceptions (:class:`CodecError`,
:class:`QueryError`, :class:`SessionError`, ...); transports map them to
their native failure shape (:func:`error_payload` builds the wire form).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.learners import available_learners
from repro.api.service import RetrievalService
from repro.core.retrieval import RANK_MODES, Ranker
from repro.core.sharding import ShardedRanker
from repro.serve import codec
from repro.serve.sessions import SessionStore
from repro import errors as errors_module
from repro.errors import (
    CodecError,
    DeadlineError,
    QueryError,
    ReproError,
    ServeError,
    SessionError,
)
from repro.version import __version__


def error_payload(exc: BaseException) -> dict:
    """The wire form of a failure (an enveloped ``error`` payload).

    Retryable failures (a worker restart, a deadline expiry) carry a
    ``"retryable": true`` field so clients can retry without parsing
    messages; the flag is omitted otherwise (add-only wire evolution).
    """
    fields: dict = {"error": type(exc).__name__, "message": str(exc)}
    if getattr(exc, "retryable", False):
        fields["retryable"] = True
    return codec.envelope("error", fields)


class ServiceApp:
    """Dict-in/dict-out serving endpoints over one retrieval service.

    Args:
        service: the warmed retrieval service to serve.
        sessions: an existing session store to use; one is created over
            ``service`` by default.
        name: service name reported by ``health``.
    """

    #: Endpoint names accepted by :meth:`dispatch`.
    ENDPOINTS = (
        "query",
        "batch_query",
        "feedback",
        "rank",
        "rank_fragment",
        "health",
        "stats",
    )

    #: Server-side ceiling on the wire-requested ``batch_query`` worker
    #: count — the request may ask, but it does not size our thread pool.
    MAX_BATCH_WORKERS = 16

    def __init__(
        self,
        service: RetrievalService,
        sessions: SessionStore | None = None,
        name: str = "repro",
    ) -> None:
        if sessions is not None and sessions.service is not service:
            raise SessionError("the session store must wrap the served service")
        self._service = service
        # `is not None`, not truthiness: a freshly built store is empty and
        # __len__-falsy, but its TTL/capacity configuration must be kept.
        self._sessions = sessions if sessions is not None else SessionStore(service)
        self._name = name

    @property
    def service(self) -> RetrievalService:
        """The underlying retrieval service."""
        return self._service

    @property
    def sessions(self) -> SessionStore:
        """The multi-tenant session store."""
        return self._sessions

    def dispatch(self, endpoint: str, payload: Mapping | None = None) -> dict:
        """Route one request by endpoint name.

        Raises:
            QueryError: unknown endpoint.
            CodecError / ReproError subclasses: whatever the endpoint raises.
        """
        name = endpoint.replace("-", "_")
        if name not in self.ENDPOINTS:
            raise QueryError(
                f"unknown endpoint {endpoint!r} "
                f"(known: {', '.join(self.ENDPOINTS)})"
            )
        # Validate any riding deadline and refuse work whose budget is
        # already gone — the caller stopped waiting, so computing the
        # answer would only burn the worker for nobody.
        from repro.serve.resilience import deadline_from_payload

        deadline = deadline_from_payload(payload)
        if deadline is not None and deadline.expired:
            raise DeadlineError(
                f"{name} request arrived with its deadline already expired"
            )
        if name in ("health", "stats"):
            return getattr(self, name)()
        return getattr(self, name)(payload)

    # ------------------------------------------------------------------ #
    # Stateless retrieval                                                 #
    # ------------------------------------------------------------------ #

    def query(self, payload: Mapping) -> dict:
        """Execute one wire query; returns the wire result.

        The result is exactly what an in-process
        :meth:`RetrievalService.query` returns, encoded — served and
        embedded rankings are interchangeable.
        """
        query = codec.decode_query(payload)
        return codec.encode_query_result(self._service.query(query))

    def batch_query(self, payload: Mapping) -> dict:
        """Execute a batch of wire queries (optionally multi-worker)."""
        data = codec.open_envelope(payload, "batch_query")
        queries_field = data.get("queries")
        if not isinstance(queries_field, (list, tuple)):
            raise CodecError("batch_query payload needs a 'queries' list")
        queries = [codec.decode_query(entry) for entry in queries_field]
        workers = data.get("workers")
        if workers is not None:
            workers = min(int(workers), self.MAX_BATCH_WORKERS)
        results = self._service.batch_query(queries, workers=workers)
        return codec.envelope(
            "batch_query_result",
            {"results": [codec.encode_query_result(result) for result in results]},
        )

    def rank(self, payload: Mapping) -> dict:
        """Rank the database with a session's model or an explicit concept.

        With ``"session"``, re-ranks using that tenant's current trained
        model (examples excluded, no retraining).  With ``"concept"``, ranks
        the region corpus against a concept shipped over the wire — the
        train-once / rank-anywhere path.  An optional ``"rank_mode"``
        (``"exact"`` | ``"approx"``) overrides the service's rank mode for
        this one concept request: ``"approx"`` answers from the hash-coded
        coarse tier (:mod:`repro.index.ann`) when the served corpus carries
        one.
        """
        data = codec.open_envelope(payload, "rank")
        top_k = data.get("top_k")
        category_filter = data.get("category_filter")
        rank_mode = data.get("rank_mode")
        if rank_mode is not None and rank_mode not in RANK_MODES:
            raise CodecError(
                f"rank payload rank_mode must be one of {RANK_MODES}, "
                f"got {rank_mode!r}"
            )
        token = data.get("session")
        if token is not None:
            session = self._sessions.get(str(token))
            ranking = session.rank(
                data.get("candidate_ids"),
                top_k=None if top_k is None else int(top_k),
                category_filter=category_filter,
                exclude=tuple(data.get("exclude", ())),
            )
        elif data.get("concept") is not None:
            concept = codec.decode_concept(data["concept"])
            candidate_ids = data.get("candidate_ids")
            # packed_database applies the service's rank policy; subset
            # views arrive non-routable (no throwaway shard index).
            packed = self._service.packed_database(
                None if candidate_ids is None else tuple(candidate_ids)
            )
            ranking = Ranker(rank_mode=rank_mode).rank(
                concept,
                packed,
                top_k=None if top_k is None else int(top_k),
                exclude=tuple(data.get("exclude", ())),
                category_filter=category_filter,
            )
        else:
            raise CodecError("rank payload needs a 'session' token or a 'concept'")
        return codec.envelope("rank_result", {"ranking": codec.encode_ranking(ranking)})

    def rank_fragment(self, payload: Mapping) -> dict:
        """Evaluate one contiguous bag range of a scattered rank query.

        The worker half of the cross-process scatter path
        (:mod:`repro.serve.scatter`): runs the bound pass + chunked
        survivor evaluation over bags ``[start, stop)`` of the database's
        packed view and returns the compact candidate fragment — bag
        *positions* plus exact distances (the coordinator owns the
        position → id/category mapping, so ids never cross the wire
        twice) and the bound-pass survivor count for ``stats()``.  An
        optional ``threshold`` pre-seeds pruning; the coordinator sends
        the :func:`~repro.core.sharding.seed_threshold` sample's kth-best
        so every fragment prunes against an already tight cutoff.
        """
        data = codec.open_envelope(payload, "rank_fragment")
        if data.get("concept") is None:
            raise CodecError("rank_fragment payload needs a 'concept'")
        concept = codec.decode_concept(data["concept"])
        for field in ("top_k", "start", "stop"):
            value = data.get(field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise CodecError(
                    f"rank_fragment payload needs an integer {field!r}, "
                    f"got {value!r}"
                )
        top_k = int(data["top_k"])
        start = int(data["start"])
        stop = int(data["stop"])
        threshold = data.get("threshold")
        positions, distances, n_evaluated = ShardedRanker().fragment_candidates(
            concept,
            self._service.packed_database(),
            top_k=top_k,
            start=start,
            stop=stop,
            exclude=tuple(data.get("exclude", ())),
            category_filter=data.get("category_filter"),
            initial_threshold=(
                float("inf") if threshold is None else float(threshold)
            ),
        )
        return codec.envelope(
            "rank_fragment_result",
            {
                "positions": [int(position) for position in positions],
                "distances": [float(distance) for distance in distances],
                "n_evaluated": int(n_evaluated),
            },
        )

    # ------------------------------------------------------------------ #
    # Stateful feedback                                                   #
    # ------------------------------------------------------------------ #

    def feedback(self, payload: Mapping) -> dict:
        """One relevance-feedback round for a (possibly new) session.

        Without a ``"session"`` token a session is created (honouring
        ``"learner"`` / ``"params"``) — the response always echoes the token
        so the client can continue the loop.
        """
        data = codec.open_envelope(payload, "feedback")
        token = data.get("session")
        created = token is None
        if created:
            params = data.get("params")
            token = self._sessions.create(
                learner=str(data.get("learner", "dd")),
                params=None if params is None else dict(params),
            )
        top_k = data.get("top_k")
        try:
            round_result = self._sessions.feedback_round(
                str(token),
                add_positive_ids=tuple(data.get("add_positive_ids", ())),
                add_negative_ids=tuple(data.get("add_negative_ids", ())),
                false_positive_ids=tuple(data.get("false_positive_ids", ())),
                rank=bool(data.get("rank", True)),
                top_k=None if top_k is None else int(top_k),
                category_filter=data.get("category_filter"),
            )
        except Exception:
            # A round that never succeeded should not leave an orphaned
            # session behind: the client has no token to continue with, and
            # retry storms would otherwise fill max_sessions with orphans.
            if created:
                self._sessions.drop(str(token))
            raise
        concept = round_result.concept
        return codec.envelope(
            "feedback_result",
            {
                "session": round_result.token,
                "positive_ids": list(round_result.positive_ids),
                "negative_ids": list(round_result.negative_ids),
                "ranking": (
                    None
                    if round_result.ranking is None
                    else codec.encode_ranking(round_result.ranking)
                ),
                "concept": None if concept is None else codec.encode_concept(concept),
            },
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        """Liveness + identity (cheap enough for load-balancer probes)."""
        return codec.envelope(
            "health",
            {
                "status": "ok",
                "service": self._name,
                "package_version": __version__,
                "wire_version": codec.WIRE_VERSION,
                "database": getattr(self._service.database, "name", ""),
                "n_images": len(self._service.database),
                "learners": list(available_learners()),
            },
        )

    def stats(self) -> dict:
        """Serving counters: service (incl. concept cache) and sessions."""
        return codec.envelope(
            "stats",
            {
                "service": self._service.stats(),
                "sessions": self._sessions.stats(),
            },
        )


def handle_safely(app, endpoint: str, payload: Mapping | None) -> tuple[int, dict]:
    """Dispatch and map failures to ``(status, wire payload)``.

    The shared transport glue: 200 on success, 404 for unknown sessions,
    504 for expired request deadlines, 400 for every other deliberate
    package error, 500 for genuine bugs.
    Transports that have status codes (HTTP) use the integer directly;
    others can key off the payload's ``kind``.

    Apps that already produce ``(status, payload)`` pairs — the worker
    pool's :class:`~repro.serve.workers.WorkerDispatchApp`, whose statuses
    were assigned by this very function inside a worker process — expose a
    ``handle`` method instead, and their statuses pass through verbatim (a
    worker's 500 must not be downgraded to the parent's 400).
    """
    handle = getattr(app, "handle", None)
    if callable(handle):
        try:
            return handle(endpoint, payload)
        except Exception as exc:  # noqa: BLE001 - transport glue must not die
            return 500, error_payload(exc)
    try:
        return 200, app.dispatch(endpoint, payload)
    except DeadlineError as exc:
        return 504, error_payload(exc)
    except SessionError as exc:
        return 404, error_payload(exc)
    except ReproError as exc:
        return 400, error_payload(exc)
    except Exception as exc:  # noqa: BLE001 - the server must not die mid-request
        return 500, error_payload(exc)


def raise_error_payload(payload: Any, status: int | None = None) -> None:
    """Re-raise a wire ``error`` payload as its typed package exception.

    The inverse of :func:`error_payload`, shared by the HTTP client and the
    worker pool's dispatch: a failure that crossed a process or network
    boundary surfaces to the caller as the same exception type the far side
    raised.  Unknown or missing exception names degrade to
    :class:`~repro.errors.ServeError` — this function *always* raises.
    """
    message = f"request failed with status {status}" if status else "request failed"
    if isinstance(payload, Mapping):
        name = payload.get("error")
        message = str(payload.get("message", message))
        cls = getattr(errors_module, str(name), None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            exc = cls(message)
            if payload.get("retryable"):
                exc.retryable = True
            raise exc
    raise ServeError(message)
