"""Pre-fork worker pool: N processes ranking one shared-memory corpus.

One serving process is GIL-bound — the exact ranking kernels never use
more than ~1 core.  :class:`WorkerPool` spawns N worker processes, each
running its own :class:`~repro.serve.app.ServiceApp` over a
:class:`~repro.api.service.RetrievalService`, all ranking against **one**
:class:`~repro.serve.shm.SharedPackedCorpus` mapping (zero per-worker
copies of the instance matrix, squares cache, or shard-index envelopes).
Requests travel over per-worker ``multiprocessing`` pipes carrying the
PR 4 wire payloads; replies come back as the ``(status, payload)`` pairs
:func:`~repro.serve.app.handle_safely` produced *inside* the worker, so
typed errors cross the process boundary with their HTTP status intact.

:class:`WorkerDispatchApp` adapts the pool to the transport layer: it
quacks like a :class:`~repro.serve.app.ServiceApp` as far as
:class:`~repro.serve.http.ReproServer` is concerned (``repro serve
--workers N`` is the same HTTP server, dispatching into the pool instead
of a local service).

Session state lives *inside* each worker's
:class:`~repro.serve.sessions.SessionStore`; the pool keeps a bounded
token → worker affinity map so every round of a feedback session lands on
the worker that holds it.  Stateless endpoints round-robin.

Workers are spawn-started (fork-safety with threads in the parent),
warm-started from the parent service — the trained-concept cache entries
travel through the same codec the snapshot layer uses — health-checked by
ping, and restarted automatically when one crashes (its sessions are
lost, which the restart reports; everything stateless continues).

Every dispatch honours a per-request :class:`~repro.serve.resilience.Deadline`
when the payload carries one (``deadline_ms``): the parent waits on the
worker pipe with ``poll(remaining)`` instead of a blocking ``recv``, so a
hung-but-alive worker is detected at expiry, terminated and replaced (a
late reply would desynchronise the pipe), and the request answers a typed
504 :class:`~repro.errors.DeadlineError` — it never hangs past its budget.
A per-worker-slot :class:`~repro.serve.resilience.CircuitBreaker` routes
round-robin traffic around a flapping worker until a cooldown re-probe,
sessions lost to a restart surface as a retryable 404
:class:`~repro.errors.SessionError`, and every recovery action is counted
in ``stats()["resilience"]``.  A seeded
:class:`~repro.testing.faults.FaultPlan` can ride the knobs to exercise
all of it deterministically.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping, Sequence

from repro.core.retrieval import AUTO_SHARD_MIN_BAGS, packed_view
from repro.errors import (
    CodecError,
    DeadlineError,
    ServeError,
    SessionError,
    WorkerProtocolError,
    WorkerUnresponsiveError,
)
from repro.serve.app import ServiceApp, handle_safely, raise_error_payload
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceStats,
    deadline_from_payload,
    stamp_deadline,
)
from repro.serve.scatter import ScatterRanker
from repro.serve.shm import SharedPackedCorpus

#: The database corpus key (mirrors ``repro.serve.snapshot``).
_DATABASE_KEY = "region-bags"
#: Control verbs on the worker pipe (never valid endpoint names).
_PING = "__ping__"
_READY = "__ready__"
#: Endpoints whose payload may address a session.
_SESSION_ENDPOINTS = ("feedback", "rank")
#: Affinity-map bound — tokens beyond this drop oldest-first (the worker
#: still holds the session; a dropped route just falls back to round-robin
#: and surfaces as an unknown session only if it lands elsewhere).
MAX_ROUTES = 65536
#: How long to wait for a spawned worker to report ready.
READY_TIMEOUT = 60.0
#: Sessions lost to worker restarts, remembered so their next request can
#: answer a precise retryable 404 instead of a generic transport error.
MAX_LOST_SESSIONS = 65536
#: Default pipe wait for payload-less control traffic (ping / broadcast):
#: even without a request deadline, a wedged worker must not wedge a
#: health check or a ``stats`` aggregation forever.
CONTROL_TIMEOUT = 30.0


def _worker_main(conn, specs: dict, knobs: dict) -> None:
    """Worker process entry point (module-level: spawn must import it).

    Attaches every shared corpus in ``specs``, rebuilds a warm
    :class:`RetrievalService` + :class:`ServiceApp`, then answers
    ``(endpoint, payload)`` requests until the ``None`` sentinel.
    """
    # The pool owns worker lifetime: a Ctrl+C aimed at the parent must not
    # kill workers mid-drain (the parent stops them after the HTTP drain).
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Imports deferred so their cost lands in the worker, and so a spawn
    # re-import of this module stays cheap.
    from repro.api.service import RetrievalService
    from repro.serve.sessions import SessionStore
    from repro.serve.snapshot import decode_cache_entry

    attachments = []
    injector = None
    try:
        plan_wire = knobs.get("fault_plan")
        if plan_wire is not None:
            from repro.testing.faults import FaultInjector, FaultPlan

            injector = FaultInjector(
                FaultPlan.from_wire(plan_wire),
                worker_id=int(knobs.get("worker_id", 0)),
                incarnation=int(knobs.get("incarnation", 0)),
            )
        shared = SharedPackedCorpus.attach(specs["database"])
        attachments.append(shared)
        database = shared.corpus()
        service = RetrievalService(
            database,
            cache_size=knobs.get("cache_size", 128),
            max_history=knobs.get("max_history", 1000),
            rank_index=knobs.get("rank_index", True),
            rank_shards=knobs.get("rank_shards"),
            # Any bag reordering already happened parent-side (the shared
            # segment carries the reordered corpus), so only the mode knob
            # travels; reorder_bags stays off in workers.
            rank_mode=knobs.get("rank_mode", "exact"),
        )
        for key, spec in specs.get("corpora", {}).items():
            extra = SharedPackedCorpus.attach(spec)
            attachments.append(extra)
            service.adopt_corpus(key, extra.corpus())
        cache = service.concept_cache
        if cache is not None:
            restored = []
            for entry in knobs.get("cache_entries", ()):
                try:
                    decoded = decode_cache_entry(entry)
                except Exception:  # noqa: BLE001 - a bad entry costs a slot
                    decoded = None
                if decoded is not None:
                    restored.append(decoded)
            cache.import_entries(restored)
        sessions = SessionStore(
            service,
            ttl_seconds=knobs.get("session_ttl", 1800.0),
            max_sessions=knobs.get("max_sessions", 1024),
        )
        app = ServiceApp(service, sessions, name=knobs.get("name", "repro"))
    except BaseException as exc:  # noqa: BLE001 - report, don't vanish
        try:
            conn.send((_READY, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            conn.close()
        return

    info = {
        "pid": mp.current_process().pid,
        # False proves the ranking arrays are views into the shared
        # segment, not private copies (the bench asserts on this).
        "owns_instances": bool(database.instances.flags["OWNDATA"]),
        "n_bags": database.n_bags,
    }
    if injector is not None:
        injector.sleep_on_start()
    conn.send((_READY, info))
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if request is None:
                break
            endpoint, payload = request
            if endpoint == _PING:
                conn.send((200, {"kind": "pong", **info,
                                 "sessions": sessions.stats()}))
                continue
            # The fault-injection boundary: exactly where real crashes,
            # stalls and corruption strike — after the request is framed,
            # before (or instead of) the app seeing it.
            fault = None
            if injector is not None:
                fault = injector.before_dispatch(endpoint)
            if fault is not None:
                if fault.kind == "crash":
                    os._exit(32)
                if fault.kind == "stall":
                    time.sleep(fault.seconds)
                elif fault.kind == "error":
                    failure = ServeError(
                        f"injected error-status fault on worker "
                        f"{knobs.get('worker_id', 0)}"
                    )
                    failure.retryable = True
                    from repro.serve.app import error_payload

                    conn.send((500, error_payload(failure)))
                    continue
            reply = handle_safely(app, endpoint, payload)
            if fault is not None and fault.kind == "corrupt":
                conn.send(["corrupt-reply", knobs.get("worker_id", 0)])
                continue
            conn.send(reply)
    finally:
        try:
            conn.close()
        finally:
            for attachment in attachments:
                attachment.close()


class _Worker:
    """Parent-side handle: process + pipe + a lock serialising the pipe."""

    def __init__(
        self,
        context,
        worker_id: int,
        specs: dict,
        knobs: dict,
        incarnation: int = 0,
    ) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.lock = threading.Lock()
        self.process = context.Process(
            target=_worker_main,
            # worker_id/incarnation identify this process generation to
            # the fault injector (faults target one incarnation, so a
            # restarted worker comes back clean).
            args=(
                child_conn,
                specs,
                {**knobs, "worker_id": worker_id, "incarnation": incarnation},
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        if not parent_conn.poll(READY_TIMEOUT):
            self.terminate()
            raise ServeError(
                f"worker {worker_id} did not report ready within "
                f"{READY_TIMEOUT:.0f}s"
            )
        verb, info = parent_conn.recv()
        if verb != _READY or "error" in info:
            detail = info.get("error", f"unexpected {verb!r} message")
            self.terminate()
            raise ServeError(f"worker {worker_id} failed to start: {detail}")
        self.info = info

    def request(
        self,
        endpoint: str,
        payload: Mapping | None,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        """One request/reply round trip (raises on a dead or hung worker).

        Args:
            endpoint: the wire endpoint name (or a control verb).
            payload: the request payload.
            timeout: seconds to wait for the reply; ``None`` blocks.

        Raises:
            WorkerUnresponsiveError: no reply within ``timeout``.  The
                caller **must** restart this worker: a late reply left in
                the pipe would answer the *next* request.
            WorkerProtocolError: the reply is not a ``(status, payload)``
                pair — the worker can no longer be trusted.
            ServeError: the worker died mid-request.
        """
        with self.lock:
            try:
                self.conn.send((endpoint, payload))
                if timeout is not None and not self.conn.poll(max(timeout, 0.0)):
                    raise WorkerUnresponsiveError(
                        f"worker {self.worker_id} (pid {self.process.pid}) "
                        f"did not answer {endpoint!r} within {timeout:.3f}s"
                    )
                reply = self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise ServeError(
                    f"worker {self.worker_id} (pid {self.process.pid}) "
                    f"died mid-request: {type(exc).__name__}"
                ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or isinstance(reply[0], bool)
            or not isinstance(reply[0], int)
            or not isinstance(reply[1], Mapping)
        ):
            raise WorkerProtocolError(
                f"worker {self.worker_id} (pid {self.process.pid}) sent a "
                f"malformed reply of type {type(reply).__name__} instead of "
                f"a (status, payload) pair"
            )
        return reply

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful: sentinel, then join, then escalate to terminate.

        A worker wedged inside a request holds the pipe lock on its
        dispatcher thread, so the sentinel send must not block behind it
        — a bounded lock acquire decides between the graceful path and
        going straight to :meth:`terminate` (no orphan processes either
        way).
        """
        sent = False
        if self.lock.acquire(timeout=0.5):
            try:
                self.conn.send(None)
                sent = True
            except (BrokenPipeError, OSError):
                pass
            finally:
                self.lock.release()
        self.process.join(timeout if sent else 0.5)
        if self.process.is_alive():
            self.terminate()
        try:
            self.conn.close()
        except OSError:
            pass

    def terminate(self) -> None:
        """Forceful stop, escalating SIGTERM → SIGKILL; never leaks."""
        try:
            self.process.terminate()
            self.process.join(5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(5.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass


class WorkerPool:
    """N spawn-started serving workers over one shared-memory corpus.

    Build with :meth:`from_service` (shares the parent service's packed
    corpora and trained-concept cache) or :meth:`from_snapshot` /
    :meth:`from_corpus_dir` (load, then share).  Use as a context manager
    or call :meth:`stop` — the pool owns the shared segments and unlinks
    them on stop.
    """

    def __init__(
        self,
        shared: dict[str, SharedPackedCorpus],
        n_workers: int,
        knobs: dict | None = None,
        *,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        if n_workers < 1:
            raise ServeError(f"n_workers must be >= 1, got {n_workers}")
        if _DATABASE_KEY not in shared:
            raise ServeError(
                f"the pool needs a {_DATABASE_KEY!r} shared corpus"
            )
        self._shared = shared
        self._knobs = dict(knobs or {})
        self._specs = {
            "database": shared[_DATABASE_KEY].spec,
            "corpora": {
                key: corpus.spec
                for key, corpus in shared.items()
                if key != _DATABASE_KEY
            },
        }
        self._context = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._routes: OrderedDict[str, int] = OrderedDict()
        # Tokens whose owning worker was restarted: their next request
        # answers a precise retryable 404 ("lost to worker restart")
        # instead of whatever worker round-robin happens to pick.
        self._lost_sessions: OrderedDict[str, bool] = OrderedDict()
        self._rr = itertools.count()
        self._n_restarts = 0
        self._incarnations = [0] * n_workers
        self._stopped = False
        self._fan_out: ThreadPoolExecutor | None = None
        self.resilience = ResilienceStats()
        self.breaker = CircuitBreaker(
            n_workers,
            threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
        )
        self._workers: list[_Worker] = []
        try:
            for worker_id in range(n_workers):
                self._workers.append(
                    _Worker(self._context, worker_id, self._specs, self._knobs)
                )
        except BaseException:
            self.stop()
            raise

    # ------------------------------------------------------------------ #
    # Constructors                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_service(
        cls,
        service,
        n_workers: int,
        *,
        share_squares: bool = True,
        session_ttl: float = 1800.0,
        max_sessions: int = 1024,
        name: str = "repro",
        fault_plan=None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> "WorkerPool":
        """Share a warmed service's corpora + concept cache with N workers.

        The database's packed view (built on demand), its rank index when
        one exists, every extra packed corpus, and the codec-serialisable
        concept-cache entries all travel to the workers — a pool answers a
        repeated query with zero retrains, exactly like a snapshot restore.

        Args:
            fault_plan: a :class:`~repro.testing.faults.FaultPlan` (or its
                wire form) to install into the workers for deterministic
                fault injection; ``None`` (the default) serves faithfully.
            breaker_threshold / breaker_cooldown: per-worker circuit
                breaker tuning (consecutive failures to open; seconds
                before a re-probe).
        """
        from repro.serve.snapshot import encode_cache_entry

        shared: dict[str, SharedPackedCorpus] = {}
        try:
            packed = packed_view(service.database)
            service.apply_rank_policy(packed)
            if (
                packed.rank_index_enabled
                and packed.n_bags >= AUTO_SHARD_MIN_BAGS
                and packed.cached_shard_index is None
            ):
                # Build the rank index once, parent-side, so its envelopes
                # (including the derived group envelopes) ride the shared
                # segment — N workers adopt zero-copy views instead of
                # each paying an O(n_bags x d) rebuild on first query.
                packed.shard_index(service.rank_shards)
            if (
                service.rank_mode == "approx"
                and packed.rank_index_enabled
                and packed.n_bags >= AUTO_SHARD_MIN_BAGS
                and packed.cached_coarse_index is None
            ):
                # Same once-parent-side deal for the coarse tier: codes and
                # planes ride the shared segment; workers only rederive the
                # (python-dict) banded tables.
                packed.coarse_index()
            shared[_DATABASE_KEY] = SharedPackedCorpus.create(
                packed, share_squares=share_squares
            )
            for key in service.corpus_keys:
                if key == _DATABASE_KEY:
                    continue
                try:
                    extra = packed_view(service.get_corpus(key))
                except Exception:  # noqa: BLE001 - unpackable corpora rebuild cold
                    continue
                shared[key] = SharedPackedCorpus.create(
                    extra, share_squares=share_squares
                )
            cache_entries = []
            cache = service.concept_cache
            if cache is not None:
                for key, value in cache.export_entries():
                    encoded = encode_cache_entry(key, value)
                    if encoded is not None:
                        cache_entries.append(encoded)
            knobs = {
                "cache_size": service.cache_stats.max_entries or None,
                "max_history": service.max_history,
                "rank_index": service.rank_index,
                "rank_shards": service.rank_shards,
                "rank_mode": service.rank_mode,
                "cache_entries": cache_entries,
                "session_ttl": session_ttl,
                "max_sessions": max_sessions,
                "name": name,
            }
            if fault_plan is not None:
                knobs["fault_plan"] = (
                    fault_plan.to_wire()
                    if hasattr(fault_plan, "to_wire")
                    else dict(fault_plan)
                )
            return cls(
                shared,
                n_workers,
                knobs,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown,
            )
        except BaseException:
            for corpus in shared.values():
                corpus.unlink()
            raise

    @classmethod
    def from_snapshot(cls, path, n_workers: int, **kwargs) -> "WorkerPool":
        """Load a serve snapshot once, then share it with N workers."""
        from repro.serve.snapshot import load_service

        service, _ = load_service(path)
        return cls.from_service(service, n_workers, **kwargs)

    @classmethod
    def from_corpus_dir(cls, path, n_workers: int, **kwargs) -> "WorkerPool":
        """Open a generated corpus directory once, then share it."""
        from repro.serve.snapshot import load_corpus_service

        service, _ = load_corpus_service(path)
        return cls.from_service(service, n_workers, **kwargs)

    # ------------------------------------------------------------------ #
    # Dispatch                                                            #
    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def n_restarts(self) -> int:
        """How many crashed workers the pool has replaced."""
        return self._n_restarts

    @property
    def shared(self) -> dict:
        """The shared-memory corpora by key (read-only view)."""
        return dict(self._shared)

    def worker_pids(self) -> tuple[int, ...]:
        return tuple(worker.process.pid for worker in self._workers)

    def _session_token(self, endpoint: str, payload: Mapping | None) -> str | None:
        if endpoint not in _SESSION_ENDPOINTS or not isinstance(payload, Mapping):
            return None
        token = payload.get("session")
        return None if token is None else str(token)

    def _pick(self, endpoint: str, payload: Mapping | None) -> tuple[int, bool]:
        """Choose a worker; returns ``(index, routed_by_affinity)``.

        Affinity routes bypass the circuit breaker (the session lives on
        exactly one worker — routing around it would only trade a slow
        answer for a guaranteed 404).  Round-robin skips open slots; with
        every slot open, plain round-robin resumes (refusing all traffic
        would turn a flapping pool into a dead one).
        """
        token = self._session_token(endpoint, payload)
        if token is not None:
            with self._lock:
                index = self._routes.get(token)
                if index is not None and index < len(self._workers):
                    self._routes.move_to_end(token)
                    return index, True
        # Round-robin; a session-addressed request with no route falls
        # through here and gets the far worker's authoritative 404.
        n = len(self._workers)
        start = next(self._rr)
        for offset in range(n):
            index = (start + offset) % n
            if self.breaker.available(index):
                return index, False
        return start % n, False

    def _lost_session_reply(self, token: str) -> tuple[int, dict]:
        exc = SessionError(
            f"session {token!r} was lost to a worker restart; start a new "
            f"session and replay the feedback round"
        )
        exc.retryable = True
        from repro.serve.app import error_payload

        return 404, error_payload(exc)

    def _remember(self, index: int, status: int, payload: Mapping) -> None:
        """Record the token → worker route a successful reply implies."""
        if status != 200 or not isinstance(payload, Mapping):
            return
        token = payload.get("session")
        if payload.get("kind") != "feedback_result" or token is None:
            return
        with self._lock:
            self._routes[str(token)] = index
            self._routes.move_to_end(str(token))
            while len(self._routes) > MAX_ROUTES:
                self._routes.popitem(last=False)

    def handle(
        self,
        endpoint: str,
        payload: Mapping | None,
        deadline: Deadline | None = None,
    ) -> tuple[int, dict]:
        """Route one request to a worker; returns its ``(status, payload)``.

        A worker that dies mid-request is restarted (its routes dropped,
        its sessions lost) and the in-flight request fails with a
        retryable 500.  With a ``deadline``, the reply wait is bounded by
        the remaining budget: a worker that misses it is declared
        unresponsive, terminated and replaced asynchronously, and the
        request answers a typed 504 *immediately* — it never waits out
        the replacement spawn.  Session requests whose owner was lost to
        a restart answer a retryable 404
        (:meth:`_lost_session_reply`).
        """
        from repro.serve.app import error_payload

        if self._stopped:
            raise ServeError("worker pool is stopped")
        if deadline is None:
            deadline = deadline_from_payload(payload)
        if deadline is not None and deadline.expired:
            self.resilience.incr("deadline_expiries")
            return 504, error_payload(
                DeadlineError(
                    f"deadline expired before {endpoint!r} was dispatched"
                )
            )
        token = self._session_token(endpoint, payload)
        if token is not None:
            with self._lock:
                lost = token in self._lost_sessions
            if lost:
                return self._lost_session_reply(token)
        index, routed = self._pick(endpoint, payload)
        worker = self._workers[index]
        send_payload = stamp_deadline(payload, deadline)
        try:
            status, reply = worker.request(
                endpoint,
                send_payload,
                timeout=None if deadline is None else deadline.remaining(),
            )
        except WorkerUnresponsiveError as exc:
            # The worker is alive but wedged (or just too slow).  Its
            # pipe now owes a reply we will never read, so the process
            # must go; the replacement spawns on a background thread so
            # this request answers its 504 at the deadline, not after a
            # worker warm-up.
            self.resilience.incr("deadline_expiries")
            self.resilience.incr("unresponsive_restarts")
            self.breaker.record_failure(index)
            self._restart_async(index, failed=worker)
            if routed and token is not None:
                with self._lock:
                    self._remember_lost(token)
            expiry = DeadlineError(str(exc))
            return 504, error_payload(expiry)
        except WorkerProtocolError as exc:
            self.resilience.incr("corrupt_replies")
            self.breaker.record_failure(index)
            self._restart(index, failed=worker)
            if routed and token is not None:
                return self._lost_session_reply(token)
            failure = ServeError(str(exc))
            failure.retryable = True
            return 500, error_payload(failure)
        except ServeError as exc:
            self.resilience.incr("crash_restarts")
            self.breaker.record_failure(index)
            self._restart(index, failed=worker)
            if routed and token is not None:
                return self._lost_session_reply(token)
            failure = ServeError(str(exc))
            failure.retryable = True
            return 500, error_payload(failure)
        if status >= 500:
            self.breaker.record_failure(index)
        else:
            self.breaker.record_success(index)
        self._remember(index, status, reply)
        return status, reply

    def broadcast(self, endpoint: str) -> list[tuple[int, dict]]:
        """Send a payload-less request to every worker, in worker order.

        A worker that died since the last health check — or that sits
        wedged past :data:`CONTROL_TIMEOUT` (a hung worker must not hang
        a ``stats`` aggregation) — is restarted and the request retried
        once on the replacement (mirroring :meth:`ping`), so an
        aggregation never surfaces a transport error for a crash the
        pool can absorb.  The retry is allowed to raise: a replacement
        dying instantly means something systemic, not a race.
        """
        replies = []
        for index in range(len(self._workers)):
            worker = self._workers[index]
            try:
                replies.append(
                    worker.request(endpoint, None, timeout=CONTROL_TIMEOUT)
                )
            except WorkerUnresponsiveError:
                self.resilience.incr("unresponsive_restarts")
                self._restart(index, failed=worker)
                replies.append(
                    self._workers[index].request(
                        endpoint, None, timeout=CONTROL_TIMEOUT
                    )
                )
            except ServeError:
                self._restart(index, failed=worker)
                replies.append(
                    self._workers[index].request(
                        endpoint, None, timeout=CONTROL_TIMEOUT
                    )
                )
        return replies

    def scatter(
        self,
        endpoint: str,
        payloads: Sequence[Mapping | None],
        *,
        workers: Sequence[int] | None = None,
        deadline: Deadline | None = None,
    ) -> list[tuple[int, dict]]:
        """Send ``payloads[i]`` to a worker each, concurrently; gather replies.

        The transport primitive under the scatter/gather rank path
        (:class:`~repro.serve.scatter.ScatterRanker`): at most one payload
        per worker, all in flight at once, replies in payload order.  A
        worker that dies mid-fragment is restarted (route cleanup
        included) and the scatter fails with :class:`ServeError` — the
        coordinator falls back to single-worker dispatch rather than
        merging a partial gather.

        Args:
            endpoint: the endpoint every payload targets.
            payloads: one request per targeted worker.
            workers: explicit distinct worker indices (``payloads[i]`` →
                ``workers[i]``); ``None`` targets workers ``0..n-1``
                positionally.  Lets the coordinator route around
                breaker-opened slots.
            deadline: bounds every fragment's reply wait; a fragment that
                misses it marks its worker unresponsive (restarted
                asynchronously) and fails the scatter with
                :class:`~repro.errors.WorkerUnresponsiveError`.

        Raises:
            ServeError: stopped pool, bad targets, a worker dying or
                hanging mid-scatter (after its restart is arranged), or
                an already-expired deadline.
        """
        if self._stopped:
            raise ServeError("worker pool is stopped")
        if workers is None:
            targets = list(range(len(payloads)))
        else:
            targets = [int(worker) for worker in workers]
        if len(targets) != len(payloads):
            raise ServeError(
                f"scatter got {len(payloads)} payloads for "
                f"{len(targets)} workers"
            )
        if len(set(targets)) != len(targets):
            raise ServeError(f"scatter workers must be distinct, got {targets}")
        for target in targets:
            if not 0 <= target < len(self._workers):
                raise ServeError(
                    f"scatter worker {target} out of range "
                    f"[0, {len(self._workers)})"
                )
        if deadline is not None and deadline.expired:
            self.resilience.incr("deadline_expiries")
            raise DeadlineError(
                f"deadline expired before the {endpoint!r} scatter started"
            )

        def one(index: int, payload: Mapping | None) -> tuple[int, dict]:
            worker = self._workers[index]
            try:
                status, reply = worker.request(
                    endpoint,
                    stamp_deadline(payload, deadline),
                    timeout=None if deadline is None else deadline.remaining(),
                )
            except WorkerUnresponsiveError:
                self.resilience.incr("deadline_expiries")
                self.resilience.incr("unresponsive_restarts")
                self.breaker.record_failure(index)
                self._restart_async(index, failed=worker)
                raise
            except WorkerProtocolError:
                self.resilience.incr("corrupt_replies")
                self.breaker.record_failure(index)
                self._restart(index, failed=worker)
                raise
            except ServeError:
                self.resilience.incr("crash_restarts")
                self.breaker.record_failure(index)
                self._restart(index, failed=worker)
                raise
            if status >= 500:
                self.breaker.record_failure(index)
            else:
                self.breaker.record_success(index)
            return status, reply

        with self._lock:
            if self._fan_out is None:
                self._fan_out = ThreadPoolExecutor(
                    max_workers=len(self._workers),
                    thread_name_prefix="repro-scatter",
                )
            executor = self._fan_out
        futures = [
            executor.submit(one, target, payload)
            for target, payload in zip(targets, payloads)
        ]
        replies, failure = [], None
        for future in futures:
            try:
                replies.append(future.result())
            except ServeError as exc:
                # Drain every future before raising so no fragment is
                # left racing a future scatter for its worker's pipe.
                failure = exc
        if failure is not None:
            raise failure
        return replies

    def request(self, endpoint: str, payload: Mapping | None = None) -> dict:
        """Dispatch and return the wire payload, raising typed errors.

        The programmatic twin of :meth:`handle`: a non-200 reply re-raises
        as the package exception the worker raised.
        """
        status, payload_out = self.handle(endpoint, payload)
        if status != 200:
            raise_error_payload(payload_out, status)
        return payload_out

    # ------------------------------------------------------------------ #
    # Health                                                              #
    # ------------------------------------------------------------------ #

    def ping(self) -> list[dict]:
        """One pong per worker (restarting any found dead or wedged)."""
        pongs = []
        for index in range(len(self._workers)):
            worker = self._workers[index]
            try:
                status, pong = worker.request(
                    _PING, None, timeout=CONTROL_TIMEOUT
                )
            except WorkerUnresponsiveError:
                self.resilience.incr("unresponsive_restarts")
                self._restart(index, failed=worker)
                status, pong = self._workers[index].request(
                    _PING, None, timeout=CONTROL_TIMEOUT
                )
            except ServeError:
                self._restart(index, failed=worker)
                status, pong = self._workers[index].request(
                    _PING, None, timeout=CONTROL_TIMEOUT
                )
            pong = dict(pong)
            pong["worker_id"] = index
            pongs.append(pong)
        return pongs

    def ensure_healthy(self) -> int:
        """Restart workers whose processes have died; returns how many."""
        restarted = 0
        for index, worker in enumerate(self._workers):
            if not worker.alive():
                self._restart(index, failed=worker)
                restarted += 1
        return restarted

    def _remember_lost(self, token: str) -> None:
        """Mark a session token lost to a restart (caller holds ``_lock``)."""
        self._routes.pop(token, None)
        if token not in self._lost_sessions:
            self.resilience.incr("lost_sessions")
        self._lost_sessions[token] = True
        self._lost_sessions.move_to_end(token)
        while len(self._lost_sessions) > MAX_LOST_SESSIONS:
            self._lost_sessions.popitem(last=False)

    def _restart(self, index: int, *, failed: "_Worker | None" = None) -> None:
        with self._restart_lock:
            if self._stopped:
                return
            old = self._workers[index]
            if failed is not None and old is not failed:
                # Another thread already replaced this worker; don't kill
                # the healthy replacement.
                return
            old.terminate()
            self._incarnations[index] += 1
            self._workers[index] = _Worker(
                self._context,
                index,
                self._specs,
                self._knobs,
                incarnation=self._incarnations[index],
            )
            self._n_restarts += 1
        with self._lock:
            stale = [
                token for token, owner in self._routes.items() if owner == index
            ]
            for token in stale:
                self._remember_lost(token)

    def _restart_async(
        self, index: int, *, failed: "_Worker | None" = None
    ) -> None:
        """Replace a worker on a background thread.

        The unresponsive path uses this so the triggering request can
        answer its 504 at the deadline instead of eating the replacement
        spawn.  Requests racing the replacement hit the dead worker, fail
        fast, and their own ``_restart`` call blocks on the restart lock
        until the replacement exists (then no-ops via the identity
        guard).
        """

        def replace() -> None:
            try:
                self._restart(index, failed=failed)
            except Exception:  # noqa: BLE001 - a failed respawn surfaces on
                # the next request for this slot, which restarts it inline.
                pass

        threading.Thread(
            target=replace, name=f"repro-restart-{index}", daemon=True
        ).start()

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def stop(self) -> None:
        """Stop every worker and release the shared segments (idempotent).

        Setting the stopped flag under the restart lock serialises
        shutdown with any in-flight (possibly asynchronous) restart: a
        replacement spawned before the flag lands in the worker list and
        is stopped below; one racing after it sees the flag and never
        spawns — no orphan processes either way.
        """
        with self._restart_lock:
            if self._stopped:
                return
            self._stopped = True
        if self._fan_out is not None:
            self._fan_out.shutdown(wait=True)
            self._fan_out = None
        for worker in self._workers:
            worker.stop()
        self._workers = []
        for corpus in self._shared.values():
            try:
                corpus.unlink()
            except ServeError:  # pragma: no cover - non-owner handles
                corpus.close()
        with self._lock:
            self._routes.clear()
            self._lost_sessions.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else f"{len(self._workers)} workers"
        return f"WorkerPool({state}, {self._n_restarts} restarts)"


def _merge_ann_stats(merged: "dict | None", stats: "dict | None") -> "dict | None":
    """Fold one worker's coarse-tier stats block into the pool aggregate.

    Each worker rebuilds its own :class:`~repro.index.ann.CoarseIndex`
    counters over the shared codes, so the pool view sums probe/fallback
    counts and probe-weights the per-probe means; the shape fields
    (``n_bags``/``n_bits``/...) are identical across workers and taken
    from the first block seen.
    """
    if stats is None:
        return merged
    if merged is None:
        merged = {
            key: stats.get(key)
            for key in ("n_bags", "n_bits", "n_tables", "band_bits")
        }
        merged.update(
            probes=0, fallbacks=0, hit_rate=0.0,
            mean_candidates=0.0, mean_evaluated=0.0, last=None,
        )
    probes = int(stats.get("probes", 0))
    total = merged["probes"] + probes
    if total:
        for key in ("hit_rate", "mean_candidates", "mean_evaluated"):
            merged[key] = (
                merged[key] * merged["probes"]
                + float(stats.get(key, 0.0)) * probes
            ) / total
    merged["probes"] = total
    merged["fallbacks"] += int(stats.get("fallbacks", 0))
    if stats.get("last") is not None:
        merged["last"] = stats["last"]
    return merged


class WorkerDispatchApp:
    """The pool dressed as a :class:`~repro.serve.app.ServiceApp`.

    :class:`~repro.serve.http.ReproServer` (and anything else that calls
    :func:`~repro.serve.app.handle_safely`) dispatches into the pool
    through :meth:`handle`, preserving the worker-assigned status codes.
    ``health`` and ``stats`` aggregate across workers — ``stats`` sums the
    per-worker session and query counters and reports pool shape.

    Given the parent-side ``service`` the pool was built from, stateless
    wire-concept ``rank`` requests over a large enough corpus scatter
    their shard ranges across *all* workers and gather one merged,
    bit-identical ranking (:class:`~repro.serve.scatter.ScatterRanker`)
    instead of running the whole fan-out inside a single worker.

    Args:
        pool: the worker pool to dispatch into.
        service: the service the pool was built from
            (``WorkerPool.from_service``'s argument); enables the scatter
            path.  ``None`` (the default) keeps pure per-request
            dispatch.
        min_scatter_bags: corpus size at which rank requests scatter
            (``None`` = the auto-shard threshold; ``0`` disables the
            scatter path entirely).
    """

    ENDPOINTS = ServiceApp.ENDPOINTS

    def __init__(
        self,
        pool: WorkerPool,
        *,
        service=None,
        min_scatter_bags: int | None = None,
    ) -> None:
        self._pool = pool
        self._scatter: ScatterRanker | None = None
        if service is not None and min_scatter_bags != 0:
            self._scatter = ScatterRanker(
                pool, service, min_scatter_bags=min_scatter_bags
            )

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def scatter(self) -> ScatterRanker | None:
        """The scatter coordinator (``None`` when disabled)."""
        return self._scatter

    def handle(self, endpoint: str, payload: Mapping | None) -> tuple[int, dict]:
        """Transport glue entry point (statuses pass through verbatim)."""
        from repro.serve.app import error_payload

        name = endpoint.replace("-", "_")
        try:
            deadline = deadline_from_payload(payload)
        except CodecError as exc:
            return 400, error_payload(exc)
        if deadline is not None and deadline.expired:
            self._pool.resilience.incr("deadline_expiries")
            return 504, error_payload(
                DeadlineError(
                    f"{name} request arrived with its deadline already expired"
                )
            )
        if name == "health":
            return 200, self.health()
        if name == "stats":
            return 200, self.stats()
        if (
            name == "rank"
            and self._scatter is not None
            and self._scatter.eligible(payload)
        ):
            return self._scatter.handle(payload, deadline=deadline)
        return self._pool.handle(name, payload, deadline=deadline)

    def dispatch(self, endpoint: str, payload: Mapping | None = None) -> dict:
        """Programmatic dispatch: non-200 replies raise typed errors."""
        status, reply = self.handle(endpoint, payload)
        if status != 200:
            raise_error_payload(reply, status)
        return reply

    def health(self) -> dict:
        """Worker 0's health envelope plus pool shape."""
        payload = self._pool.request("health")
        payload["workers"] = self._pool.n_workers
        payload["worker_restarts"] = self._pool.n_restarts
        return payload

    def stats(self) -> dict:
        """Aggregated stats: summed counters, pool shape, per-worker pids."""
        totals: dict[str, Any] = {}
        sessions: dict[str, Any] = {}
        ann: dict[str, Any] | None = None
        per_worker = []
        for index, (status, payload) in enumerate(self._pool.broadcast("stats")):
            if status != 200:
                raise_error_payload(payload, status)
            service_stats = payload.get("service", {})
            session_stats = payload.get("sessions", {})
            per_worker.append(
                {
                    "worker_id": index,
                    "n_queries": service_stats.get("n_queries", 0),
                    "active_sessions": session_stats.get("active", 0),
                }
            )
            for key in ("n_queries", "history_len"):
                totals[key] = totals.get(key, 0) + service_stats.get(key, 0)
            for key in ("n_images", "database_name", "corpus_keys", "cache"):
                totals.setdefault(key, service_stats.get(key))
            for key in ("active", "created", "expired", "evicted"):
                sessions[key] = sessions.get(key, 0) + session_stats.get(key, 0)
            for key in ("ttl_seconds", "max_sessions"):
                sessions.setdefault(key, session_stats.get(key))
            ann = _merge_ann_stats(ann, service_stats.get("ann"))
        if ann is not None:
            totals["ann"] = ann
        from repro.serve import codec

        return codec.envelope(
            "stats",
            {
                "service": totals,
                "sessions": sessions,
                "workers": {
                    "n_workers": self._pool.n_workers,
                    "restarts": self._pool.n_restarts,
                    "per_worker": per_worker,
                },
                "scatter": (
                    None if self._scatter is None else self._scatter.stats()
                ),
                "resilience": {
                    **self._pool.resilience.snapshot(),
                    "restarts": self._pool.n_restarts,
                    "breaker": self._pool.breaker.snapshot(),
                },
            },
        )

    def close(self) -> None:
        """Stop the pool (the HTTP layer calls this after its own drain)."""
        self._pool.stop()
