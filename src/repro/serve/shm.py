"""Zero-copy shared-memory corpora for multi-process serving.

A :class:`~repro.core.retrieval.PackedCorpus` is a handful of flat arrays
— the stacked ``(N, d)`` instance matrix, bag offsets, parallel id and
category arrays, optionally the squared-instance cache and the PR 5
:class:`~repro.core.sharding.ShardIndex` envelopes.  That layout is
exactly what ``multiprocessing.shared_memory`` wants: :class:`
SharedPackedCorpus.create` lays every array into **one** shared segment
(64-byte aligned, described by a JSON-safe :meth:`spec`), and
:meth:`SharedPackedCorpus.attach` in a worker process rebuilds a fully
functional ``PackedCorpus`` whose arrays are *views* into that segment —
N workers rank against one corpus mapping with zero per-worker copies of
the instance matrix, the squares cache or the index envelopes.

The spec travels to workers over the spawn pickle (or any transport — it
is a plain dict of names, dtypes, shapes and offsets).  The creator owns
the segment: :meth:`unlink` releases it once, attachments only
:meth:`close`.  Attaching unregisters the segment from the per-process
``resource_tracker`` so a worker exiting can never tear the mapping down
under its siblings (CPython's tracker would otherwise unlink segments it
merely attached to).

What is *not* shared: the per-bag python-string tuples and the id →
position dict every ``PackedCorpus`` carries.  Those are O(n_bags)
per-process metadata, dwarfed by the O(n_instances × d) matrices this
module exists to deduplicate.
"""

from __future__ import annotations

import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

from repro.core.retrieval import PackedCorpus
from repro.core.sharding import DEFAULT_GROUP_BAGS, ShardIndex
from repro.errors import ServeError
from repro.index.ann import adopt_ann_payload, ann_payload

#: Spec-format version; :meth:`SharedPackedCorpus.attach` rejects others.
SPEC_VERSION = 1
#: Array start alignment inside the segment (cache-line friendly).
_ALIGN = 64


def _aligned(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    CPython registers every ``SharedMemory`` with the resource tracker,
    which *unlinks* whatever is still registered when its owner exits —
    correct for the creator, destructive for attachments: spawned workers
    share the parent's tracker process and its registry is a plain set, so
    a worker registering and later unregistering the segment would erase
    the owner's registration (or, worse, a dying worker would pull the
    corpus out from under its siblings).  Python 3.13+ exposes
    ``track=False``; on older interpreters the registration call is
    suppressed for the duration of the attach (single-threaded worker
    startup, so the swap cannot race another allocation).
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class SharedPackedCorpus:
    """One shared-memory segment holding a packed corpus (plus its index).

    Build with :meth:`create` (parent / segment owner) or :meth:`attach`
    (worker); call :meth:`corpus` for the zero-copy ``PackedCorpus`` view.

    Context-manager support closes the local mapping on exit; the owner
    must additionally :meth:`unlink` (or rely on the garbage-collection
    finalizer) to release the segment system-wide.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: dict,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._corpus: PackedCorpus | None = None
        self._closed = False
        # The owner's segment must not outlive the interpreter even when
        # stop() is never reached (a test that errors out, a killed CLI).
        self._finalizer = (
            weakref.finalize(self, _release, shm) if owner else None
        )

    # ------------------------------------------------------------------ #
    # Construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        packed: PackedCorpus,
        *,
        index: ShardIndex | None = None,
        share_squares: bool = True,
        name: str | None = None,
    ) -> "SharedPackedCorpus":
        """Copy a packed corpus into a fresh shared segment (the one copy).

        Args:
            packed: the corpus to share.
            index: a shard index to share alongside (defaults to the
                corpus's cached one; pass one explicitly to share an index
                built out of band).
            share_squares: also share the squared-instance kernel cache —
                doubles the segment but stops every worker from building
                its own private ``(N, d)`` squares array on first query.
            name: explicit segment name (``None`` lets the OS pick).

        Raises:
            ServeError: when the segment cannot be allocated.
        """
        if index is None:
            index = packed.cached_shard_index
        plan: list[tuple[str, np.ndarray]] = [
            ("instances", packed.instances),
            ("offsets", packed.offsets),
            ("image_ids", packed.id_array),
            ("categories", packed.category_array),
        ]
        if share_squares and packed.n_instances:
            # Filled below via np.multiply straight into the segment; the
            # plan only needs the shape/dtype.
            plan.append(("squared", packed.instances))
        if index is not None:
            plan.append(("index_lower", index.lower))
            plan.append(("index_upper", index.upper))
            plan.append(("index_boundaries", index.boundaries))
            # The derived arrays too (group envelopes + extent): spec
            # evolution is add-only, so old attachers simply ignore them,
            # while new ones skip the per-worker O(n_bags x d) rederive.
            plan.append(("index_group_lower", index.group_lower))
            plan.append(("index_group_upper", index.group_upper))
            plan.append(("index_extent", index.extent))
        coarse = packed.cached_coarse_index
        ann_info = None
        if coarse is not None:
            # The coarse tier's codes + planes ride the same segment (the
            # banded tables are rederived per process — they hold python
            # dicts, not flat arrays).  Spec evolution is add-only: old
            # attachers ignore the extra arrays and the "ann" key.
            ann_arrays: dict[str, np.ndarray] = {}
            ann_info = ann_payload(coarse, "ann", ann_arrays)
            plan.extend(ann_arrays.items())

        arrays: dict[str, dict] = {}
        cursor = 0
        for key, array in plan:
            array = np.ascontiguousarray(array)
            arrays[key] = {
                "shape": [int(n) for n in array.shape],
                "dtype": array.dtype.str,
                "offset": cursor,
            }
            cursor = _aligned(cursor + max(array.nbytes, 1))
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(cursor, 1)
            )
        except OSError as exc:
            raise ServeError(
                f"cannot allocate a {cursor}-byte shared-memory segment "
                f"for the corpus: {exc}"
            ) from exc
        spec = {
            "version": SPEC_VERSION,
            "segment": shm.name,
            "nbytes": int(shm.size),
            "arrays": arrays,
            "index": None if index is None else {
                "group_size": int(index.group_size),
            },
            "rank_index_enabled": bool(packed.rank_index_enabled),
            "rank_index_shards": packed.rank_index_shards,
            "rank_mode": packed.rank_mode,
            "ann": ann_info,
        }
        shared = cls(shm, spec, owner=True)
        for key, array in plan:
            view = shared._view(key)
            if key == "squared":
                np.multiply(view_of := shared._view("instances"),
                            view_of, out=view)
            else:
                np.copyto(view, np.ascontiguousarray(array))
        return shared

    @classmethod
    def attach(cls, spec: Mapping) -> "SharedPackedCorpus":
        """Open an existing segment described by a :meth:`spec` dict.

        Raises:
            ServeError: unknown spec version, missing segment, or a spec
                whose arrays do not fit the segment (a corrupted handoff
                must fail loudly, not serve garbage views).
        """
        spec = dict(spec)
        if spec.get("version") != SPEC_VERSION:
            raise ServeError(
                f"shared corpus spec has version {spec.get('version')!r}, "
                f"expected {SPEC_VERSION}"
            )
        try:
            shm = _attach_untracked(str(spec["segment"]))
        except (OSError, KeyError, TypeError, ValueError) as exc:
            raise ServeError(
                f"cannot attach shared corpus segment "
                f"{spec.get('segment')!r}: {exc}"
            ) from exc
        shared = cls(shm, spec, owner=False)
        try:
            for key in spec.get("arrays", {}):
                shared._view(key)  # validates offsets/sizes up front
        except ServeError:
            shared.close()
            raise
        return shared

    # ------------------------------------------------------------------ #
    # Views                                                               #
    # ------------------------------------------------------------------ #

    def _view(self, key: str) -> np.ndarray:
        """A zero-copy ndarray over one array of the segment."""
        try:
            info = self._spec["arrays"][key]
            shape = tuple(int(n) for n in info["shape"])
            dtype = np.dtype(str(info["dtype"]))
            offset = int(info["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(
                f"shared corpus spec has no usable array {key!r}: {exc}"
            ) from exc
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset < 0 or offset + nbytes > self._shm.size:
            raise ServeError(
                f"shared corpus array {key!r} ({nbytes} bytes at offset "
                f"{offset}) falls outside the {self._shm.size}-byte segment"
            )
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    @property
    def spec(self) -> dict:
        """The JSON-safe descriptor workers attach with."""
        return self._spec

    @property
    def segment_name(self) -> str:
        """The OS-level shared-memory segment name."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total segment size in bytes."""
        return int(self._shm.size)

    def corpus(self) -> PackedCorpus:
        """The zero-copy :class:`PackedCorpus` over the segment (cached).

        The heavy arrays — instances, offsets, the id/category arrays, the
        squared cache and the index envelopes — are views into shared
        memory; only the per-bag python tuples and the position dict are
        process-local.
        """
        if self._corpus is not None:
            return self._corpus
        if self._closed:
            raise ServeError("shared corpus is closed")
        instances = self._view("instances")
        offsets = self._view("offsets")
        id_array = self._view("image_ids")
        category_array = self._view("categories")
        packed = PackedCorpus(
            instances=instances,
            offsets=offsets,
            image_ids=tuple(id_array.tolist()),
            categories=tuple(category_array.tolist()),
        )
        # The constructor rebuilt private copies of the id/category arrays
        # and would lazily build a private squares cache; swap in the
        # shared views (same values, one physical copy across workers).
        object.__setattr__(packed, "_id_array", id_array)
        object.__setattr__(packed, "_category_array", category_array)
        if "squared" in self._spec.get("arrays", {}):
            object.__setattr__(packed, "_squared", self._view("squared"))
        packed.configure_rank_index(
            enabled=bool(self._spec.get("rank_index_enabled", True)),
            n_shards=self._spec.get("rank_index_shards"),
            rank_mode=self._spec.get("rank_mode"),
        )
        index_info = self._spec.get("index")
        if index_info is not None:
            derived_keys = (
                "index_group_lower", "index_group_upper", "index_extent"
            )
            present = self._spec.get("arrays", {})
            derived = (
                tuple(self._view(key) for key in derived_keys)
                if all(key in present for key in derived_keys)
                # Spec written before the derived arrays shipped: the
                # constructor rederives them locally (same values).
                else None
            )
            packed.adopt_shard_index(
                ShardIndex(
                    packed,
                    lower=self._view("index_lower"),
                    upper=self._view("index_upper"),
                    boundaries=self._view("index_boundaries"),
                    group_size=int(
                        index_info.get("group_size", DEFAULT_GROUP_BAGS)
                    ),
                    _derived=derived,
                )
            )
        ann_info = self._spec.get("ann")
        if ann_info is not None:
            # Rebuild the coarse tier over the shared codes/planes views:
            # the banded tables are the only per-process rederive.
            adopt_ann_payload(
                packed,
                ann_info,
                {
                    key: self._view(key)
                    for key in (ann_info.get("codes"), ann_info.get("planes"))
                    if key in self._spec.get("arrays", {})
                },
            )
        self._corpus = packed
        return packed

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        # Live numpy views pin the exported buffer; release our reference
        # to them first so close() can succeed.
        self._corpus = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller still holds views
            pass

    def unlink(self) -> None:
        """Release the segment system-wide (owner only, idempotent)."""
        if not self._owner:
            raise ServeError(
                "only the creating process may unlink a shared corpus"
            )
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedPackedCorpus":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:
        kind = "owner" if self._owner else "attachment"
        return (
            f"SharedPackedCorpus({self.segment_name!r}, {self.nbytes} bytes, "
            f"{kind})"
        )


def _release(shm: shared_memory.SharedMemory) -> None:
    """Finalizer body: best-effort close + unlink of an owned segment."""
    try:  # pragma: no cover - interpreter-exit path
        shm.close()
        shm.unlink()
    except Exception:  # noqa: BLE001
        pass
