"""Cross-process scatter/gather ranking: one query, every core.

The PR 7 :class:`~repro.serve.workers.WorkerPool` parallelises across
*requests* — a single huge rank query still runs its entire shard fan-out
on one worker's thread pool.  :class:`ScatterRanker` is the coordinator
that makes the bound pass itself scale out: it cuts the
:class:`~repro.core.sharding.ShardIndex`'s contiguous shard partition
into one bag range per worker, ships each range as an internal
``rank_fragment`` request (wire-codec concept in, compact
``(positions, distances)`` fragment out), and merges the fragments with
the same id-tie-broken partial sort
(:func:`~repro.core.retrieval.top_order`) the single-process path uses —
so the merged ranking is **bit-identical** to
:class:`~repro.core.sharding.ShardedRanker`, the exhaustive
:class:`~repro.core.retrieval.Ranker`, and ``rank_by_loop`` (the
equivalence suites assert all three).

Before scattering, the coordinator evaluates a small argpartition sample
(:func:`~repro.core.sharding.seed_threshold`) and ships the sample's
kth-best exact distance to every worker as the initial pruning threshold,
so even the first chunk a late worker touches prunes against an already
tight cutoff instead of rediscovering one per fragment.

Degraded pools fall back gracefully down a ladder: any transport failure,
timed-out fragment, non-200 fragment, or coordinator-side decode error
counts a fallback and re-answers through **(1)** single-worker sharded
dispatch (``pool.handle``, which reproduces the exact non-scatter
behaviour), and — should that also fail — **(2)** a coordinator-local
exact rank over the same packed view (the same kernels and data, so still
bit-identical).  A crashed or hung worker costs one fallback (and its
auto-restart), never a wrong or lost answer.  Fragment dispatch routes
around circuit-breaker-opened workers, each fragment gets a sub-budget of
the request's :class:`~repro.serve.resilience.Deadline` (headroom
reserved for the re-answer and the merge), and degraded answers are
counted in the pool's resilience stats.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

import numpy as np

from repro.core.retrieval import (
    AUTO_SHARD_MIN_BAGS,
    RANK_MODES,
    Ranker,
    build_result,
    keep_mask,
    top_order,
)
from repro.core.sharding import seed_threshold
from repro.errors import CodecError, DeadlineError, ReproError, ServeError, SessionError
from repro.serve import codec
from repro.serve.app import error_payload
from repro.serve.resilience import Deadline

#: Fraction of the remaining deadline each fragment wave may spend: the
#: reserved quarter keeps enough budget for the degraded re-answer (and
#: the merge) if a fragment times out at its sub-deadline.
FRAGMENT_BUDGET_FRACTION = 0.75


class _Delegate(Exception):
    """Internal: hand this request to one worker (pruning cannot help).

    Deliberately not a :class:`ReproError`: delegation is the *correct*
    routing for the request (e.g. ``top_k`` covers every survivor, so a
    scatter would do strictly more work than one exhaustive pass), not a
    degradation, and must not count as a fallback in :meth:`stats`.
    """


class ScatterRanker:
    """Scatter one rank query's shard ranges across a worker pool.

    Args:
        pool: the :class:`~repro.serve.workers.WorkerPool` to scatter
            over.  Its workers must serve the same corpus ``service``
            ranks (``WorkerPool.from_service(service, ...)`` guarantees
            this — the pool's shared segment is a copy of the service's
            cached packed view).
        service: the coordinator-side service; supplies the packed view
            whose id/category arrays the merge resolves positions
            against, and whose shard index cuts the fragment ranges.
        min_scatter_bags: corpus size at which rank requests scatter
            (``None`` = the :data:`~repro.core.retrieval.AUTO_SHARD_MIN_BAGS`
            routing threshold).  Below it, one worker finishes before the
            fan-out would amortise.
        sample_bags: seed-threshold sample size
            (:func:`~repro.core.sharding.seed_threshold`).
    """

    def __init__(
        self,
        pool,
        service,
        *,
        min_scatter_bags: int | None = None,
        sample_bags: int | None = None,
    ) -> None:
        if min_scatter_bags is not None and min_scatter_bags < 1:
            raise ServeError(
                f"min_scatter_bags must be >= 1 or None, got {min_scatter_bags}"
            )
        if sample_bags is not None and sample_bags < 1:
            raise ServeError(
                f"sample_bags must be >= 1 or None, got {sample_bags}"
            )
        self._pool = pool
        self._service = service
        self._min_bags = (
            AUTO_SHARD_MIN_BAGS if min_scatter_bags is None else int(min_scatter_bags)
        )
        self._sample_bags = sample_bags
        self._lock = threading.Lock()
        self._n_requests = 0
        self._n_fallbacks = 0
        self._last: dict | None = None

    @property
    def min_scatter_bags(self) -> int:
        """Corpus size at which rank requests scatter."""
        return self._min_bags

    # ------------------------------------------------------------------ #
    # Routing                                                             #
    # ------------------------------------------------------------------ #

    def eligible(self, payload: Mapping | None) -> bool:
        """Cheap structural test: should this ``rank`` request scatter?

        Only stateless, whole-corpus, wire-concept top-k requests
        scatter: session ranks must honour worker affinity, candidate
        subsets rank ephemeral views no worker shares, and unbounded
        ranks cannot prune.  Anything rejected here takes the normal
        single-worker route, whose behaviour (including its error
        replies) is authoritative — so being conservative costs
        parallelism, never correctness.
        """
        if not isinstance(payload, Mapping):
            return False
        if payload.get("session") is not None:
            return False
        if payload.get("concept") is None:
            return False
        if payload.get("candidate_ids") is not None:
            return False
        top_k = payload.get("top_k")
        if isinstance(top_k, bool) or not isinstance(top_k, int) or top_k < 1:
            return False
        try:
            packed = self._service.packed_database()
        except Exception:  # noqa: BLE001 - let the worker surface the error
            return False
        return bool(packed.rank_index_enabled) and packed.n_bags >= self._min_bags

    def handle(
        self, payload: Mapping, deadline: Deadline | None = None
    ) -> tuple[int, dict]:
        """Scatter an :meth:`eligible` rank request; gather the ranking.

        Returns the same ``(status, rank_result payload)`` pair a pooled
        worker produces.  Coordinator-side failures (a worker dying or
        timing out mid-scatter, a non-200 fragment, a decode error) count
        a fallback and re-answer down the degraded ladder
        (:meth:`_degraded`: single-worker sharded, then coordinator-local
        exact) within whatever budget remains.
        """
        with self._lock:
            self._n_requests += 1
        try:
            return self._scatter(payload, deadline)
        except _Delegate:
            return self._pool.handle("rank", payload, deadline=deadline)
        except ReproError:
            # The pool restarted any worker that died mid-scatter
            # (WorkerPool.scatter does that before raising); the ladder
            # below dispatches to whichever workers are healthy now.
            with self._lock:
                self._n_fallbacks += 1
            return self._degraded(payload, deadline)

    def _degraded(
        self, payload: Mapping, deadline: Deadline | None
    ) -> tuple[int, dict]:
        """Re-answer a failed scatter down the degradation ladder.

        Rung 1 — single-worker sharded dispatch: the exact non-scatter
        behaviour, on whichever worker is healthy now.  Rung 2 —
        coordinator-local exact rank over the same packed view: the
        kernels and data are shared with the workers, so the answer stays
        bit-identical even with the whole pool misbehaving.  Each rung is
        entered only while budget remains; successful degraded answers
        are counted in the pool's resilience stats.
        """

        def expiry(stage: str) -> tuple[int, dict]:
            self._pool.resilience.incr("deadline_expiries")
            return 504, error_payload(
                DeadlineError(f"rank deadline expired {stage}")
            )

        if deadline is not None and deadline.expired:
            return expiry("before the degraded re-answer")
        try:
            status, reply = self._pool.handle("rank", payload, deadline=deadline)
        except ReproError as exc:
            status, reply = 500, error_payload(exc)
        if status < 500:
            if status == 200:
                self._pool.resilience.incr("degraded_answers")
            return status, reply
        if deadline is not None and deadline.expired:
            return expiry("during the degraded re-answer")
        try:
            reply = self._rank_locally(payload)
        except SessionError as exc:
            return 404, error_payload(exc)
        except ReproError as exc:
            return 400, error_payload(exc)
        except Exception as exc:  # noqa: BLE001 - last rung must not raise
            return 500, error_payload(exc)
        self._pool.resilience.incr("degraded_answers")
        return 200, reply

    def _rank_locally(self, payload: Mapping) -> dict:
        """The ladder's last rung: rank on the coordinator itself.

        Mirrors the worker-side concept branch of
        :meth:`~repro.serve.app.ServiceApp.rank` over the coordinator's
        own packed view — same kernels, same data, bit-identical ranking.
        """
        data = codec.open_envelope(payload, "rank")
        if data.get("concept") is None or data.get("session") is not None:
            raise ServeError(
                "only stateless wire-concept rank requests can be answered "
                "coordinator-side"
            )
        concept = codec.decode_concept(data["concept"])
        rank_mode = data.get("rank_mode")
        if rank_mode is not None and rank_mode not in RANK_MODES:
            raise CodecError(
                f"rank payload rank_mode must be one of {RANK_MODES}, "
                f"got {rank_mode!r}"
            )
        top_k = data.get("top_k")
        candidate_ids = data.get("candidate_ids")
        packed = self._service.packed_database(
            None if candidate_ids is None else tuple(candidate_ids)
        )
        ranking = Ranker(rank_mode=rank_mode).rank(
            concept,
            packed,
            top_k=None if top_k is None else int(top_k),
            exclude=tuple(data.get("exclude", ())),
            category_filter=data.get("category_filter"),
        )
        return codec.envelope(
            "rank_result", {"ranking": codec.encode_ranking(ranking)}
        )

    def _scatter(
        self, payload: Mapping, deadline: Deadline | None = None
    ) -> tuple[int, dict]:
        data = codec.open_envelope(payload, "rank")
        if (
            data.get("session") is not None
            or data.get("concept") is None
            or data.get("candidate_ids") is not None
        ):
            # handle() called on a payload eligible() would reject: the
            # single-worker route's behaviour is authoritative.
            raise _Delegate()
        concept = codec.decode_concept(data["concept"])
        try:
            top_k = int(data["top_k"])
        except (KeyError, TypeError, ValueError):
            raise _Delegate() from None
        if top_k < 1:
            raise _Delegate()
        exclude = tuple(data.get("exclude", ()))
        category_filter = data.get("category_filter")
        packed = self._service.packed_database()
        keep = keep_mask(packed, exclude, category_filter)
        total = int(np.count_nonzero(keep))
        if top_k >= total:
            # Every survivor must be ranked: one exhaustive pass on one
            # worker beats shipping the whole corpus back as "fragments".
            raise _Delegate()
        index = packed.shard_index()
        # Route around breaker-opened workers: a flapping worker should
        # not cost every scatter a fallback for its whole cooldown.  With
        # every slot open the full pool is probed — refusing to scatter
        # at all would be strictly worse than trying.
        breaker = getattr(self._pool, "breaker", None)
        targets = [
            worker
            for worker in range(self._pool.n_workers)
            if breaker is None or breaker.available(worker)
        ]
        if not targets:
            targets = list(range(self._pool.n_workers))
        width = min(len(targets), index.n_shards)
        targets = targets[:width]
        started = time.perf_counter()
        threshold = seed_threshold(
            packed, index, concept, keep, top_k,
            **({} if self._sample_bags is None
               else {"sample_bags": self._sample_bags}),
        )
        # Contiguous runs of whole shards, one per worker, cut along the
        # index's own boundaries.  The workers re-intersect with *their*
        # index's partition, so the cut only shapes load balance — the
        # merged ranking is partition-independent.
        n_shards = index.n_shards
        cuts = [
            int(index.boundaries[i * n_shards // width])
            for i in range(width + 1)
        ]
        fields = {
            "concept": data["concept"],
            "top_k": top_k,
        }
        if np.isfinite(threshold):
            fields["threshold"] = float(threshold)
        if exclude:
            fields["exclude"] = list(exclude)
        if category_filter is not None:
            fields["category_filter"] = category_filter
        payloads = [
            codec.envelope(
                "rank_fragment",
                {**fields, "start": cuts[i], "stop": cuts[i + 1]},
            )
            for i in range(width)
        ]
        # Fragments get a sub-budget of the remaining deadline so a
        # timed-out wave still leaves room for the degraded re-answer.
        fragment_deadline = (
            None if deadline is None
            else deadline.sub_budget(FRAGMENT_BUDGET_FRACTION)
        )
        replies = self._pool.scatter(
            "rank_fragment",
            payloads,
            workers=targets,
            deadline=fragment_deadline,
        )
        scatter_seconds = time.perf_counter() - started

        merge_started = time.perf_counter()
        positions, distances, survivors = [], [], []
        for status, reply in replies:
            if status != 200 or not isinstance(reply, Mapping):
                detail = (
                    reply.get("message", reply)
                    if isinstance(reply, Mapping) else reply
                )
                raise ServeError(
                    f"rank fragment failed with status {status}: {detail}"
                )
            positions.append(
                np.asarray(reply.get("positions", ()), dtype=np.int64)
            )
            distances.append(
                np.asarray(reply.get("distances", ()), dtype=np.float64)
            )
            survivors.append(int(reply.get("n_evaluated", 0)))
        candidate_idx = np.concatenate(positions)
        candidate_dist = np.concatenate(distances)
        # The same merge primitives ShardedRanker.rank ends with, fed the
        # union of per-fragment contenders — bit-identical output.
        ids = packed.id_array[candidate_idx]
        categories = packed.category_array[candidate_idx]
        order = top_order(ids, candidate_dist, top_k)
        result = build_result(ids, categories, candidate_dist, order, total)
        merge_seconds = time.perf_counter() - merge_started

        with self._lock:
            self._last = {
                "fan_out": width,
                "survivors_per_worker": survivors,
                "n_candidates": int(candidate_dist.size),
                "seed_threshold": (
                    float(threshold) if np.isfinite(threshold) else None
                ),
                "scatter_seconds": scatter_seconds,
                "merge_seconds": merge_seconds,
            }
        return 200, codec.envelope(
            "rank_result", {"ranking": codec.encode_ranking(result)}
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Scatter counters (JSON-safe): requests, fallbacks, last fan-out.

        ``last`` describes the most recent successful scatter: fan-out
        width, per-worker bound-pass survivor counts (bags exactly
        evaluated), the seed threshold shipped, and the scatter/merge
        wall-clock split.
        """
        with self._lock:
            return {
                "min_scatter_bags": self._min_bags,
                "requests": self._n_requests,
                "fallbacks": self._n_fallbacks,
                "last": None if self._last is None else dict(self._last),
            }
