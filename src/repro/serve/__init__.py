"""The serving subsystem: versioned wire format + multi-tenant workers.

Everything needed to consume the retrieval system across a process
boundary, layered bottom-up:

:mod:`repro.serve.codec`
    Schema-versioned JSON codecs for every wire DTO (``Query``,
    ``QueryResult``, ``LearnedConcept``, ``TrainingResult``, cache
    counters).  Unknown versions are rejected, unknown fields tolerated,
    and ``decode(encode(x))`` is exact.
:mod:`repro.serve.sessions`
    :class:`SessionStore` — token-addressed, TTL-expiring, LRU-bounded
    multi-tenant :class:`~repro.session.RetrievalSession` resources, so
    relevance-feedback loops survive stateless requests.
:mod:`repro.serve.app`
    :class:`ServiceApp` — the transport-agnostic facade: ``query`` /
    ``batch_query`` / ``feedback`` / ``rank`` / ``health`` / ``stats`` as
    dict-in/dict-out endpoints.
:mod:`repro.serve.http`
    :class:`ReproServer` (stdlib ``http.server`` worker) and
    :class:`ReproClient` (decoding thin client) — ``repro serve`` /
    ``repro client-query`` on the CLI.
:mod:`repro.serve.snapshot`
    :func:`save_service` / :func:`load_service` — warm-worker snapshots
    (database + packed corpora + trained-concept cache), so new workers
    answer repeated queries with zero retrains.
:mod:`repro.serve.shm` / :mod:`repro.serve.workers`
    :class:`SharedPackedCorpus` — the packed corpus (and its rank index)
    in one ``multiprocessing.shared_memory`` segment — plus
    :class:`WorkerPool` / :class:`WorkerDispatchApp`: N spawn-started
    worker processes ranking that one zero-copy mapping behind the same
    HTTP server (``repro serve --workers N``).
:mod:`repro.serve.scatter`
    :class:`ScatterRanker` — cross-process scatter/gather for a single
    rank query: contiguous shard ranges fan out across the pool as
    ``rank_fragment`` requests and merge into one bit-identical ranking
    (``repro serve --workers N --scatter BAGS``).
:mod:`repro.serve.resilience`
    :class:`Deadline` (per-request time budgets, ``deadline_ms`` on the
    wire, re-stamped as *remaining* at every hop),
    :class:`CircuitBreaker` (routes around a flapping worker, re-probes
    after a cooldown) and :class:`ResilienceStats` — the counters behind
    ``stats()["resilience"]``.  Expiry maps to HTTP 504
    (:class:`~repro.errors.DeadlineError`); a worker that misses its
    deadline is restarted rather than waited on.

Quickstart::

    from repro import quick_database
    from repro.api.service import RetrievalService
    from repro.serve import ReproClient, ReproServer, ServiceApp

    service = RetrievalService(quick_database("scenes", seed=7))
    with ReproServer(ServiceApp(service), port=0) as server:
        client = ReproClient(server.url)
        print(client.health()["status"])
"""

from repro.serve.app import (
    ServiceApp,
    error_payload,
    handle_safely,
    raise_error_payload,
)
from repro.serve.codec import (
    WIRE_VERSION,
    decode,
    decode_cache_stats,
    decode_concept,
    decode_query,
    decode_query_result,
    decode_ranking,
    decode_training_result,
    encode,
    encode_cache_stats,
    encode_concept,
    encode_query,
    encode_query_result,
    encode_ranking,
    encode_training_result,
    open_envelope,
    wire_equal,
)
from repro.serve.http import ReproClient, ReproServer
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceStats,
    deadline_from_payload,
    stamp_deadline,
)
from repro.serve.sessions import FeedbackRoundResult, SessionStore
from repro.serve.shm import SharedPackedCorpus
from repro.serve.snapshot import (
    SnapshotInfo,
    decode_cache_entry,
    encode_cache_entry,
    load_corpus_service,
    load_service,
    save_service,
)
from repro.serve.scatter import ScatterRanker
from repro.serve.workers import WorkerDispatchApp, WorkerPool

__all__ = [
    "WIRE_VERSION",
    "ServiceApp",
    "SessionStore",
    "FeedbackRoundResult",
    "ReproServer",
    "ReproClient",
    "SnapshotInfo",
    "save_service",
    "load_service",
    "load_corpus_service",
    "encode",
    "decode",
    "wire_equal",
    "open_envelope",
    "encode_query",
    "decode_query",
    "encode_query_result",
    "decode_query_result",
    "encode_ranking",
    "decode_ranking",
    "encode_concept",
    "decode_concept",
    "encode_training_result",
    "decode_training_result",
    "encode_cache_stats",
    "decode_cache_stats",
    "error_payload",
    "handle_safely",
    "raise_error_payload",
    "encode_cache_entry",
    "decode_cache_entry",
    "SharedPackedCorpus",
    "WorkerPool",
    "WorkerDispatchApp",
    "ScatterRanker",
    "Deadline",
    "CircuitBreaker",
    "ResilienceStats",
    "deadline_from_payload",
    "stamp_deadline",
]
