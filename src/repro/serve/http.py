"""Stdlib HTTP transport for the serving layer.

:class:`ReproServer` binds a :class:`~repro.serve.app.ServiceApp` to a
threaded ``http.server`` — no third-party web framework, so any box with a
Python interpreter can serve the retrieval API.  :class:`ReproClient` is
the matching thin client: it speaks the same versioned wire format and
hands back *decoded* package objects (:class:`~repro.api.query.QueryResult`,
:class:`~repro.core.retrieval.RetrievalResult`, ...), so remote and
in-process retrieval are interchangeable at the call site.

Routes (all JSON, wire-enveloped)::

    POST /v1/query         POST /v1/batch_query
    POST /v1/feedback      POST /v1/rank
    GET  /v1/health        GET  /v1/stats

Errors come back as enveloped ``error`` payloads with an HTTP status (400
bad request, 404 unknown session, 500 bug); the client re-raises them as
the matching :class:`~repro.errors.ReproError` subclass.

The server is intentionally a *worker*, not a load balancer: run one per
core/host behind whatever fronting tier the deployment has, and start them
hot from a snapshot (:mod:`repro.serve.snapshot`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping, Sequence
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.api.query import Query, QueryResult
from repro.core.concept import LearnedConcept
from repro.core.retrieval import RetrievalResult
from repro.errors import CodecError, DeadlineError, ServeError
from repro.serve import codec
from repro.serve.app import (
    ServiceApp,
    error_payload,
    handle_safely,
    raise_error_payload,
)

_API_PREFIX = "/v1/"

#: Largest request body a worker will buffer.  Generous for real payloads
#: (a 1000-query batch is well under 1 MiB) while bounding what a single
#: connection can make the process hold in memory.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Default per-connection read timeout (seconds).  Applied to header
#: reads via the handler's socket timeout and to body reads as a wall
#: clock over the whole body — a slowloris client dribbling one byte per
#: poll cannot pin a server thread forever.
DEFAULT_READ_TIMEOUT = 30.0

#: Body reads buffer in chunks of this size so the wall clock is checked
#: between chunks even while bytes keep trickling in.
_BODY_CHUNK_BYTES = 65536


class _ReproHTTPServer(ThreadingHTTPServer):
    """The threaded server plus what graceful shutdown needs.

    ``allow_reuse_address`` is pinned explicitly (SO_REUSEADDR): a worker
    restarting on the port it just released must not fail with
    ``EADDRINUSE`` because the old socket lingers in TIME_WAIT.

    The server also counts in-flight requests so :meth:`wait_idle` can
    drain them: ``shutdown()`` only stops *accepting* connections — handler
    threads already parsing or answering a request keep running, and with
    ``daemon_threads`` they would be killed mid-response at interpreter
    exit.  Handlers bracket each request with :meth:`begin_request` /
    :meth:`end_request` (per request, not per connection — a keep-alive
    connection idling between requests must not block the drain forever).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._idle = threading.Condition()

    def begin_request(self) -> None:
        with self._idle:
            self._inflight += 1

    def end_request(self) -> None:
        with self._idle:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float | None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    """One request: parse JSON, dispatch to the app, write the wire reply."""

    app: ServiceApp  # injected by ReproServer via a subclass attribute
    protocol_version = "HTTP/1.1"
    # Per-connection socket timeout (StreamRequestHandler applies it in
    # setup()): a client stalling mid-request-line or mid-headers gets its
    # connection closed instead of pinning this thread.  ReproServer
    # overrides the value per instance via the bound subclass.
    timeout = DEFAULT_READ_TIMEOUT

    # The default handler logs every request to stderr; a serving worker
    # should stay quiet unless asked.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _endpoint(self) -> str | None:
        if not self.path.startswith(_API_PREFIX):
            return None
        return self.path[len(_API_PREFIX):].strip("/")

    def _reply(self, status: int, payload: Mapping) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client explicitly; set when the connection cannot be
            # kept in sync (e.g. an undrainable request body).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        # The begin/end bracket feeds the server's drain accounting.  It
        # wraps only the dispatch-and-reply span (keep-alive connections
        # idle *between* requests inside handle_one_request's readline,
        # which must not count as in flight).
        self.server.begin_request()
        try:
            self._do_get()
        finally:
            self.server.end_request()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.server.begin_request()
        try:
            self._do_post()
        finally:
            self.server.end_request()

    def _do_get(self) -> None:
        endpoint = self._endpoint()
        if endpoint not in ("health", "stats"):
            self._reply(404, error_payload(ServeError(f"no GET route {self.path!r}")))
            return
        status, payload = handle_safely(self.app, endpoint, None)
        self._reply(status, payload)

    def _read_body(self, length: int) -> bytes | None:
        """Read the body against a wall clock; ``None`` when it timed out.

        The socket timeout alone cannot stop a dribbling client (every
        byte received resets it), so the whole body shares one read
        budget of :attr:`timeout` seconds.  On expiry the client gets a
        408 and the connection closes (the unread bytes make it
        unsyncable).
        """
        deadline = time.monotonic() + self.timeout
        chunks: list[bytes] = []
        received = 0
        while received < length:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                chunk = b""
            else:
                try:
                    self.connection.settimeout(remaining)
                    # read1, not read: read(n) would block until all n
                    # bytes arrive, so a dribbling client's partial bytes
                    # would be lost to the timeout instead of counted.
                    chunk = self.rfile.read1(
                        min(length - received, _BODY_CHUNK_BYTES)
                    )
                except TimeoutError:
                    chunk = b""
                except OSError:
                    # The peer vanished mid-body; nothing to reply to.
                    self.close_connection = True
                    return None
            if not chunk:
                self.close_connection = True
                try:
                    self._reply(
                        408,
                        error_payload(
                            DeadlineError(
                                f"request body not received within "
                                f"{self.timeout:.1f}s ({received} of {length} "
                                f"bytes arrived)"
                            )
                        ),
                    )
                except OSError:  # the peer is already gone
                    pass
                return None
            chunks.append(chunk)
            received += len(chunk)
        # Restore the per-connection timeout for the next keep-alive
        # request's header reads.
        self.connection.settimeout(self.timeout)
        return b"".join(chunks)

    def _do_post(self) -> None:
        arrived = time.monotonic()
        # Always drain the body first: replying without reading it would
        # desync a keep-alive connection (the unread bytes get parsed as
        # the next request line).
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # The body length is unknowable, so the connection cannot be
            # resynchronised — reply and close it.
            self.close_connection = True
            self._reply(
                400, error_payload(CodecError("malformed Content-Length header"))
            )
            return
        if length > MAX_BODY_BYTES:
            # Refuse to buffer it; draining would be as expensive as
            # reading, so close the connection instead.
            self.close_connection = True
            self._reply(
                413,
                error_payload(
                    CodecError(
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES}-byte limit"
                    )
                ),
            )
            return
        if length > 0:
            raw = self._read_body(length)
            if raw is None:
                return
        else:
            raw = b""
        endpoint = self._endpoint()
        if endpoint is None:
            self._reply(404, error_payload(ServeError(f"no POST route {self.path!r}")))
            return
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, error_payload(CodecError(f"request body is not JSON: {exc}")))
            return
        # The wire deadline_ms was stamped when the client *sent* the
        # request; the time spent receiving it counts against the budget,
        # so re-stamp what is left (and answer the 504 here if a slow body
        # ate it all) before the app starts its own countdown.
        if isinstance(payload, Mapping):
            budget = payload.get("deadline_ms")
            if isinstance(budget, (int, float)) and not isinstance(budget, bool):
                elapsed_ms = (time.monotonic() - arrived) * 1000.0
                remaining = float(budget) - elapsed_ms
                if remaining <= 0:
                    self._reply(
                        504,
                        error_payload(
                            DeadlineError(
                                "request deadline expired while the request "
                                "was being received"
                            )
                        ),
                    )
                    return
                payload = {**payload, "deadline_ms": remaining}
        status, reply = handle_safely(self.app, endpoint, payload)
        self._reply(status, reply)


class ReproServer:
    """A threaded HTTP worker serving one :class:`ServiceApp`.

    Args:
        app: the serving facade (or build one from a service via
            ``ReproServer(ServiceApp(service))``).
        host: bind address.
        port: bind port; ``0`` picks a free one (see :attr:`port`).
        read_timeout: per-connection read budget in seconds — for header
            reads (socket timeout) and for each request body (wall clock;
            408 on expiry) — so a stalled or dribbling client cannot pin
            a handler thread forever.

    Usage::

        with ReproServer(ServiceApp(service), port=0) as server:
            client = ReproClient(server.url)
            result = client.query(query)
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 8000,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ) -> None:
        if not read_timeout > 0:
            raise ServeError(
                f"read_timeout must be positive, got {read_timeout!r}"
            )
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"app": app, "timeout": float(read_timeout)},
        )
        self._app = app
        self._httpd = _ReproHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def app(self):
        """The serving facade behind this server (a :class:`ServiceApp` or
        any object :func:`~repro.serve.app.handle_safely` accepts, e.g. the
        worker pool's dispatch app)."""
        return self._app

    @property
    def host(self) -> str:
        """The bound address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve on a background thread; returns ``self``."""
        if self._thread is not None:
            raise ServeError("server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI path)."""
        self._httpd.serve_forever()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, release the socket.

        Args:
            drain_timeout: how long to wait for requests already being
                handled to finish writing their responses (``0`` stops
                immediately, ``None`` waits indefinitely).
        """
        self._httpd.shutdown()
        if drain_timeout is None or drain_timeout > 0:
            self._httpd.wait_idle(drain_timeout)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ReproClient:
    """Thin wire client for a :class:`ReproServer`.

    Args:
        base_url: e.g. ``http://127.0.0.1:8000`` (with or without ``/v1``).
        timeout: per-request socket timeout in seconds.
        deadline_ms: default request budget stamped onto every POST
            payload as the wire ``deadline_ms`` field — the server (and
            every hop behind it: workers, scatter fragments) abandons the
            work and answers a typed 504
            :class:`~repro.errors.DeadlineError` once it expires, and the
            client's own socket timeout is tightened to match so a call
            never outwaits its budget.  ``None`` (the default) sends no
            deadline; per-call ``deadline_ms`` arguments override.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        deadline_ms: float | None = None,
    ) -> None:
        self._base = base_url.rstrip("/")
        if self._base.endswith("/v1"):
            self._base = self._base[:-3]
        self._timeout = timeout
        self._deadline_ms = deadline_ms

    def _call(
        self,
        endpoint: str,
        payload: Mapping | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        url = f"{self._base}/v1/{endpoint}"
        budget = self._deadline_ms if deadline_ms is None else deadline_ms
        timeout = self._timeout
        if payload is not None and budget is not None:
            payload = {**payload, "deadline_ms": float(budget)}
            # The server answers its 504 within the budget; the socket
            # timeout is a backstop (with a grace second for the reply to
            # travel), not the deadline mechanism itself.
            timeout = min(timeout, float(budget) / 1000.0 + 1.0)
        if payload is None:
            req = urlrequest.Request(url, method="GET")
        else:
            req = urlrequest.Request(
                url,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        try:
            with urlrequest.urlopen(req, timeout=timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = None
            raise_error_payload(body, exc.code)
        except urlerror.URLError as exc:
            raise ServeError(f"cannot reach {url}: {exc.reason}") from exc
        return body

    # ------------------------------------------------------------------ #
    # Endpoints                                                           #
    # ------------------------------------------------------------------ #

    def query(
        self, query: Query, *, deadline_ms: float | None = None
    ) -> QueryResult:
        """Run one query remotely; returns the decoded result."""
        return codec.decode_query_result(
            self._call("query", codec.encode_query(query), deadline_ms)
        )

    def batch_query(
        self,
        queries: Sequence[Query],
        workers: int | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> list[QueryResult]:
        """Run many queries remotely (request order preserved)."""
        payload = codec.envelope(
            "batch_query",
            {
                "queries": [codec.encode_query(query) for query in queries],
                "workers": workers,
            },
        )
        body = codec.open_envelope(
            self._call("batch_query", payload, deadline_ms),
            "batch_query_result",
        )
        return [codec.decode_query_result(entry) for entry in body["results"]]

    def feedback(
        self,
        session: str | None = None,
        *,
        learner: str = "dd",
        params: Mapping[str, object] | None = None,
        add_positive_ids: Sequence[str] = (),
        add_negative_ids: Sequence[str] = (),
        false_positive_ids: Sequence[str] = (),
        rank: bool = True,
        top_k: int | None = None,
        category_filter: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """One feedback round; creates a session when ``session`` is None.

        Returns a dict with the ``"session"`` token, the example id lists,
        and (when ranking ran) a decoded ``"ranking"``
        :class:`RetrievalResult` and ``"concept"``
        :class:`LearnedConcept`.
        """
        payload = codec.envelope(
            "feedback",
            {
                "session": session,
                "learner": learner,
                "params": None if params is None else dict(params),
                "add_positive_ids": list(add_positive_ids),
                "add_negative_ids": list(add_negative_ids),
                "false_positive_ids": list(false_positive_ids),
                "rank": rank,
                "top_k": top_k,
                "category_filter": category_filter,
            },
        )
        body = codec.open_envelope(
            self._call("feedback", payload, deadline_ms), "feedback_result"
        )
        ranking = body.get("ranking")
        concept = body.get("concept")
        return {
            "session": body["session"],
            "positive_ids": tuple(body.get("positive_ids", ())),
            "negative_ids": tuple(body.get("negative_ids", ())),
            "ranking": None if ranking is None else codec.decode_ranking(ranking),
            "concept": None if concept is None else codec.decode_concept(concept),
        }

    def rank(
        self,
        *,
        session: str | None = None,
        concept: LearnedConcept | None = None,
        candidate_ids: Sequence[str] | None = None,
        exclude: Sequence[str] = (),
        top_k: int | None = None,
        category_filter: str | None = None,
        rank_mode: str | None = None,
        deadline_ms: float | None = None,
    ) -> RetrievalResult:
        """Re-rank remotely with a session's model or an explicit concept.

        ``rank_mode`` (``"exact"`` | ``"approx"``) overrides the server's
        rank mode for this one concept request; ``None`` keeps the served
        default.
        """
        payload = codec.envelope(
            "rank",
            {
                "session": session,
                "concept": None if concept is None else codec.encode_concept(concept),
                "candidate_ids": (
                    None if candidate_ids is None else list(candidate_ids)
                ),
                "exclude": list(exclude),
                "top_k": top_k,
                "category_filter": category_filter,
                "rank_mode": rank_mode,
            },
        )
        body = codec.open_envelope(
            self._call("rank", payload, deadline_ms), "rank_result"
        )
        return codec.decode_ranking(body["ranking"])

    def health(self) -> dict:
        """The server's health envelope (validated)."""
        return codec.open_envelope(self._call("health"), "health")

    def stats(self) -> dict:
        """The server's stats envelope (validated)."""
        return codec.open_envelope(self._call("stats"), "stats")
