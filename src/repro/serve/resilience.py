"""Deadline propagation, circuit breaking and resilience accounting.

The serving layer's failure story before this module only covered *dead*
processes: a hung-but-alive worker wedged the dispatcher forever, and no
request carried a time budget.  Three small primitives fix that, shared
by :mod:`repro.serve.workers`, :mod:`repro.serve.scatter`,
:mod:`repro.serve.app` and :mod:`repro.serve.http`:

:class:`Deadline`
    A monotonic per-request budget.  It crosses process and network
    boundaries as the *remaining* budget in milliseconds (the
    ``deadline_ms`` envelope field, validated by
    :func:`repro.serve.codec.deadline_ms_field`) — absolute monotonic
    timestamps are meaningless on the far side, so every hop re-stamps
    the remaining budget just before forwarding (:func:`stamp_deadline`)
    and the receiver restarts the countdown (:func:`deadline_from_payload`).

:class:`CircuitBreaker`
    Per-worker-slot consecutive-failure tracking.  A slot whose worker
    keeps failing (crashing, hanging, corrupting replies, answering 5xx)
    is *opened* — routed around — until a cooldown elapses, after which
    one probe request is allowed through (half-open); success closes the
    breaker, failure re-opens it.  The breaker guards the *slot*, not the
    process: a flapping worker that crashes on every warm-up keeps its
    slot open across restarts instead of eating a request per incarnation.

:class:`ResilienceStats`
    Thread-safe counters for everything the recovery paths do — deadline
    expiries, unresponsive-worker restarts, corrupt replies, sessions
    lost to restarts, degraded (non-scatter) answers — surfaced under
    ``stats()["resilience"]`` so a fault-injection soak can assert every
    injected fault was accounted for.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import ServeError
from repro.serve import codec

#: Smallest budget (seconds) a re-stamped deadline ships: the codec
#: requires a positive ``deadline_ms``, and a parent that won the race to
#: stamp an almost-expired deadline should still forward it (the receiver
#: will observe the expiry and answer 504 — the authoritative outcome —
#: rather than the parent masking it with a local guess).
MIN_STAMP_SECONDS = 1e-5


class Deadline:
    """A monotonic time budget for one request.

    Args:
        budget_seconds: how long the request may take from *now*; must be
            positive and finite.
        clock: monotonic clock (injectable for tests).
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self,
        budget_seconds: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        budget = float(budget_seconds)
        if not math.isfinite(budget) or budget <= 0:
            raise ServeError(
                f"a deadline budget must be positive and finite, got "
                f"{budget_seconds!r}"
            )
        self._clock = clock
        self._expires_at = clock() + budget

    @classmethod
    def from_ms(
        cls, budget_ms: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Build from a wire ``deadline_ms`` remaining budget."""
        return cls(float(budget_ms) / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds left (clamped to 0.0 once expired)."""
        return max(0.0, self._expires_at - self._clock())

    def remaining_ms(self) -> float:
        """Milliseconds left (clamped to 0.0 once expired)."""
        return self.remaining() * 1000.0

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def sub_budget(self, fraction: float) -> "Deadline":
        """A child deadline over ``fraction`` of the remaining budget.

        Used for scatter fragments: giving each fragment only part of the
        remaining budget reserves headroom for the degraded re-answer and
        the merge if a fragment times out.
        """
        if not 0 < fraction <= 1:
            raise ServeError(
                f"a sub-budget fraction must be in (0, 1], got {fraction!r}"
            )
        budget = max(self.remaining(), MIN_STAMP_SECONDS) * fraction
        return type(self)(budget, clock=self._clock)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


def deadline_from_payload(
    payload: Any, *, clock: Callable[[], float] = time.monotonic
) -> Deadline | None:
    """Start the local countdown for a payload's ``deadline_ms``, if any.

    Raises:
        CodecError: on a malformed ``deadline_ms``
            (:func:`repro.serve.codec.deadline_ms_field`).
    """
    budget_ms = codec.deadline_ms_field(payload)
    if budget_ms is None:
        return None
    return Deadline.from_ms(budget_ms, clock=clock)


def stamp_deadline(
    payload: Mapping | None, deadline: Deadline | None
) -> Mapping | None:
    """Re-stamp the remaining budget onto a payload about to be forwarded.

    Returns the payload unchanged when there is no deadline or no mapping
    to stamp; otherwise a shallow copy with a fresh ``deadline_ms``.  The
    stamp is clamped positive so the wire validator accepts it even if
    the budget expired between the caller's check and the stamp — the
    receiver then observes the (near-)expiry itself.
    """
    if deadline is None or not isinstance(payload, Mapping):
        return payload
    remaining_ms = max(deadline.remaining_ms(), MIN_STAMP_SECONDS * 1000.0)
    return {**payload, "deadline_ms": remaining_ms}


class ResilienceStats:
    """Thread-safe named counters for the recovery paths.

    Every counter starts at zero and only ever increments; `snapshot()`
    is the JSON-safe view surfaced under ``stats()["resilience"]``.
    """

    #: Counters every snapshot reports, even at zero, so dashboards and
    #: the chaos soak can assert on stable keys.
    COUNTERS = (
        "deadline_expiries",
        "unresponsive_restarts",
        "crash_restarts",
        "corrupt_replies",
        "lost_sessions",
        "degraded_answers",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {name: 0 for name in self.COUNTERS}

    def incr(self, name: str, n: int = 1) -> None:
        if name not in self._counts:
            # A typo'd counter would silently vanish from dashboards.
            raise ServeError(f"unknown resilience counter {name!r}")
        with self._lock:
            self._counts[name] += int(n)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _SlotState:
    __slots__ = ("failures", "open_until")

    def __init__(self) -> None:
        self.failures = 0
        self.open_until: float | None = None


class CircuitBreaker:
    """Consecutive-failure circuit breaker over N worker slots.

    States per slot: *closed* (healthy, requests flow), *open* (too many
    consecutive failures; routed around until ``cooldown_seconds``
    elapse), *half-open* (cooldown elapsed; one probe is allowed —
    success closes, failure re-opens and restarts the cooldown).

    Args:
        n_slots: number of worker slots guarded.
        threshold: consecutive failures that open a slot.
        cooldown_seconds: how long an open slot is routed around before
            a re-probe is allowed.
        clock: monotonic clock (injectable for tests).
    """

    def __init__(
        self,
        n_slots: int,
        *,
        threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_slots < 1:
            raise ServeError(f"n_slots must be >= 1, got {n_slots}")
        if threshold < 1:
            raise ServeError(f"threshold must be >= 1, got {threshold}")
        if not math.isfinite(float(cooldown_seconds)) or cooldown_seconds <= 0:
            raise ServeError(
                f"cooldown_seconds must be positive and finite, got "
                f"{cooldown_seconds!r}"
            )
        self._clock = clock
        self._threshold = int(threshold)
        self._cooldown = float(cooldown_seconds)
        self._lock = threading.Lock()
        self._slots = [_SlotState() for _ in range(n_slots)]
        self._n_opens = 0

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def cooldown_seconds(self) -> float:
        return self._cooldown

    @property
    def n_opens(self) -> int:
        """How many closed/half-open → open transitions have happened."""
        with self._lock:
            return self._n_opens

    def available(self, slot: int) -> bool:
        """May a request be routed to this slot right now?

        True for closed slots and for open slots whose cooldown has
        elapsed (the half-open probe).
        """
        with self._lock:
            state = self._slots[slot]
            if state.open_until is None:
                return True
            return self._clock() >= state.open_until

    def record_success(self, slot: int) -> None:
        """A request to this slot succeeded: reset and close."""
        with self._lock:
            state = self._slots[slot]
            state.failures = 0
            state.open_until = None

    def record_failure(self, slot: int) -> None:
        """A request to this slot failed; open it at the threshold.

        Failures while the slot is already open (affinity-routed session
        requests bypass the breaker) extend nothing and are not counted
        as new opens — only a closed or half-open slot transitions.
        """
        with self._lock:
            state = self._slots[slot]
            state.failures += 1
            if state.failures < self._threshold:
                return
            now = self._clock()
            if state.open_until is None or now >= state.open_until:
                state.open_until = now + self._cooldown
                self._n_opens += 1

    def snapshot(self) -> dict:
        """JSON-safe breaker state for ``stats()["resilience"]``."""
        with self._lock:
            now = self._clock()
            open_slots = [
                index
                for index, state in enumerate(self._slots)
                if state.open_until is not None and now < state.open_until
            ]
            return {
                "threshold": self._threshold,
                "cooldown_seconds": self._cooldown,
                "opens": self._n_opens,
                "open_workers": open_slots,
                "consecutive_failures": [
                    state.failures for state in self._slots
                ],
            }
