"""Token-addressed retrieval sessions for stateless serving.

The paper's relevance-feedback workflow is inherently stateful — the user
accumulates positive/negative examples across rounds — but HTTP requests
are not.  :class:`SessionStore` bridges the two: it turns
:class:`~repro.session.RetrievalSession` into a multi-tenant resource
addressed by an opaque token.

* ``create`` mints a token and a session bound to the store's shared
  :class:`~repro.api.service.RetrievalService` (one database, one concept
  cache — tenants share cache *hits* but never examples);
* ``feedback_round`` applies one round of example edits + train/rank under
  a per-session lock, so concurrent requests for the same token serialise
  while distinct tenants proceed in parallel;
* sessions expire after ``ttl_seconds`` of inactivity and the store holds
  at most ``max_sessions`` (least-recently-used evicted first), so an
  abandoned tenant can never pin memory forever.

The clock is injectable (monotonic seconds) so expiry is testable without
sleeping.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.api.service import RetrievalService
from repro.core.concept import LearnedConcept
from repro.core.retrieval import RetrievalResult
from repro.errors import SessionError
from repro.session import RetrievalSession


@dataclass
class _Entry:
    session: RetrievalSession
    deadline: float
    lock: threading.Lock


@dataclass(frozen=True)
class FeedbackRoundResult:
    """What one serving feedback round produced.

    Attributes:
        token: the session token (echoed back so create-on-first-use flows
            can keep the handle).
        positive_ids: the session's positive examples after the round.
        negative_ids: the session's negative examples after the round.
        ranking: the fresh ranking, or ``None`` when ``rank=False``.
        concept: the concept trained this round (captured under the
            session lock — consistent with ``ranking`` even under
            concurrent rounds), or ``None`` when not trained / not a
            concept learner.
    """

    token: str
    positive_ids: tuple[str, ...]
    negative_ids: tuple[str, ...]
    ranking: RetrievalResult | None
    concept: LearnedConcept | None = None


class SessionStore:
    """Thread-safe, bounded, expiring store of retrieval sessions.

    Args:
        service: the shared retrieval service every session queries
            through (and whose concept cache all tenants share).
        ttl_seconds: idle lifetime; any access (get/feedback) refreshes it.
        max_sessions: capacity; creating past it evicts the
            least-recently-used session.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        service: RetrievalService,
        *,
        ttl_seconds: float = 1800.0,
        max_sessions: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_seconds <= 0:
            raise SessionError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        if max_sessions < 1:
            raise SessionError(f"max_sessions must be >= 1, got {max_sessions}")
        self._service = service
        self._ttl = float(ttl_seconds)
        self._max_sessions = int(max_sessions)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        # Earliest deadline any entry can have; sweeps are skipped until the
        # clock reaches it, so the hot path never pays an O(n) scan.
        self._soonest_deadline = float("inf")
        self._n_created = 0
        self._n_expired = 0
        self._n_evicted = 0

    @property
    def service(self) -> RetrievalService:
        """The shared retrieval service."""
        return self._service

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def create(
        self,
        learner: str = "dd",
        params: dict[str, object] | None = None,
        **session_kwargs,
    ) -> str:
        """Mint a new session; returns its token.

        Args:
            learner: registry name the session trains with.
            params: explicit learner parameters (see
                :class:`~repro.session.RetrievalSession`'s
                ``learner_params``).
            session_kwargs: forwarded to :class:`RetrievalSession` (scheme,
                beta, seed, ...; ignored when ``params`` is given).
        """
        session = RetrievalSession(
            self._service.database,
            learner=learner,
            learner_params=params,
            service=self._service,
            **session_kwargs,
        )
        token = secrets.token_hex(16)
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            while len(self._entries) >= self._max_sessions:
                victim = self._lru_idle_token_locked()
                if victim is None:
                    raise SessionError(
                        "session store is full and every session is mid-round"
                    )
                del self._entries[victim]
                self._n_evicted += 1
            deadline = now + self._ttl
            self._entries[token] = _Entry(
                session=session, deadline=deadline, lock=threading.Lock()
            )
            self._soonest_deadline = min(self._soonest_deadline, deadline)
            self._n_created += 1
        return token

    def _lru_idle_token_locked(self) -> str | None:
        """The least-recently-used token whose round is not in flight.

        A session holding its round lock is actively training — evicting
        it would silently destroy a live tenant's examples, so eviction
        skips it and takes the next-idlest instead.
        """
        for token, entry in self._entries.items():
            if not entry.lock.locked():
                return token
        return None

    def get(self, token: str) -> RetrievalSession:
        """The live session for a token (refreshes its TTL).

        Raises:
            SessionError: unknown or expired token.
        """
        return self._entry(token).session

    def drop(self, token: str) -> bool:
        """Explicitly end a session; returns whether it existed."""
        with self._lock:
            return self._entries.pop(token, None) is not None

    def expire(self) -> int:
        """Sweep expired sessions now; returns how many were dropped."""
        with self._lock:
            before = len(self._entries)
            self._sweep_locked(self._clock())
            return before - len(self._entries)

    def _entry(self, token: str) -> _Entry:
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            entry = self._entries.get(token)
            if entry is None:
                raise SessionError(f"unknown or expired session token {token!r}")
            entry.deadline = now + self._ttl
            self._entries.move_to_end(token)
            return entry

    def _sweep_locked(self, now: float) -> None:
        # Deadlines only ever move later (touch refreshes), so nothing can
        # have expired before the soonest deadline recorded at insert time.
        if now < self._soonest_deadline:
            return
        expired = [
            token
            for token, entry in self._entries.items()
            # A held round lock means the tenant is mid-training right now;
            # a live round must not have its session destroyed under it.
            if entry.deadline <= now and not entry.lock.locked()
        ]
        for token in expired:
            del self._entries[token]
        self._n_expired += len(expired)
        self._soonest_deadline = min(
            (entry.deadline for entry in self._entries.values()),
            default=float("inf"),
        )

    # ------------------------------------------------------------------ #
    # Feedback                                                            #
    # ------------------------------------------------------------------ #

    def feedback_round(
        self,
        token: str,
        *,
        add_positive_ids: Sequence[str] = (),
        add_negative_ids: Sequence[str] = (),
        false_positive_ids: Sequence[str] = (),
        rank: bool = True,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> FeedbackRoundResult:
        """One serving round: apply example edits, then train and rank.

        Runs under the session's own lock, so concurrent rounds on the same
        token serialise (examples never interleave) while other tenants are
        untouched.  With ``rank=False`` only the example edits are applied.

        The edits are atomic: every id across all three lists is validated
        before any is applied, so a rejected round leaves the session's
        examples untouched and the client can simply retry with a corrected
        request.  (A :class:`TrainingError` from the ranking step happens
        *after* valid edits were applied — retry with ``rank`` only.)

        Raises:
            SessionError: unknown or expired token.
            DatabaseError: an edit references an unknown image, an existing
                example, or a duplicate across the edit lists (nothing is
                applied).
            TrainingError: ranking requested with no positive example.
        """
        entry = self._entry(token)
        with entry.lock:
            session = entry.session
            session.apply_edits(
                add_positive_ids=tuple(add_positive_ids),
                add_negative_ids=tuple(add_negative_ids),
                false_positive_ids=tuple(false_positive_ids),
            )
            ranking = None
            if rank:
                ranking = session.train_and_rank(
                    top_k=top_k, category_filter=category_filter
                )
            return FeedbackRoundResult(
                token=token,
                positive_ids=session.positive_ids,
                negative_ids=session.negative_ids,
                ranking=ranking,
                concept=session.peek_concept(),
            )

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Point-in-time session counters (plain JSON-safe dict)."""
        with self._lock:
            return {
                "active": len(self._entries),
                "created": self._n_created,
                "expired": self._n_expired,
                "evicted": self._n_evicted,
                "ttl_seconds": self._ttl,
                "max_sessions": self._max_sessions,
            }
