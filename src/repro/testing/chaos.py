"""Deterministic chaos soak: prove faults never change a ranking.

:func:`run_chaos_soak` runs one seeded query/rank/feedback request mix
twice against the *same* corpus — once on a fault-free worker pool (no
deadlines, nothing injected) and once on a pool under a seeded
:class:`~repro.testing.faults.FaultPlan` with per-request deadlines and
bounded retries — then compares the rankings **bit-identically**
(image ids, categories, exact distances, candidate totals).  Training is
seeded and ranking deterministic, so crashes, stalls, corrupt replies
and injected errors may cost retries, restarts and degraded answers, but
never a different answer; the resulting :class:`ChaosReport` carries the
pool's ``resilience`` counters so callers can also assert every injected
fault was accounted for.  ``repro chaos`` is the CLI face.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import DatasetError
from repro.serve import codec

#: Learner parameters for the mix's query/feedback training rounds:
#: seeded and small, so the soak trains fast and bit-identically on both
#: pools.
_LEARNER_PARAMS = {"scheme": "identical", "max_iterations": 20, "seed": 5}

#: Statuses (and the wire ``retryable`` flag) that justify replaying a
#: request against the recovered pool.
_RETRYABLE_STATUSES = (500, 502, 503, 504)


def _ranking_fingerprint(ranking: Any) -> tuple:
    """A hashable bit-exact summary of a wire ``ranking`` payload."""
    if not isinstance(ranking, Mapping):
        return ("no-ranking",)
    ranked = tuple(
        (
            entry.get("image_id"),
            entry.get("category"),
            entry.get("distance"),
        )
        for entry in ranking.get("ranked", ())
        if isinstance(entry, Mapping)
    )
    return (ranked, ranking.get("total_candidates"))


def build_mix(service, *, n_requests: int, seed: int, top_k: int = 10) -> list[dict]:
    """A seeded, deterministic query/rank/feedback request mix.

    Items cycle rank → query → feedback so every workload appears even in
    short soaks.  Rank items ship a wire concept anchored on a corpus
    instance; query items train from seeded per-category examples;
    feedback items are self-contained two-round chains (create, then
    refine and rank) so a chain can be replayed from scratch when a
    restart loses its session.

    Args:
        service: the coordinator-side service (supplies the packed view
            the examples and concepts come from).
        n_requests: how many mix items to build.
        seed: mix seed — same ``(corpus, seed, n_requests)``, same mix.
        top_k: ranking depth requested by the items.
    """
    if n_requests < 1:
        raise DatasetError(f"n_requests must be >= 1, got {n_requests}")
    packed = service.packed_database()
    rng = random.Random(seed)
    by_category: dict[str, list[str]] = {}
    for image_id, category in zip(packed.image_ids, packed.categories):
        by_category.setdefault(category, []).append(image_id)
    categories = sorted(by_category)
    if len(categories) < 2:
        raise DatasetError(
            "the chaos mix needs at least two categories to draw "
            "positive and negative examples from"
        )
    n_instances = int(packed.instances.shape[0])
    n_dims = int(packed.instances.shape[1])

    def examples(item_rng: random.Random) -> tuple[list[str], list[str]]:
        positive_cat = item_rng.choice(categories)
        negative_cat = item_rng.choice(
            [cat for cat in categories if cat != positive_cat]
        )
        positives = item_rng.sample(
            by_category[positive_cat], min(2, len(by_category[positive_cat]))
        )
        negatives = item_rng.sample(
            by_category[negative_cat], min(1, len(by_category[negative_cat]))
        )
        return positives, negatives

    items: list[dict] = []
    kinds = ("rank", "query", "feedback")
    for index in range(n_requests):
        kind = kinds[index % len(kinds)]
        item_rng = random.Random(f"{seed}:{index}")
        if kind == "rank":
            anchor = item_rng.randrange(n_instances)
            concept = {
                "kind": "concept",
                "version": codec.WIRE_VERSION,
                "t": [float(v) for v in packed.instances[anchor]],
                "w": [1.0] * n_dims,
                "nll": 0.0,
            }
            items.append(
                {
                    "kind": "rank",
                    "payload": codec.envelope(
                        "rank",
                        {
                            "concept": concept,
                            "top_k": item_rng.choice((5, top_k)),
                        },
                    ),
                }
            )
        elif kind == "query":
            positives, negatives = examples(item_rng)
            items.append(
                {
                    "kind": "query",
                    "payload": codec.envelope(
                        "query",
                        {
                            "positive_ids": positives,
                            "negative_ids": negatives,
                            "learner": "dd",
                            "params": dict(_LEARNER_PARAMS),
                            "candidate_ids": None,
                            "top_k": top_k,
                            "category_filter": None,
                            "query_id": f"chaos-{index}",
                        },
                    ),
                }
            )
        else:
            positives, negatives = examples(item_rng)
            extra_cat = item_rng.choice(categories)
            extra = item_rng.choice(by_category[extra_cat])
            rounds = [
                {
                    "learner": "dd",
                    "params": dict(_LEARNER_PARAMS),
                    "add_positive_ids": positives,
                    "add_negative_ids": negatives,
                    "rank": False,
                },
                {
                    "add_positive_ids": [] if extra in positives else [extra],
                    "add_negative_ids": [],
                    "rank": True,
                    "top_k": top_k,
                },
            ]
            items.append({"kind": "feedback", "rounds": rounds})
    return items


@dataclass
class ChaosReport:
    """What one :func:`run_chaos_soak` observed.

    ``ok`` requires every request answered on both pools and every
    fingerprint bit-identical; resilience counters and restart totals let
    callers additionally assert the plan's faults were *exercised*, not
    dodged.
    """

    n_requests: int
    n_faults_planned: int
    fault_counts: dict[str, int]
    n_retries: int
    n_failures: int
    baseline_failures: int
    mismatches: list[int] = field(default_factory=list)
    resilience: dict = field(default_factory=dict)
    n_restarts: int = 0
    max_attempt_seconds: float = 0.0
    deadline_ms: float | None = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and self.n_failures == 0
            and self.baseline_failures == 0
        )


def _run_mix(
    handle: Callable[[str, Mapping | None], tuple[int, dict]],
    items: Sequence[Mapping],
    *,
    deadline_ms: float | None,
    max_retries: int,
) -> tuple[list[tuple], int, int, float]:
    """Run the mix; returns (fingerprints, retries, failures, max_seconds)."""
    fingerprints: list[tuple] = []
    n_retries = 0
    n_failures = 0
    max_attempt = 0.0

    def call(endpoint: str, payload: Mapping) -> tuple[int, dict, float]:
        send = dict(payload)
        if deadline_ms is not None:
            send["deadline_ms"] = float(deadline_ms)
        started = time.monotonic()
        status, reply = handle(endpoint, send)
        return status, reply, time.monotonic() - started

    def retryable(status: int, reply: Mapping) -> bool:
        if status in _RETRYABLE_STATUSES:
            return True
        return bool(isinstance(reply, Mapping) and reply.get("retryable"))

    for item in items:
        fingerprint: tuple | None = None
        if item["kind"] in ("rank", "query"):
            endpoint = str(item["kind"])
            for _ in range(max_retries + 1):
                status, reply, seconds = call(endpoint, item["payload"])
                max_attempt = max(max_attempt, seconds)
                if status == 200:
                    # Both reply kinds nest the ranking under "ranking"
                    # (query_result and rank_result alike).
                    fingerprint = _ranking_fingerprint(reply.get("ranking"))
                    break
                if not retryable(status, reply):
                    break
                n_retries += 1
        else:
            # A feedback chain replays from round one whenever any round
            # fails retryably (a session lost to a restart cannot be
            # resumed — a fresh one retrains from the same examples and
            # lands on the same concept).
            for _ in range(max_retries + 1):
                token = None
                chain_ok = True
                chain_retry = False
                for round_fields in item["rounds"]:
                    fields = dict(round_fields)
                    fields["session"] = token
                    status, reply, seconds = call(
                        "feedback", codec.envelope("feedback", fields)
                    )
                    max_attempt = max(max_attempt, seconds)
                    if status != 200:
                        chain_ok = False
                        chain_retry = retryable(status, reply)
                        break
                    token = reply.get("session")
                    last_reply = reply
                if chain_ok:
                    fingerprint = _ranking_fingerprint(last_reply.get("ranking"))
                    break
                if not chain_retry:
                    break
                n_retries += 1
        if fingerprint is None:
            n_failures += 1
            fingerprints.append(("failed",))
        else:
            fingerprints.append(fingerprint)
    return fingerprints, n_retries, n_failures, max_attempt


def run_chaos_soak(
    service,
    *,
    n_workers: int = 2,
    seed: int = 7,
    n_requests: int = 24,
    deadline_ms: float = 2000.0,
    plan=None,
    max_retries: int = 8,
    min_scatter_bags: int | None = None,
    pool_factory: Callable | None = None,
) -> ChaosReport:
    """Soak a faulted pool and assert nothing but latency changed.

    Builds the seeded mix once, answers it on a fault-free pool (the
    baseline; no deadlines, so even a slow box answers everything), then
    answers the *same* mix on a pool under ``plan`` with per-request
    deadlines and bounded retries, and fingerprints every ranking.

    Args:
        service: the warmed coordinator-side service both pools share.
        n_workers: pool width (both runs).
        seed: seeds the mix and (when ``plan`` is None) the default plan.
        n_requests: mix length.
        deadline_ms: per-request budget for the faulted run.
        plan: the :class:`~repro.testing.faults.FaultPlan` to inject;
            ``None`` generates a default crash/stall/corrupt/error mix
            from ``seed`` (stalls sized well past ``deadline_ms`` so they
            resolve by expiry, never by waiting them out).
        max_retries: per-request retry budget against retryable failures.
        min_scatter_bags: passed to the dispatch app (``None`` keeps the
            auto threshold; small corpora then never scatter).
        pool_factory: test seam — ``pool_factory(service, n_workers,
            fault_plan=...)`` replaces ``WorkerPool.from_service``.

    Returns:
        A :class:`ChaosReport`; ``report.ok`` is the bit-identity claim.
    """
    from repro.serve.workers import WorkerDispatchApp, WorkerPool
    from repro.testing.faults import FaultPlan

    if plan is None:
        plan = FaultPlan.generate(
            seed,
            n_workers=n_workers,
            n_faults=6,
            window=max(4, n_requests // 2),
            stall_seconds=max(10.0, 5.0 * deadline_ms / 1000.0),
        )
    factory = (
        (lambda svc, n, **kw: WorkerPool.from_service(svc, n, **kw))
        if pool_factory is None
        else pool_factory
    )
    items = build_mix(service, n_requests=n_requests, seed=seed)
    started = time.monotonic()

    baseline_pool = factory(service, n_workers)
    try:
        baseline_app = WorkerDispatchApp(
            baseline_pool, service=service, min_scatter_bags=min_scatter_bags
        )
        baseline, _, baseline_failures, _ = _run_mix(
            baseline_app.handle, items, deadline_ms=None, max_retries=0
        )
    finally:
        baseline_pool.stop()

    faulted_pool = factory(service, n_workers, fault_plan=plan)
    try:
        faulted_app = WorkerDispatchApp(
            faulted_pool, service=service, min_scatter_bags=min_scatter_bags
        )
        faulted, n_retries, n_failures, max_attempt = _run_mix(
            faulted_app.handle,
            items,
            deadline_ms=deadline_ms,
            max_retries=max_retries,
        )
        # Snapshot stats while the workers are still alive (the broadcast
        # needs them); pool counters survive the stop either way.
        stats = faulted_app.stats()
        resilience = dict(stats.get("resilience", {}))
        n_restarts = faulted_pool.n_restarts
    finally:
        faulted_pool.stop()

    mismatches = [
        index
        for index, (expected, actual) in enumerate(zip(baseline, faulted))
        if expected != actual
    ]
    return ChaosReport(
        n_requests=len(items),
        n_faults_planned=len(plan),
        fault_counts=plan.counts(),
        n_retries=n_retries,
        n_failures=n_failures,
        baseline_failures=baseline_failures,
        mismatches=mismatches,
        resilience=resilience,
        n_restarts=n_restarts,
        max_attempt_seconds=max_attempt,
        deadline_ms=deadline_ms,
        elapsed_seconds=time.monotonic() - started,
    )
