"""Deterministic fault injection and chaos soaking for the serving layer.

:mod:`repro.testing.faults`
    :class:`FaultPlan` / :class:`FaultSpec` — a seeded, schema-versioned
    plan of worker faults (crash-before-reply, stall-N-seconds,
    corrupt-payload, error-status, slow-start), installed into pooled
    workers via knobs and consulted by :class:`FaultInjector` at the
    ``_worker_main`` dispatch boundary.
:mod:`repro.testing.chaos`
    :func:`run_chaos_soak` — runs the same seeded query/rank/feedback mix
    against a fault-free pool and a pool under a :class:`FaultPlan`, and
    asserts the rankings stay bit-identical (``repro chaos`` on the CLI).
"""

from repro.testing.faults import (
    FAULT_KINDS,
    PLAN_VERSION,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.testing.chaos import ChaosReport, build_mix, run_chaos_soak

__all__ = [
    "FAULT_KINDS",
    "PLAN_VERSION",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ChaosReport",
    "build_mix",
    "run_chaos_soak",
]
