"""Seeded, schema-versioned fault plans for pooled serving workers.

A :class:`FaultPlan` is a deterministic list of :class:`FaultSpec`
entries — *which worker* misbehaves, *how*, and *on which request* of
*which incarnation*.  The plan travels to workers through the pool's
knobs (it is JSON-safe, like everything else that crosses the spawn
boundary) and is consulted by a :class:`FaultInjector` at the
``_worker_main`` dispatch loop, before the request reaches the app — the
exact boundary where real crashes, stalls and corruption strike.

Determinism is the point: the same ``(plan, request sequence)`` always
fires the same faults at the same requests, so every recovery path —
restart, deadline expiry, degraded scatter, breaker trip — is exercised
reproducibly instead of hoping a race shows up.  Incarnation gating
(specs default to incarnation 0, the first process in a slot) guarantees
a restarted worker comes back clean, so a fault-injected soak always
terminates.

Fault kinds (:data:`FAULT_KINDS`):

``crash``
    ``os._exit`` before replying — the parent sees EOF mid-request.
``stall``
    Sleep ``seconds`` before handling — a hung-but-alive worker; only a
    request deadline gets the parent its slot back.
``corrupt``
    Handle the request, then send garbage instead of the
    ``(status, payload)`` pair — exercises reply validation.
``error``
    Reply ``(500, error payload)`` without dispatching — a retryable
    server-side failure.
``slow_start``
    Sleep ``seconds`` before reporting ready — a cold, slow warm-up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import CodecError, DatasetError

#: Every fault kind a plan may carry.
FAULT_KINDS = ("crash", "stall", "corrupt", "error", "slow_start")

#: Wire-format version of :meth:`FaultPlan.to_wire`.  Bumped whenever a
#: field changes meaning; :meth:`FaultPlan.from_wire` rejects others.
PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: which worker misbehaves, how, and when.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        worker: the worker slot the fault targets.
        after_requests: the fault arms on the Nth dispatched request
            (1-based) of the targeted incarnation; it fires on the first
            armed request whose endpoint matches.  Ignored by
            ``slow_start`` (which fires at process start).
        seconds: stall / slow-start duration.
        endpoint: restrict firing to one endpoint name (``None`` = any).
        incarnation: which process generation in the slot is targeted
            (0 = the original worker; restarts increment).
    """

    kind: str
    worker: int
    after_requests: int = 1
    seconds: float = 0.0
    endpoint: str | None = None
    incarnation: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise DatasetError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if self.worker < 0:
            raise DatasetError(f"fault worker must be >= 0, got {self.worker}")
        if self.after_requests < 1:
            raise DatasetError(
                f"after_requests must be >= 1, got {self.after_requests}"
            )
        if self.seconds < 0:
            raise DatasetError(f"fault seconds must be >= 0, got {self.seconds}")
        if self.incarnation < 0:
            raise DatasetError(
                f"fault incarnation must be >= 0, got {self.incarnation}"
            )

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "after_requests": self.after_requests,
            "seconds": self.seconds,
            "endpoint": self.endpoint,
            "incarnation": self.incarnation,
        }

    @classmethod
    def from_wire(cls, payload: Mapping) -> "FaultSpec":
        if not isinstance(payload, Mapping):
            raise CodecError(
                f"a fault spec must be a mapping, got {type(payload).__name__}"
            )
        try:
            return cls(
                kind=str(payload["kind"]),
                worker=int(payload["worker"]),
                after_requests=int(payload.get("after_requests", 1)),
                seconds=float(payload.get("seconds", 0.0)),
                endpoint=payload.get("endpoint"),
                incarnation=int(payload.get("incarnation", 0)),
            )
        except KeyError as exc:
            raise CodecError(f"fault spec is missing field {exc}") from None
        except (DatasetError, TypeError, ValueError) as exc:
            raise CodecError(str(exc)) from None


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of faults for one worker pool.

    Build explicitly from specs, or with :meth:`generate` for a seeded
    pseudo-random mix.  Plans are immutable and JSON-safe
    (:meth:`to_wire` / :meth:`from_wire`, schema-versioned).
    """

    seed: int
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_workers: int,
        n_faults: int = 6,
        kinds: Sequence[str] = FAULT_KINDS,
        first_request: int = 1,
        window: int = 16,
        stall_seconds: float = 30.0,
        slow_start_seconds: float = 0.2,
    ) -> "FaultPlan":
        """A seeded mix of faults spread across the pool.

        Kinds round-robin through ``kinds`` (so every kind appears when
        ``n_faults >= len(kinds)``); targets and arming points draw from
        ``random.Random(seed)``.  Same arguments, same plan — always.

        Args:
            seed: the plan seed.
            n_workers: pool width the plan targets.
            n_faults: how many faults to schedule.
            kinds: fault kinds to cycle through.
            first_request: earliest request index a fault may arm on.
            window: arming points spread over
                ``[first_request, first_request + window)``.
            stall_seconds: duration of ``stall`` faults (choose well past
                the soak's request deadline so expiry, not completion,
                resolves them).
            slow_start_seconds: duration of ``slow_start`` faults (keep
                under the pool's ready timeout).
        """
        if n_workers < 1:
            raise DatasetError(f"n_workers must be >= 1, got {n_workers}")
        if n_faults < 0:
            raise DatasetError(f"n_faults must be >= 0, got {n_faults}")
        if not kinds:
            raise DatasetError("kinds must not be empty")
        rng = random.Random(seed)
        specs = []
        for index in range(n_faults):
            kind = kinds[index % len(kinds)]
            if kind == "stall":
                seconds = float(stall_seconds)
            elif kind == "slow_start":
                seconds = float(slow_start_seconds)
            else:
                seconds = 0.0
            specs.append(
                FaultSpec(
                    kind=kind,
                    worker=rng.randrange(n_workers),
                    after_requests=first_request + rng.randrange(max(1, window)),
                    seconds=seconds,
                )
            )
        return cls(seed=int(seed), faults=tuple(specs))

    def for_worker(
        self, worker: int, incarnation: int = 0
    ) -> tuple[FaultSpec, ...]:
        """The specs targeting one worker incarnation, plan order kept."""
        return tuple(
            spec
            for spec in self.faults
            if spec.worker == worker and spec.incarnation == incarnation
        )

    def counts(self) -> dict[str, int]:
        """How many faults of each kind the plan schedules."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for spec in self.faults:
            out[spec.kind] += 1
        return out

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def to_wire(self) -> dict:
        return {
            "kind": "fault_plan",
            "version": PLAN_VERSION,
            "seed": self.seed,
            "faults": [spec.to_wire() for spec in self.faults],
        }

    @classmethod
    def from_wire(cls, payload: Any) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise CodecError(
                f"a fault plan must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("kind") != "fault_plan":
            raise CodecError(
                f"expected a 'fault_plan' payload, got {payload.get('kind')!r}"
            )
        version = payload.get("version")
        if version != PLAN_VERSION:
            raise CodecError(
                f"unsupported fault plan version {version!r} "
                f"(this codec speaks version {PLAN_VERSION})"
            )
        faults = payload.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise CodecError("fault plan 'faults' must be a list")
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(FaultSpec.from_wire(entry) for entry in faults),
        )


class FaultInjector:
    """The worker-side consumer of a :class:`FaultPlan`.

    One injector lives inside each worker process, built from the plan
    plus the worker's ``(worker_id, incarnation)`` knobs.  The dispatch
    loop calls :meth:`before_dispatch` once per request; a returned spec
    is the fault to act on (each spec fires at most once).  Startup calls
    :meth:`sleep_on_start` for the ``slow_start`` budget.
    """

    def __init__(
        self, plan: FaultPlan, *, worker_id: int, incarnation: int = 0
    ) -> None:
        specs = plan.for_worker(worker_id, incarnation)
        self._pending = [
            spec for spec in specs if spec.kind != "slow_start"
        ]
        self._slow_start = sum(
            spec.seconds for spec in specs if spec.kind == "slow_start"
        )
        self._n_dispatched = 0
        self._n_fired = 0

    @property
    def n_fired(self) -> int:
        return self._n_fired

    @property
    def slow_start_seconds(self) -> float:
        return self._slow_start

    def sleep_on_start(self) -> None:
        """Apply the slow-start budget (called before reporting ready)."""
        if self._slow_start > 0:
            import time

            time.sleep(self._slow_start)

    def before_dispatch(self, endpoint: str) -> FaultSpec | None:
        """The fault to apply to this request, if any.

        Fires the first pending spec that has armed
        (``after_requests <= requests seen``) and whose endpoint filter
        matches; an armed spec waiting on an endpoint keeps waiting
        without blocking later specs.
        """
        self._n_dispatched += 1
        for index, spec in enumerate(self._pending):
            if spec.after_requests > self._n_dispatched:
                continue
            if spec.endpoint is not None and spec.endpoint != endpoint:
                continue
            del self._pending[index]
            self._n_fired += 1
            return spec
        return None
