"""Image database retrieval with multiple-instance learning techniques.

This package reproduces the system of Yang & Lozano-Perez (ICDE 2000):
content-based image retrieval where each image is a *bag* of region-level
feature vectors and the Diverse Density algorithm learns the user's concept
from positive and negative example images.

Layering (bottom to top):

``repro.imaging``
    Gray-scale conversion, smoothing-and-sampling, region families,
    (weighted) correlation and the correlation-to-Euclidean normalisation.
``repro.bags``
    The multiple-instance data model (instances, bags, bag sets) and the
    image-to-bag generation pipeline.
``repro.core``
    The Diverse Density objective, optimisers (unconstrained and
    constrained), weight-control schemes, learned concepts, the retrieval
    ranker and the simulated relevance-feedback loop.
``repro.database``
    The image database: records, store, category catalog, splits and
    persistence.
``repro.datasets``
    Seeded synthetic substitutes for the paper's COREL natural scenes and
    web object images.
``repro.baselines``
    The Maron & Lakshmi Ratan colour-feature comparator and sanity rankers.
``repro.api``
    The public query API: the :class:`Learner` registry unifying the DD,
    EM-DD and baseline strategies, frozen ``Query``/``QueryResult``
    request–response objects, and the :class:`RetrievalService` facade
    with cached bag corpora and multi-worker ``batch_query`` execution.
``repro.serve``
    The serving subsystem: schema-versioned wire codecs, the
    dict-in/dict-out :class:`ServiceApp` facade, token-addressed
    multi-tenant feedback sessions, a stdlib HTTP worker + thin client,
    and warm-worker snapshots (database + packed corpora + concept cache).
``repro.eval``
    Precision/recall machinery, experiment runner and ASCII reporting.
``repro.experiments``
    One configuration per table/figure of the paper's evaluation chapter.

Quickstart (stateful session)::

    from repro import quick_database, RetrievalSession

    db = quick_database("scenes", images_per_category=20, seed=7)
    session = RetrievalSession(db, scheme="inequality", beta=0.5, seed=7)
    session.add_examples(category="waterfall", n_positive=5, n_negative=5)
    result = session.train_and_rank()
    print(result.top(10))

Quickstart (service, any registered learner)::

    from repro import Query, RetrievalService

    service = RetrievalService(db)
    result = service.query(Query(
        positive_ids=session.positive_ids,
        negative_ids=session.negative_ids,
        learner="emdd",
        params={"seed": 7},
        top_k=10,
    ))
    print(result.top())
"""

from repro.version import __version__
from repro.api.learners import (
    Learner,
    LearnedModel,
    available_learners,
    make_learner,
    register_learner,
)
from repro.api.query import Query, QueryResult, QueryTiming
from repro.api.service import RetrievalService
from repro.bags.bag import Bag, BagSet, Instance
from repro.core.cache import CacheStats, ConceptCache
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import (
    DiverseDensityTrainer,
    ExtraStart,
    StartRecord,
    TrainerConfig,
    TrainingResult,
)
from repro.core.emdd import EMDDConfig, EMDDTrainer
from repro.core.feedback import FeedbackLoop, FeedbackRound
from repro.core.retrieval import (
    PackedCorpus,
    RankedImage,
    Ranker,
    RetrievalEngine,
    RetrievalResult,
)
from repro.core.schemes import WeightScheme, make_scheme
from repro.database.index import StackedIndex
from repro.database.persistence import load_database, save_database
from repro.database.store import ImageDatabase
from repro.database.splits import DatabaseSplit, split_database
from repro.datasets.loader import build_object_database, build_scene_database, quick_database
from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.session import RetrievalSession
from repro.serve import (
    WIRE_VERSION,
    ReproClient,
    ReproServer,
    ServiceApp,
    SessionStore,
    load_service,
    save_service,
)

__all__ = [
    "__version__",
    "Learner",
    "LearnedModel",
    "available_learners",
    "make_learner",
    "register_learner",
    "Query",
    "QueryResult",
    "QueryTiming",
    "RetrievalService",
    "Bag",
    "BagSet",
    "Instance",
    "CacheStats",
    "ConceptCache",
    "LearnedConcept",
    "DiverseDensityTrainer",
    "ExtraStart",
    "StartRecord",
    "TrainerConfig",
    "TrainingResult",
    "EMDDConfig",
    "EMDDTrainer",
    "FeedbackLoop",
    "FeedbackRound",
    "PackedCorpus",
    "RankedImage",
    "Ranker",
    "RetrievalEngine",
    "RetrievalResult",
    "WeightScheme",
    "make_scheme",
    "StackedIndex",
    "ImageDatabase",
    "DatabaseSplit",
    "split_database",
    "save_database",
    "load_database",
    "WIRE_VERSION",
    "ServiceApp",
    "SessionStore",
    "ReproServer",
    "ReproClient",
    "save_service",
    "load_service",
    "build_scene_database",
    "build_object_database",
    "quick_database",
    "ExperimentConfig",
    "ExperimentResult",
    "RetrievalExperiment",
    "RetrievalSession",
]
