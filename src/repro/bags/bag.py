"""Bags and instances — the multiple-instance data model (Section 2.1.2).

An *instance* is one feature vector; a *bag* is the set of instances derived
from one image, labelled positive or negative as a whole.  A positive label
promises that at least one instance matches the target concept; a negative
label promises that none does.

:class:`BagSet` is the container handed to the Diverse Density trainer: it
keeps positive and negative bags separate, validates dimensional consistency
and exposes the flattened views (stacked instance matrix + bag boundaries)
the vectorised objective works on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import BagError


@dataclass(frozen=True)
class Instance:
    """One feature vector plus provenance.

    Attributes:
        vector: 1-D float64 feature vector.
        source: free-form provenance string (region name, mirror flag, ...).
    """

    vector: np.ndarray
    source: str = ""

    def __post_init__(self) -> None:
        vector = np.asarray(self.vector, dtype=np.float64).reshape(-1)
        if vector.size == 0:
            raise BagError("an instance vector cannot be empty")
        if not np.all(np.isfinite(vector)):
            raise BagError(f"instance vector contains non-finite values (source={self.source!r})")
        object.__setattr__(self, "vector", vector)

    @property
    def n_dims(self) -> int:
        """Dimensionality of the feature vector."""
        return self.vector.size


@dataclass(frozen=True)
class Bag:
    """All instances of one image, with the image-level label.

    Attributes:
        instances: the instance matrix, ``(n_instances, n_dims)``.
        label: True for a positive bag, False for a negative one.
        bag_id: identifier of the originating image.
        sources: optional per-instance provenance, parallel to ``instances``.
    """

    instances: np.ndarray
    label: bool
    bag_id: str = ""
    sources: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        # Copy unconditionally: the bag must own its matrix, so that a
        # caller mutating the source buffer afterwards cannot desynchronise
        # the content fingerprints the trained-concept cache keys on.
        matrix = np.array(self.instances, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2:
            raise BagError(f"bag instances must form a 2-D matrix, got shape {matrix.shape}")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise BagError(f"bag {self.bag_id!r} has an empty instance matrix {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise BagError(f"bag {self.bag_id!r} contains non-finite instance values")
        if self.sources and len(self.sources) != matrix.shape[0]:
            raise BagError(
                f"bag {self.bag_id!r}: {matrix.shape[0]} instances but "
                f"{len(self.sources)} sources"
            )
        matrix.setflags(write=False)
        object.__setattr__(self, "instances", matrix)

    @classmethod
    def from_instances(
        cls, instances: Sequence[Instance], label: bool, bag_id: str = ""
    ) -> "Bag":
        """Build a bag from :class:`Instance` objects (must agree on dims)."""
        if not instances:
            raise BagError(f"cannot build empty bag {bag_id!r}")
        dims = {inst.n_dims for inst in instances}
        if len(dims) != 1:
            raise BagError(f"bag {bag_id!r} mixes dimensionalities {sorted(dims)}")
        return cls(
            instances=np.vstack([inst.vector for inst in instances]),
            label=label,
            bag_id=bag_id,
            sources=tuple(inst.source for inst in instances),
        )

    @property
    def n_instances(self) -> int:
        """Number of instances in the bag."""
        return self.instances.shape[0]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self.instances.shape[1]

    def instance(self, index: int) -> Instance:
        """Return instance ``index`` as an :class:`Instance` object."""
        source = self.sources[index] if self.sources else ""
        return Instance(vector=self.instances[index], source=source)

    def relabeled(self, label: bool) -> "Bag":
        """A copy of this bag with a different image-level label."""
        return Bag(
            instances=self.instances, label=label, bag_id=self.bag_id, sources=self.sources
        )

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.instances)

    def __len__(self) -> int:
        return self.n_instances


class BagSet:
    """A labelled collection of bags, ready for the DD trainer.

    The set enforces a single feature dimensionality and unique bag ids, and
    pre-computes the stacked views used by the vectorised objective.
    """

    def __init__(self, bags: Iterable[Bag] = ()) -> None:
        self._bags: list[Bag] = []
        self._ids: set[str] = set()
        self._n_dims: int | None = None
        self._fingerprint: str | None = None
        for bag in bags:
            self.add(bag)

    def add(self, bag: Bag) -> None:
        """Add one bag, validating dimensionality and id uniqueness.

        Raises:
            BagError: on a dimension mismatch or duplicate non-empty bag id.
        """
        if self._n_dims is None:
            self._n_dims = bag.n_dims
        elif bag.n_dims != self._n_dims:
            raise BagError(
                f"bag {bag.bag_id!r} has {bag.n_dims} dims; the set holds {self._n_dims}"
            )
        if bag.bag_id:
            if bag.bag_id in self._ids:
                raise BagError(f"duplicate bag id {bag.bag_id!r}")
            self._ids.add(bag.bag_id)
        self._bags.append(bag)
        self._fingerprint = None

    def extend(self, bags: Iterable[Bag]) -> None:
        """Add several bags."""
        for bag in bags:
            self.add(bag)

    @property
    def bags(self) -> tuple[Bag, ...]:
        """All bags, in insertion order."""
        return tuple(self._bags)

    @property
    def positive_bags(self) -> tuple[Bag, ...]:
        """The bags labelled positive."""
        return tuple(bag for bag in self._bags if bag.label)

    @property
    def negative_bags(self) -> tuple[Bag, ...]:
        """The bags labelled negative."""
        return tuple(bag for bag in self._bags if not bag.label)

    @property
    def n_dims(self) -> int:
        """Feature dimensionality of the set.

        Raises:
            BagError: if the set is empty.
        """
        if self._n_dims is None:
            raise BagError("the bag set is empty")
        return self._n_dims

    @property
    def n_positive(self) -> int:
        """Number of positive bags."""
        return sum(1 for bag in self._bags if bag.label)

    @property
    def n_negative(self) -> int:
        """Number of negative bags."""
        return len(self._bags) - self.n_positive

    def contains_id(self, bag_id: str) -> bool:
        """Whether a bag with this id is already present."""
        return bag_id in self._ids

    def fingerprint(self) -> str:
        """Content hash of the set: bag ids, labels and instance values.

        Two bag sets with equal fingerprints are indistinguishable to a
        trainer (same bags, same order, same instance matrices), so the
        fingerprint can key a trained-concept cache.  The digest is cached
        and invalidated by :meth:`add`.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for bag in self._bags:
                digest.update(bag.bag_id.encode())
                digest.update(b"+" if bag.label else b"-")
                digest.update(np.asarray(bag.instances.shape, dtype=np.int64).tobytes())
                digest.update(np.ascontiguousarray(bag.instances).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def validate_for_training(self) -> None:
        """Check the set is trainable: at least one positive bag.

        Raises:
            BagError: if there is no positive bag.
        """
        if self.n_positive == 0:
            raise BagError("Diverse Density training requires at least one positive bag")

    def stacked(self, label: bool) -> tuple[np.ndarray, np.ndarray]:
        """Stack the instances of all bags with the given label.

        Returns:
            ``(matrix, boundaries)`` where ``matrix`` is
            ``(total_instances, n_dims)`` and ``boundaries`` holds the
            cumulative instance counts delimiting each bag, so bag ``i``
            occupies rows ``boundaries[i]:boundaries[i+1]``.  An empty side
            yields a ``(0, n_dims)`` matrix and ``[0]``.
        """
        selected = [bag for bag in self._bags if bag.label == label]
        counts = np.array([bag.n_instances for bag in selected], dtype=np.int64)
        boundaries = np.concatenate([[0], np.cumsum(counts)])
        if selected:
            matrix = np.vstack([bag.instances for bag in selected])
        else:
            matrix = np.zeros((0, self.n_dims), dtype=np.float64)
        return matrix, boundaries

    def __len__(self) -> int:
        return len(self._bags)

    def __iter__(self) -> Iterator[Bag]:
        return iter(self._bags)

    def __repr__(self) -> str:
        return f"BagSet({self.n_positive} positive, {self.n_negative} negative)"

    def copy(self) -> "BagSet":
        """A shallow copy (bags are immutable, so sharing them is safe)."""
        return BagSet(self._bags)
