"""Multiple-instance data model: instances, bags and bag sets.

* :mod:`repro.bags.bag` — the :class:`~repro.bags.bag.Instance`,
  :class:`~repro.bags.bag.Bag` and :class:`~repro.bags.bag.BagSet` value
  types shared by the learner, the database and the evaluation harness.
* :mod:`repro.bags.generation` — the image-to-bag pipeline of Section 3.5.
"""

from repro.bags.bag import Bag, BagSet, Instance
from repro.bags.generation import BagGenerator

__all__ = ["Bag", "BagSet", "Instance", "BagGenerator"]
