"""Image-to-bag generation (Section 3.5).

:class:`BagGenerator` applies the feature pipeline to an image and wraps the
result as a :class:`~repro.bags.bag.Bag`.  Labels are supplied at query time
(the same image bag serves as positive in one query and negative in another),
so generation produces *unlabelled* payloads that are labelled via
:meth:`BagGenerator.bag_for`.
"""

from __future__ import annotations

from repro.bags.bag import Bag
from repro.errors import BagError, FeatureError
from repro.imaging.features import FeatureConfig, FeatureExtractor, FeatureSet
from repro.imaging.image import GrayImage


class BagGenerator:
    """Turns images into bags using a fixed feature configuration.

    The generator memoises nothing itself — caching of per-image feature sets
    belongs to the database layer, which owns image identity.
    """

    def __init__(self, config: FeatureConfig | None = None):
        self._extractor = FeatureExtractor(config)

    @property
    def config(self) -> FeatureConfig:
        """The feature configuration in force."""
        return self._extractor.config

    def features_for(self, image: GrayImage) -> FeatureSet:
        """Extract the image's instances without labelling them.

        Raises:
            BagError: if the image yields no usable instances.
        """
        try:
            return self._extractor.extract(image)
        except FeatureError as exc:
            raise BagError(
                f"image {image.image_id or '<unnamed>'} produced no bag: {exc}"
            ) from exc

    def bag_for(self, image: GrayImage, label: bool) -> Bag:
        """Extract features and wrap them as a labelled bag."""
        features = self.features_for(image)
        return self.bag_from_features(features, label, bag_id=image.image_id)

    @staticmethod
    def bag_from_features(features: FeatureSet, label: bool, bag_id: str = "") -> Bag:
        """Wrap a pre-extracted :class:`FeatureSet` as a labelled bag."""
        return Bag(
            instances=features.vectors,
            label=label,
            bag_id=bag_id,
            sources=tuple(source.describe() for source in features.sources),
        )
