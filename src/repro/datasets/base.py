"""Procedural drawing toolkit for the synthetic datasets.

A :class:`Canvas` is a float RGB image in ``[0, 1]`` with drawing primitives
that take *fractional* coordinates (0 = top/left edge, 1 = bottom/right), so
renderers are independent of pixel resolution.  All randomness flows through
the caller's ``numpy`` generator, keeping every rendered image reproducible
from ``(category, index, seed)``.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import DatasetError

Color = tuple[float, float, float]


def _clip01(value: np.ndarray) -> np.ndarray:
    return np.clip(value, 0.0, 1.0)


class Canvas:
    """A float RGB drawing surface with fractional-coordinate primitives."""

    def __init__(self, rows: int, cols: int, background: Color = (0.5, 0.5, 0.5)):
        if rows < 8 or cols < 8:
            raise DatasetError(f"canvas must be at least 8x8, got ({rows}, {cols})")
        self._rgb = np.empty((rows, cols, 3), dtype=np.float64)
        self._rgb[:] = np.asarray(background, dtype=np.float64)
        rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        # Normalised pixel-centre coordinate grids, reused by every shape.
        self._row_frac = (rr + 0.5) / rows
        self._col_frac = (cc + 0.5) / cols

    @property
    def rows(self) -> int:
        """Pixel rows."""
        return self._rgb.shape[0]

    @property
    def cols(self) -> int:
        """Pixel columns."""
        return self._rgb.shape[1]

    @property
    def rgb(self) -> np.ndarray:
        """The current image as an ``(rows, cols, 3)`` float array in [0, 1]."""
        return _clip01(self._rgb)

    # ------------------------------------------------------------------ #
    # Painting helpers                                                    #
    # ------------------------------------------------------------------ #

    def _paint(self, mask: np.ndarray, color: Color, alpha: float) -> None:
        if alpha <= 0.0:
            return
        alpha = min(alpha, 1.0)
        target = np.asarray(color, dtype=np.float64)
        area = self._rgb[mask]
        self._rgb[mask] = (1.0 - alpha) * area + alpha * target

    def fill(self, color: Color) -> None:
        """Flood the whole canvas."""
        self._rgb[:] = np.asarray(color, dtype=np.float64)

    def vertical_gradient(
        self, top: Color, bottom: Color, row0: float = 0.0, row1: float = 1.0
    ) -> None:
        """Linear top-to-bottom blend over the fractional row band [row0, row1]."""
        if not 0.0 <= row0 < row1 <= 1.0:
            raise DatasetError(f"invalid gradient band [{row0}, {row1}]")
        r0 = int(row0 * self.rows)
        r1 = max(r0 + 1, int(row1 * self.rows))
        span = np.linspace(0.0, 1.0, r1 - r0)[:, None]
        top_c = np.asarray(top, dtype=np.float64)
        bottom_c = np.asarray(bottom, dtype=np.float64)
        self._rgb[r0:r1] = (1.0 - span[..., None]) * top_c + span[..., None] * bottom_c

    def rect(
        self,
        top: float,
        left: float,
        bottom: float,
        right: float,
        color: Color,
        alpha: float = 1.0,
    ) -> None:
        """Axis-aligned filled rectangle in fractional coordinates."""
        mask = (
            (self._row_frac >= top)
            & (self._row_frac < bottom)
            & (self._col_frac >= left)
            & (self._col_frac < right)
        )
        self._paint(mask, color, alpha)

    def ellipse(
        self,
        center_row: float,
        center_col: float,
        radius_row: float,
        radius_col: float,
        color: Color,
        alpha: float = 1.0,
    ) -> None:
        """Filled axis-aligned ellipse; radii are fractions of the canvas."""
        if radius_row <= 0 or radius_col <= 0:
            raise DatasetError("ellipse radii must be positive")
        mask = (
            ((self._row_frac - center_row) / radius_row) ** 2
            + ((self._col_frac - center_col) / radius_col) ** 2
        ) <= 1.0
        self._paint(mask, color, alpha)

    def disc(
        self, center_row: float, center_col: float, radius: float, color: Color,
        alpha: float = 1.0,
    ) -> None:
        """Filled circle (aspect-true on square canvases)."""
        self.ellipse(center_row, center_col, radius, radius, color, alpha)

    def triangle(
        self,
        p1: tuple[float, float],
        p2: tuple[float, float],
        p3: tuple[float, float],
        color: Color,
        alpha: float = 1.0,
    ) -> None:
        """Filled triangle; vertices as fractional ``(row, col)`` pairs."""

        def half_plane(a: tuple[float, float], b: tuple[float, float]) -> np.ndarray:
            return (b[1] - a[1]) * (self._row_frac - a[0]) - (b[0] - a[0]) * (
                self._col_frac - a[1]
            )

        d1, d2, d3 = half_plane(p1, p2), half_plane(p2, p3), half_plane(p3, p1)
        negative = (d1 < 0) | (d2 < 0) | (d3 < 0)
        positive = (d1 > 0) | (d2 > 0) | (d3 > 0)
        self._paint(~(negative & positive), color, alpha)

    def line(
        self,
        start: tuple[float, float],
        end: tuple[float, float],
        thickness: float,
        color: Color,
        alpha: float = 1.0,
    ) -> None:
        """Thick line segment; ``thickness`` is a fraction of the canvas."""
        if thickness <= 0:
            raise DatasetError("line thickness must be positive")
        dr = end[0] - start[0]
        dc = end[1] - start[1]
        length2 = dr * dr + dc * dc
        if length2 < 1e-12:
            self.disc(start[0], start[1], thickness / 2, color, alpha)
            return
        # Distance from each pixel centre to the segment.
        t = ((self._row_frac - start[0]) * dr + (self._col_frac - start[1]) * dc) / length2
        t = np.clip(t, 0.0, 1.0)
        proj_r = start[0] + t * dr
        proj_c = start[1] + t * dc
        dist2 = (self._row_frac - proj_r) ** 2 + (self._col_frac - proj_c) ** 2
        self._paint(dist2 <= (thickness / 2) ** 2, color, alpha)

    # ------------------------------------------------------------------ #
    # Texture and noise                                                   #
    # ------------------------------------------------------------------ #

    def add_noise(self, rng: np.random.Generator, sigma: float) -> None:
        """Add iid Gaussian pixel noise (same sample across channels)."""
        if sigma < 0:
            raise DatasetError("noise sigma must be non-negative")
        if sigma == 0:
            return
        noise = rng.normal(0.0, sigma, size=(self.rows, self.cols, 1))
        self._rgb = _clip01(self._rgb + noise)

    def add_value_texture(
        self,
        rng: np.random.Generator,
        cells: int,
        amplitude: float,
        row0: float = 0.0,
        row1: float = 1.0,
    ) -> None:
        """Low-frequency value noise (random coarse grid, bilinear upsampled).

        Gives organic brightness variation to scene backgrounds; confined to
        the fractional row band ``[row0, row1]``.
        """
        if cells < 2:
            raise DatasetError("texture needs at least 2 cells")
        r0 = int(row0 * self.rows)
        r1 = max(r0 + 1, int(row1 * self.rows))
        band = r1 - r0
        coarse = rng.normal(0.0, 1.0, size=(cells, cells))
        row_positions = np.linspace(0, cells - 1, band)
        col_positions = np.linspace(0, cells - 1, self.cols)
        ri = np.clip(row_positions.astype(int), 0, cells - 2)
        ci = np.clip(col_positions.astype(int), 0, cells - 2)
        rf = (row_positions - ri)[:, None]
        cf = (col_positions - ci)[None, :]
        patch = (
            coarse[np.ix_(ri, ci)] * (1 - rf) * (1 - cf)
            + coarse[np.ix_(ri + 1, ci)] * rf * (1 - cf)
            + coarse[np.ix_(ri, ci + 1)] * (1 - rf) * cf
            + coarse[np.ix_(ri + 1, ci + 1)] * rf * cf
        )
        self._rgb[r0:r1] = _clip01(self._rgb[r0:r1] + amplitude * patch[..., None])

    def smooth(self, iterations: int = 1) -> None:
        """Cheap 3x3 box blur, applied ``iterations`` times."""
        for _ in range(max(0, iterations)):
            padded = np.pad(self._rgb, ((1, 1), (1, 1), (0, 0)), mode="edge")
            acc = np.zeros_like(self._rgb)
            for dr in range(3):
                for dc in range(3):
                    acc += padded[dr : dr + self.rows, dc : dc + self.cols]
            self._rgb = acc / 9.0


def jitter(rng: np.random.Generator, center: float, spread: float) -> float:
    """Uniform jitter around ``center`` with half-width ``spread``."""
    return float(center + rng.uniform(-spread, spread))


def jitter_color(
    rng: np.random.Generator, base: Color, spread: float = 0.05
) -> Color:
    """Perturb a colour channel-wise, staying in [0, 1]."""
    return tuple(float(np.clip(c + rng.uniform(-spread, spread), 0.0, 1.0)) for c in base)  # type: ignore[return-value]


def category_rng(seed: int, category: str, index: int) -> np.random.Generator:
    """A generator keyed by (seed, category, index) — stable per image.

    Uses CRC32 rather than ``hash()`` so the stream does not depend on
    ``PYTHONHASHSEED`` and images are identical across interpreter runs.
    """
    digest = zlib.crc32(f"{category}:{index}".encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([seed, digest]))
