"""Database builders: populate an :class:`ImageDatabase` with synthetic data.

These mirror the paper's two test databases:

* :func:`build_scene_database` — 5 scene categories x 100 images by default
  (the COREL-derived natural-scene database);
* :func:`build_object_database` — 19 object categories x 12 images by
  default (the 228-image web object database).

:func:`quick_database` builds small versions for examples and tests.
"""

from __future__ import annotations

from repro.database.store import ImageDatabase
from repro.datasets.base import category_rng
from repro.datasets.objects import OBJECT_CATEGORIES, render_object
from repro.datasets.scenes import SCENE_CATEGORIES, render_scene
from repro.errors import DatasetError
from repro.imaging.features import FeatureConfig


def build_scene_database(
    images_per_category: int = 100,
    size: tuple[int, int] = (96, 96),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
    categories: tuple[str, ...] | None = None,
) -> ImageDatabase:
    """The synthetic natural-scene database (paper: 500 COREL images).

    Args:
        images_per_category: images rendered per category (paper: 100).
        size: pixel size of each image.
        seed: master seed; every image derives from
            ``(seed, category, index)``.
        feature_config: feature pipeline override.
        categories: subset of :data:`SCENE_CATEGORIES` to include.

    Image ids follow ``{category}-{index:04d}``.
    """
    chosen = categories or SCENE_CATEGORIES
    unknown = set(chosen) - set(SCENE_CATEGORIES)
    if unknown:
        raise DatasetError(f"unknown scene categories: {sorted(unknown)}")
    if images_per_category < 1:
        raise DatasetError(f"images_per_category must be >= 1, got {images_per_category}")
    database = ImageDatabase(feature_config=feature_config, name="synthetic-scenes")
    for category in chosen:
        for index in range(images_per_category):
            rng = category_rng(seed, category, index)
            pixels = render_scene(category, rng, size)
            database.add_image(pixels, category, image_id=f"{category}-{index:04d}")
    return database


def build_object_database(
    images_per_category: int = 12,
    size: tuple[int, int] = (96, 96),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
    categories: tuple[str, ...] | None = None,
) -> ImageDatabase:
    """The synthetic object database (paper: 228 images, 19 categories).

    Args: see :func:`build_scene_database`; 19 x 12 = 228 images by default.
    """
    chosen = categories or OBJECT_CATEGORIES
    unknown = set(chosen) - set(OBJECT_CATEGORIES)
    if unknown:
        raise DatasetError(f"unknown object categories: {sorted(unknown)}")
    if images_per_category < 1:
        raise DatasetError(f"images_per_category must be >= 1, got {images_per_category}")
    database = ImageDatabase(feature_config=feature_config, name="synthetic-objects")
    for category in chosen:
        for index in range(images_per_category):
            rng = category_rng(seed, category, index)
            pixels = render_object(category, rng, size)
            database.add_image(pixels, category, image_id=f"{category}-{index:04d}")
    return database


def quick_database(
    kind: str = "scenes",
    images_per_category: int = 12,
    size: tuple[int, int] = (64, 64),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
) -> ImageDatabase:
    """A small database for examples, docs and fast tests.

    Args:
        kind: ``"scenes"`` or ``"objects"``.
        images_per_category: kept small by default.
        size: reduced image size for speed.
        seed: master seed.
        feature_config: feature pipeline override.

    Raises:
        DatasetError: for an unknown ``kind``.
    """
    if kind == "scenes":
        return build_scene_database(
            images_per_category, size, seed, feature_config=feature_config
        )
    if kind == "objects":
        return build_object_database(
            images_per_category, size, seed, feature_config=feature_config
        )
    raise DatasetError(f"unknown database kind {kind!r}; known: 'scenes', 'objects'")
