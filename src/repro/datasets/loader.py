"""Database builders: populate an :class:`ImageDatabase` with synthetic data.

These mirror the paper's two test databases:

* :func:`build_scene_database` — 5 scene categories x 100 images by default
  (the COREL-derived natural-scene database);
* :func:`build_object_database` — 19 object categories x 12 images by
  default (the 228-image web object database).

:func:`quick_database` builds small versions for examples and tests.

The builders are also registered under string names — ``scenes``,
``objects``, ``quick``, ``quick-scenes``, ``quick-objects`` — mirroring the
learner registry, so the CLI (``repro build-db --kind``) and the experiment
runner resolve datasets exactly the way they resolve learners:
:func:`make_dataset` validates parameters against the factory's signature
before calling it, and user code can :func:`register_dataset` its own.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.database.store import ImageDatabase
from repro.datasets.base import category_rng
from repro.datasets.objects import OBJECT_CATEGORIES, render_object
from repro.datasets.scenes import SCENE_CATEGORIES, render_scene
from repro.errors import DatasetError
from repro.imaging.features import FeatureConfig


def build_scene_database(
    images_per_category: int = 100,
    size: tuple[int, int] = (96, 96),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
    categories: tuple[str, ...] | None = None,
) -> ImageDatabase:
    """The synthetic natural-scene database (paper: 500 COREL images).

    Args:
        images_per_category: images rendered per category (paper: 100).
        size: pixel size of each image.
        seed: master seed; every image derives from
            ``(seed, category, index)``.
        feature_config: feature pipeline override.
        categories: subset of :data:`SCENE_CATEGORIES` to include.

    Image ids follow ``{category}-{index:04d}``.
    """
    chosen = categories or SCENE_CATEGORIES
    unknown = set(chosen) - set(SCENE_CATEGORIES)
    if unknown:
        raise DatasetError(f"unknown scene categories: {sorted(unknown)}")
    if images_per_category < 1:
        raise DatasetError(f"images_per_category must be >= 1, got {images_per_category}")
    database = ImageDatabase(feature_config=feature_config, name="synthetic-scenes")
    for category in chosen:
        for index in range(images_per_category):
            rng = category_rng(seed, category, index)
            pixels = render_scene(category, rng, size)
            database.add_image(pixels, category, image_id=f"{category}-{index:04d}")
    return database


def build_object_database(
    images_per_category: int = 12,
    size: tuple[int, int] = (96, 96),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
    categories: tuple[str, ...] | None = None,
) -> ImageDatabase:
    """The synthetic object database (paper: 228 images, 19 categories).

    Args: see :func:`build_scene_database`; 19 x 12 = 228 images by default.
    """
    chosen = categories or OBJECT_CATEGORIES
    unknown = set(chosen) - set(OBJECT_CATEGORIES)
    if unknown:
        raise DatasetError(f"unknown object categories: {sorted(unknown)}")
    if images_per_category < 1:
        raise DatasetError(f"images_per_category must be >= 1, got {images_per_category}")
    database = ImageDatabase(feature_config=feature_config, name="synthetic-objects")
    for category in chosen:
        for index in range(images_per_category):
            rng = category_rng(seed, category, index)
            pixels = render_object(category, rng, size)
            database.add_image(pixels, category, image_id=f"{category}-{index:04d}")
    return database


def quick_database(
    kind: str = "scenes",
    images_per_category: int = 12,
    size: tuple[int, int] = (64, 64),
    seed: int = 0,
    feature_config: FeatureConfig | None = None,
) -> ImageDatabase:
    """A small database for examples, docs and fast tests.

    Args:
        kind: ``"scenes"`` or ``"objects"``.
        images_per_category: kept small by default.
        size: reduced image size for speed.
        seed: master seed.
        feature_config: feature pipeline override.

    Raises:
        DatasetError: for an unknown ``kind``.
    """
    if kind == "scenes":
        return build_scene_database(
            images_per_category, size, seed, feature_config=feature_config
        )
    if kind == "objects":
        return build_object_database(
            images_per_category, size, seed, feature_config=feature_config
        )
    raise DatasetError(f"unknown database kind {kind!r}; known: 'scenes', 'objects'")


# ---------------------------------------------------------------------- #
# Dataset registry                                                        #
# ---------------------------------------------------------------------- #

_DATASETS: dict[str, Callable[..., ImageDatabase]] = {}


def register_dataset(
    name: str, factory: Callable[..., ImageDatabase], overwrite: bool = False
) -> None:
    """Register a database builder under a string name.

    Raises:
        DatasetError: empty name, non-callable factory, or a duplicate
            name without ``overwrite``.
    """
    if not name:
        raise DatasetError("dataset name must be a non-empty string")
    if not callable(factory):
        raise DatasetError(f"dataset factory for {name!r} must be callable")
    if name in _DATASETS and not overwrite:
        raise DatasetError(
            f"dataset {name!r} is already registered (pass overwrite=True)"
        )
    _DATASETS[name] = factory


def make_dataset(name: str, **params) -> ImageDatabase:
    """Build a registered dataset by name, validating parameters first.

    Mirrors the learner registry: parameters are bound against the
    factory's signature *before* the (potentially expensive) build starts,
    so a typoed knob fails fast with the factory's real parameter list.

    Raises:
        DatasetError: unknown name or parameters the factory does not take.
    """
    try:
        factory = _DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(available_datasets())}"
        ) from None
    try:
        inspect.signature(factory).bind(**params)
    except TypeError as exc:
        raise DatasetError(f"invalid parameters for dataset {name!r}: {exc}") from exc
    return factory(**params)


def available_datasets() -> tuple[str, ...]:
    """Names of every registered dataset builder (sorted)."""
    return tuple(sorted(_DATASETS))


register_dataset("scenes", build_scene_database)
register_dataset("objects", build_object_database)
register_dataset("quick", quick_database)
register_dataset(
    "quick-scenes",
    lambda images_per_category=12, size=(64, 64), seed=0, feature_config=None: (
        quick_database("scenes", images_per_category, size, seed, feature_config)
    ),
)
register_dataset(
    "quick-objects",
    lambda images_per_category=12, size=(64, 64), seed=0, feature_config=None: (
        quick_database("objects", images_per_category, size, seed, feature_config)
    ),
)
