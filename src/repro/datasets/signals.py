"""1-D demonstration signals for the Figure 3-1 correlation illustration.

Figure 3-1 shows three pairs of 1-D signals with correlation 1, ~0 and -1.
These generators produce such pairs deterministically from a seed, and are
also handy fixtures for correlation tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _base_signal(rng: np.random.Generator, n_samples: int) -> np.ndarray:
    """A smooth random signal: a few sinusoids with random phases."""
    t = np.linspace(0.0, 2.0 * np.pi, n_samples)
    signal = np.zeros(n_samples)
    for harmonic in (1, 2, 3):
        signal += rng.uniform(0.3, 1.0) * np.sin(harmonic * t + rng.uniform(0, 2 * np.pi))
    return signal


def perfectly_correlated_pair(
    seed: int = 0, n_samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Two signals with correlation exactly +1 (affine images of each other)."""
    if n_samples < 4:
        raise DatasetError("need at least 4 samples")
    rng = np.random.default_rng(seed)
    base = _base_signal(rng, n_samples)
    gain = rng.uniform(0.5, 2.0)
    offset = rng.uniform(-1.0, 1.0)
    return base, gain * base + offset


def uncorrelated_pair(
    seed: int = 0, n_samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Two independent signals; correlation near 0 for large ``n_samples``.

    Independence does not guarantee a tiny sample correlation, so the pair is
    deterministically decorrelated: the second signal has its projection onto
    the first removed, making the empirical correlation exactly 0.
    """
    if n_samples < 4:
        raise DatasetError("need at least 4 samples")
    rng = np.random.default_rng(seed)
    first = _base_signal(rng, n_samples)
    second = rng.normal(0.0, 1.0, n_samples)
    first_centered = first - first.mean()
    second_centered = second - second.mean()
    projection = (second_centered @ first_centered) / (first_centered @ first_centered)
    second_orthogonal = second_centered - projection * first_centered
    return first, second_orthogonal + second.mean()


def inversely_correlated_pair(
    seed: int = 0, n_samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Two signals with correlation exactly -1."""
    first, second = perfectly_correlated_pair(seed, n_samples)
    return first, -second
