"""Synthetic image datasets substituting for the paper's test data.

The thesis evaluates on 500 COREL natural-scene photographs and 228 object
images scraped from retailer websites in 1998; neither is available.  These
modules generate seeded procedural substitutes with the properties the
paper's analysis relies on (see DESIGN.md, "Substitutions"):

* :mod:`repro.datasets.scenes` — five natural-scene categories with
  region-local discriminative structure and noisy, varied backgrounds.
* :mod:`repro.datasets.objects` — nineteen object categories on
  near-uniform backgrounds with low intra-class variation.
* :mod:`repro.datasets.signals` — 1-D demonstration signals (Figure 3-1).
* :mod:`repro.datasets.loader` — builders that populate
  :class:`~repro.database.store.ImageDatabase` instances, plus the string
  -name dataset registry the CLI resolves through.
* :mod:`repro.datasets.synth` — the streamed procedural corpus generator
  (scenario presets, sharded checksummed store, resumable generation).
"""

from repro.datasets.loader import (
    available_datasets,
    build_object_database,
    build_scene_database,
    make_dataset,
    quick_database,
    register_dataset,
)
from repro.datasets.objects import OBJECT_CATEGORIES, render_object
from repro.datasets.scenes import SCENE_CATEGORIES, paint_scene, render_scene

__all__ = [
    "build_scene_database",
    "build_object_database",
    "quick_database",
    "register_dataset",
    "make_dataset",
    "available_datasets",
    "SCENE_CATEGORIES",
    "paint_scene",
    "render_scene",
    "OBJECT_CATEGORIES",
    "render_object",
]
