"""Synthetic object-image renderers (the web-catalog substitute).

Nineteen categories mirroring the paper's 228-image object database (cars,
airplanes, pants, hammers, cameras, ... scraped from retailer sites).  As the
paper observes of its object images, these have *near-uniform backgrounds*
and *little variation among objects* — each renderer draws a canonical
geometric composition with small jitter in position, scale and shade.  That
is exactly the regime in which the paper found the identical-weights scheme
competitive.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Canvas, Color, jitter, jitter_color
from repro.errors import DatasetError

#: The 19 object categories (paper names the first five; the rest fill the
#: same retail-catalog niche).
OBJECT_CATEGORIES: tuple[str, ...] = (
    "car",
    "airplane",
    "pants",
    "hammer",
    "camera",
    "bicycle",
    "shirt",
    "shoe",
    "watch",
    "television",
    "telephone",
    "chair",
    "table",
    "lamp",
    "cup",
    "bottle",
    "guitar",
    "clock",
    "glasses",
)

_BACKGROUND: Color = (0.92, 0.92, 0.90)
_OBJECT_NOISE_SIGMA = 0.008


def _body_color(rng: np.random.Generator, base: Color = (0.25, 0.28, 0.35)) -> Color:
    return jitter_color(rng, base, 0.08)


def _render_car(c: Canvas, rng: np.random.Generator) -> None:
    body = _body_color(rng, (0.55, 0.15, 0.15))
    cy = jitter(rng, 0.58, 0.04)
    left = jitter(rng, 0.15, 0.04)
    right = 1.0 - left
    c.rect(cy, left, cy + 0.16, right, body)
    # Cabin.
    c.rect(cy - 0.14, left + 0.18, cy, right - 0.18, jitter_color(rng, (0.65, 0.30, 0.30), 0.05))
    c.rect(cy - 0.11, left + 0.22, cy - 0.02, right - 0.22, (0.75, 0.85, 0.92))  # windows
    # Wheels.
    wheel_r = jitter(rng, 0.07, 0.012)
    c.disc(cy + 0.17, left + 0.16, wheel_r, (0.08, 0.08, 0.08))
    c.disc(cy + 0.17, right - 0.16, wheel_r, (0.08, 0.08, 0.08))
    c.disc(cy + 0.17, left + 0.16, wheel_r * 0.45, (0.6, 0.6, 0.6))
    c.disc(cy + 0.17, right - 0.16, wheel_r * 0.45, (0.6, 0.6, 0.6))


def _render_airplane(c: Canvas, rng: np.random.Generator) -> None:
    hull = _body_color(rng, (0.75, 0.78, 0.82))
    cy = jitter(rng, 0.5, 0.04)
    c.ellipse(cy, 0.5, 0.06, jitter(rng, 0.38, 0.04), hull)
    # Swept wings.
    c.triangle((cy, 0.42), (cy + jitter(rng, 0.22, 0.03), 0.30), (cy, 0.58), hull)
    c.triangle((cy, 0.42), (cy - jitter(rng, 0.22, 0.03), 0.30), (cy, 0.58), hull)
    # Tail fin.
    c.triangle((cy - 0.14, 0.84), (cy, 0.78), (cy, 0.9), hull)
    # Cockpit windows.
    c.ellipse(cy - 0.01, 0.18, 0.02, 0.03, (0.2, 0.3, 0.45))


def _render_pants(c: Canvas, rng: np.random.Generator) -> None:
    cloth = _body_color(rng, (0.20, 0.25, 0.45))
    top = jitter(rng, 0.18, 0.03)
    waist_l = jitter(rng, 0.3, 0.02)
    waist_r = 1.0 - waist_l
    hem = jitter(rng, 0.85, 0.03)
    c.rect(top, waist_l, top + 0.16, waist_r, cloth)  # hips
    leg_w = jitter(rng, 0.14, 0.02)
    c.rect(top + 0.1, waist_l, hem, waist_l + leg_w, cloth)  # left leg
    c.rect(top + 0.1, waist_r - leg_w, hem, waist_r, cloth)  # right leg
    c.rect(top, waist_l, top + 0.035, waist_r, jitter_color(rng, (0.15, 0.18, 0.35), 0.04))


def _render_hammer(c: Canvas, rng: np.random.Generator) -> None:
    handle = jitter_color(rng, (0.55, 0.40, 0.22), 0.05)
    head = jitter_color(rng, (0.35, 0.35, 0.38), 0.05)
    cx = jitter(rng, 0.5, 0.04)
    c.rect(0.28, cx - 0.035, jitter(rng, 0.85, 0.03), cx + 0.035, handle)
    c.rect(jitter(rng, 0.16, 0.02), cx - 0.2, 0.3, cx + 0.2, head)
    c.rect(0.18, cx - 0.2, 0.28, cx - 0.12, head)  # claw hint


def _render_camera(c: Canvas, rng: np.random.Generator) -> None:
    body = _body_color(rng, (0.15, 0.15, 0.18))
    top = jitter(rng, 0.32, 0.03)
    c.rect(top, 0.2, top + 0.38, 0.8, body)
    c.rect(top - 0.06, 0.42, top, 0.58, body)  # prism hump
    c.disc(top + 0.19, 0.5, jitter(rng, 0.12, 0.015), (0.3, 0.3, 0.34))  # lens barrel
    c.disc(top + 0.19, 0.5, 0.07, (0.55, 0.6, 0.7))  # glass
    c.rect(top + 0.02, 0.68, top + 0.07, 0.76, (0.8, 0.2, 0.2))  # badge


def _render_bicycle(c: Canvas, rng: np.random.Generator) -> None:
    frame = _body_color(rng, (0.15, 0.35, 0.2))
    wheel_r = jitter(rng, 0.16, 0.015)
    cy = jitter(rng, 0.62, 0.03)
    left, right = 0.28, 0.72
    for cx in (left, right):
        c.disc(cy, cx, wheel_r, (0.1, 0.1, 0.1))
        c.disc(cy, cx, wheel_r - 0.025, _BACKGROUND)
    c.line((cy, left), (cy - 0.2, 0.45), 0.02, frame)
    c.line((cy - 0.2, 0.45), (cy, right), 0.02, frame)
    c.line((cy, left), (cy, right), 0.02, frame)
    c.line((cy - 0.2, 0.45), (cy - 0.26, 0.42), 0.02, frame)  # seat post
    c.line((cy - 0.05, right), (cy - 0.25, right), 0.02, frame)  # fork/bars


def _render_shirt(c: Canvas, rng: np.random.Generator) -> None:
    cloth = _body_color(rng, (0.3, 0.5, 0.6))
    top = jitter(rng, 0.2, 0.03)
    c.rect(top, 0.32, jitter(rng, 0.82, 0.03), 0.68, cloth)  # torso
    c.triangle((top, 0.32), (top + 0.3, 0.16), (top + 0.12, 0.36), cloth)  # left sleeve
    c.triangle((top, 0.68), (top + 0.3, 0.84), (top + 0.12, 0.64), cloth)  # right sleeve
    c.triangle((top, 0.44), (top + 0.08, 0.5), (top, 0.56), (0.9, 0.9, 0.9))  # collar


def _render_shoe(c: Canvas, rng: np.random.Generator) -> None:
    leather = _body_color(rng, (0.35, 0.2, 0.12))
    base = jitter(rng, 0.62, 0.03)
    c.rect(base, 0.18, base + 0.08, 0.82, (0.12, 0.1, 0.1))  # sole
    c.rect(base - 0.12, 0.18, base, 0.55, leather)  # heel body
    c.ellipse(base - 0.03, 0.66, 0.1, 0.18, leather)  # toe box
    c.line((base - 0.12, 0.3), (base - 0.04, 0.5), 0.012, (0.85, 0.85, 0.8))  # lace


def _render_watch(c: Canvas, rng: np.random.Generator) -> None:
    c.rect(0.12, 0.44, 0.88, 0.56, jitter_color(rng, (0.3, 0.25, 0.2), 0.05))  # band
    face_r = jitter(rng, 0.17, 0.015)
    c.disc(0.5, 0.5, face_r, (0.75, 0.75, 0.78))  # case
    c.disc(0.5, 0.5, face_r - 0.03, (0.95, 0.95, 0.92))  # dial
    c.line((0.5, 0.5), (0.5 - face_r * 0.55, 0.5), 0.012, (0.1, 0.1, 0.1))  # hour hand
    c.line((0.5, 0.5), (0.5, 0.5 + face_r * 0.7), 0.009, (0.1, 0.1, 0.1))  # minute hand


def _render_television(c: Canvas, rng: np.random.Generator) -> None:
    shell = _body_color(rng, (0.2, 0.2, 0.22))
    top = jitter(rng, 0.22, 0.03)
    c.rect(top, 0.15, top + 0.5, 0.85, shell)
    c.rect(top + 0.05, 0.2, top + 0.45, 0.72, jitter_color(rng, (0.4, 0.5, 0.65), 0.06))
    c.disc(top + 0.12, 0.79, 0.02, (0.7, 0.7, 0.7))  # knobs
    c.disc(top + 0.2, 0.79, 0.02, (0.7, 0.7, 0.7))
    c.rect(top + 0.5, 0.3, top + 0.56, 0.36, shell)  # feet
    c.rect(top + 0.5, 0.64, top + 0.56, 0.7, shell)


def _render_telephone(c: Canvas, rng: np.random.Generator) -> None:
    body = _body_color(rng, (0.6, 0.2, 0.2))
    top = jitter(rng, 0.4, 0.03)
    c.rect(top, 0.25, top + 0.3, 0.75, body)  # base
    c.ellipse(top - 0.08, 0.5, 0.07, 0.28, body)  # handset
    c.disc(top - 0.08, 0.26, 0.06, body)
    c.disc(top - 0.08, 0.74, 0.06, body)
    c.disc(top + 0.15, 0.5, 0.09, (0.9, 0.9, 0.88))  # dial
    c.disc(top + 0.15, 0.5, 0.03, body)


def _render_chair(c: Canvas, rng: np.random.Generator) -> None:
    wood = _body_color(rng, (0.5, 0.33, 0.18))
    seat = jitter(rng, 0.55, 0.03)
    c.rect(seat, 0.28, seat + 0.05, 0.72, wood)  # seat
    c.rect(jitter(rng, 0.18, 0.02), 0.28, seat, 0.34, wood)  # back
    c.rect(seat, 0.28, 0.88, 0.33, wood)  # front-left leg
    c.rect(seat, 0.67, 0.88, 0.72, wood)  # front-right leg


def _render_table(c: Canvas, rng: np.random.Generator) -> None:
    wood = _body_color(rng, (0.45, 0.3, 0.16))
    top = jitter(rng, 0.42, 0.03)
    c.rect(top, 0.12, top + 0.06, 0.88, wood)  # top slab
    c.rect(top + 0.06, 0.16, 0.85, 0.22, wood)  # left leg
    c.rect(top + 0.06, 0.78, 0.85, 0.84, wood)  # right leg


def _render_lamp(c: Canvas, rng: np.random.Generator) -> None:
    cx = jitter(rng, 0.5, 0.04)
    shade = jitter_color(rng, (0.85, 0.75, 0.5), 0.05)
    c.triangle((0.18, cx), (0.42, cx - 0.22), (0.42, cx + 0.22), shade)
    c.rect(0.42, cx - 0.02, 0.78, cx + 0.02, (0.25, 0.25, 0.28))  # pole
    c.ellipse(0.8, cx, 0.04, 0.16, (0.25, 0.25, 0.28))  # foot


def _render_cup(c: Canvas, rng: np.random.Generator) -> None:
    glaze = _body_color(rng, (0.7, 0.45, 0.3))
    top = jitter(rng, 0.35, 0.03)
    c.rect(top, 0.36, jitter(rng, 0.72, 0.02), 0.62, glaze)
    c.ellipse(top, 0.49, 0.025, 0.13, (0.3, 0.2, 0.15))  # rim shadow
    # Handle: ring minus interior.
    c.disc((top + 0.72) / 2, 0.67, 0.09, glaze)
    c.disc((top + 0.72) / 2, 0.67, 0.05, _BACKGROUND)


def _render_bottle(c: Canvas, rng: np.random.Generator) -> None:
    glass = _body_color(rng, (0.2, 0.45, 0.3))
    cx = jitter(rng, 0.5, 0.04)
    c.rect(jitter(rng, 0.38, 0.02), cx - 0.1, 0.85, cx + 0.1, glass)  # body
    c.rect(0.2, cx - 0.035, 0.42, cx + 0.035, glass)  # neck
    c.rect(0.16, cx - 0.045, 0.2, cx + 0.045, (0.7, 0.65, 0.3))  # cap
    c.rect(0.55, cx - 0.08, 0.72, cx + 0.08, (0.92, 0.9, 0.85))  # label


def _render_guitar(c: Canvas, rng: np.random.Generator) -> None:
    wood = _body_color(rng, (0.6, 0.4, 0.2))
    cx = jitter(rng, 0.5, 0.03)
    c.disc(0.66, cx, jitter(rng, 0.16, 0.015), wood)  # lower bout
    c.disc(0.48, cx, jitter(rng, 0.12, 0.012), wood)  # upper bout
    c.disc(0.58, cx, 0.045, (0.1, 0.08, 0.06))  # sound hole
    c.rect(0.1, cx - 0.025, 0.42, cx + 0.025, (0.3, 0.2, 0.12))  # neck
    c.rect(0.06, cx - 0.04, 0.12, cx + 0.04, (0.2, 0.14, 0.1))  # headstock


def _render_clock(c: Canvas, rng: np.random.Generator) -> None:
    rim = _body_color(rng, (0.25, 0.25, 0.3))
    radius = jitter(rng, 0.3, 0.02)
    c.disc(0.5, 0.5, radius, rim)
    c.disc(0.5, 0.5, radius - 0.04, (0.95, 0.94, 0.9))
    for angle in range(0, 360, 30):  # hour ticks
        rad = np.deg2rad(angle)
        r1, r2 = radius - 0.09, radius - 0.055
        c.line(
            (0.5 + r1 * np.sin(rad), 0.5 + r1 * np.cos(rad)),
            (0.5 + r2 * np.sin(rad), 0.5 + r2 * np.cos(rad)),
            0.01,
            (0.2, 0.2, 0.2),
        )
    hour = rng.uniform(0, 2 * np.pi)
    c.line((0.5, 0.5), (0.5 + 0.13 * np.sin(hour), 0.5 + 0.13 * np.cos(hour)), 0.015, (0.1, 0.1, 0.1))
    minute = rng.uniform(0, 2 * np.pi)
    c.line((0.5, 0.5), (0.5 + 0.2 * np.sin(minute), 0.5 + 0.2 * np.cos(minute)), 0.01, (0.1, 0.1, 0.1))


def _render_glasses(c: Canvas, rng: np.random.Generator) -> None:
    frame = _body_color(rng, (0.15, 0.15, 0.18))
    cy = jitter(rng, 0.5, 0.03)
    lens_r = jitter(rng, 0.13, 0.012)
    for cx in (0.32, 0.68):
        c.disc(cy, cx, lens_r, frame)
        c.disc(cy, cx, lens_r - 0.025, jitter_color(rng, (0.75, 0.82, 0.85), 0.04))
    c.line((cy - 0.02, 0.32 + lens_r), (cy - 0.02, 0.68 - lens_r), 0.018, frame)  # bridge
    c.line((cy, 0.32 - lens_r), (cy - 0.06, 0.08), 0.015, frame)  # temples
    c.line((cy, 0.68 + lens_r), (cy - 0.06, 0.92), 0.015, frame)


_RENDERERS = {
    "car": _render_car,
    "airplane": _render_airplane,
    "pants": _render_pants,
    "hammer": _render_hammer,
    "camera": _render_camera,
    "bicycle": _render_bicycle,
    "shirt": _render_shirt,
    "shoe": _render_shoe,
    "watch": _render_watch,
    "television": _render_television,
    "telephone": _render_telephone,
    "chair": _render_chair,
    "table": _render_table,
    "lamp": _render_lamp,
    "cup": _render_cup,
    "bottle": _render_bottle,
    "guitar": _render_guitar,
    "clock": _render_clock,
    "glasses": _render_glasses,
}


def render_object(
    category: str,
    rng: np.random.Generator,
    size: tuple[int, int] = (96, 96),
) -> np.ndarray:
    """Render one object image.

    Args:
        category: one of :data:`OBJECT_CATEGORIES`.
        rng: the per-image generator.
        size: ``(rows, cols)`` canvas size.

    Returns:
        ``(rows, cols, 3)`` float RGB array in [0, 1].

    Raises:
        DatasetError: for an unknown category.
    """
    try:
        renderer = _RENDERERS[category]
    except KeyError:
        known = ", ".join(OBJECT_CATEGORIES)
        raise DatasetError(f"unknown object category {category!r}; known: {known}") from None
    background = jitter_color(rng, _BACKGROUND, 0.03)
    canvas = Canvas(size[0], size[1], background=background)
    renderer(canvas, rng)
    canvas.smooth(iterations=1)
    canvas.add_noise(rng, _OBJECT_NOISE_SIGMA)
    return canvas.rgb
