"""Deterministic bag generation for the procedural corpus.

Every bag is a pure function of ``(config, category, index)``: the per-bag
generator comes from :func:`repro.datasets.base.category_rng` keyed on the
config's seed and a ``synth:``-prefixed stream name, so any slice of a
corpus can be produced without generating its prefix — the property the
sharded store's resumability and the chunking-invariance tests rely on.

Image mode builds on the :mod:`repro.datasets.scenes` painters, extended
with the scenario knobs: scaled-down category *motifs* (the ``tiny-target``
regime and the distractor-object injection), random clutter shapes, extra
value texture, and deterministic label flipping.  Feature mode draws bags
directly around well-separated per-category centres — the clustered layout
the sharded rank index exists for — with the same clutter/distractor/label
semantics mapped into feature space.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import numpy as np

from repro.datasets.base import Canvas, category_rng, jitter, jitter_color
from repro.datasets.scenes import paint_scene
from repro.datasets.synth.config import FEATURE_CENTER_SCALE, ScenarioConfig
from repro.errors import DatasetError, FeatureError

#: Uniform background-clutter instances are drawn from this box (feature
#: mode); 1.5x the centre scale, so clutter genuinely spans the space the
#: category centres occupy.
_BACKGROUND_BOX = FEATURE_CENTER_SCALE * 1.5

#: Clutter level 1.0 paints this many random shapes (image mode).
_MAX_CLUTTER_SHAPES = 6


@dataclass(frozen=True)
class SynthBag:
    """One generated bag.

    Attributes:
        bag_id: ``{true_category}-{index:07d}`` — stable across label noise.
        category: the *recorded* label (flipped under label noise).
        true_category: the category whose structure the bag contains.
        instances: ``(n_instances, n_dims)`` float64 feature matrix.
    """

    bag_id: str
    category: str
    true_category: str
    instances: np.ndarray


def bag_rng(config: ScenarioConfig, category: str, index: int) -> np.random.Generator:
    """The per-bag generator — stable in ``(seed, category, index)`` alone.

    The ``synth:`` prefix keeps the stream disjoint from the plain database
    builders', so a scenario corpus never accidentally reproduces
    ``build_scene_database`` images.
    """
    return category_rng(config.seed, f"synth:{category}", index)


# ---------------------------------------------------------------------- #
# Feature mode                                                            #
# ---------------------------------------------------------------------- #


@lru_cache(maxsize=8192)
def _center_cached(seed: int, category: str, dims: int) -> np.ndarray:
    rng = category_rng(seed, f"synth-center:{category}", 0)
    center = rng.normal(scale=FEATURE_CENTER_SCALE, size=dims)
    center.setflags(write=False)
    return center

def feature_center(config: ScenarioConfig, category: str) -> np.ndarray:
    """The feature-space centre of a category (feature mode)."""
    return _center_cached(config.seed, category, config.feature_dims).copy()


def _feature_bag(
    config: ScenarioConfig, category: str, rng: np.random.Generator
) -> np.ndarray:
    n = config.instances_per_bag
    dims = config.feature_dims
    center = _center_cached(config.seed, category, dims)
    rows = center + rng.normal(scale=config.cluster_spread, size=(n, dims))
    others = [name for name in config.categories if name != category]
    # Distractor objects: trailing instances jump to other categories'
    # centres (an image containing other objects).
    n_distractors = min(config.objects_per_image - 1, n - 1) if others else 0
    for slot in range(n_distractors):
        other = others[int(rng.integers(len(others)))]
        rows[n - 1 - slot] = _center_cached(
            config.seed, other, dims
        ) + rng.normal(scale=config.cluster_spread, size=dims)
    # Background clutter: that fraction of the remaining instances becomes
    # a uniform draw over the whole feature box.  This inflates the bag's
    # envelope — clutter is *supposed* to degrade bound pruning.
    if config.clutter > 0 and n > 1 + n_distractors:
        replace = rng.random(n) < config.clutter
        replace[0] = False  # the target instance always survives
        if n_distractors:
            replace[n - n_distractors :] = False
        n_replace = int(replace.sum())
        if n_replace:
            rows[replace] = rng.uniform(
                -_BACKGROUND_BOX, _BACKGROUND_BOX, size=(n_replace, dims)
            )
    return rows


# ---------------------------------------------------------------------- #
# Image mode                                                              #
# ---------------------------------------------------------------------- #


def _motif_waterfall(canvas, rng, row, col, scale, cj) -> None:
    width = 0.05 * scale
    height = 0.45 * scale
    bottom = min(1.0, row + height)
    white = jitter_color(rng, (0.90, 0.92, 0.95), cj)
    canvas.rect(row, col - 2 * width, bottom, col + 2 * width,
                jitter_color(rng, (0.30, 0.24, 0.20), cj))
    canvas.rect(row, col - width, bottom, col + width, white)
    canvas.line((row, col), (bottom, col), max(0.008, 0.012 * scale),
                (1.0, 1.0, 1.0), alpha=0.5)


def _motif_mountain(canvas, rng, row, col, scale, cj) -> None:
    half = 0.22 * scale
    base = min(1.0, row + 0.4 * scale)
    rock = jitter_color(rng, (0.28, 0.26, 0.28), cj)
    canvas.triangle((row, col), (base, col - half), (base, col + half), rock)
    drop = 0.3
    canvas.triangle(
        (row, col),
        (row + drop * (base - row), col - drop * half),
        (row + drop * (base - row), col + drop * half),
        jitter_color(rng, (0.94, 0.95, 0.97), min(cj, 0.04)),
    )


def _motif_field(canvas, rng, row, col, scale, cj) -> None:
    half_w = 0.3 * scale
    half_h = 0.15 * scale
    green = jitter_color(rng, (0.45, 0.58, 0.25), cj)
    canvas.rect(row - half_h, col - half_w, row + half_h, col + half_w, green)
    furrow = jitter_color(rng, (0.35, 0.45, 0.20), cj)
    canvas.rect(row, col - half_w, min(1.0, row + 0.02 * scale + 0.008),
                col + half_w, furrow, alpha=0.7)


def _motif_lake_river(canvas, rng, row, col, scale, cj) -> None:
    half_w = 0.3 * scale
    half_h = 0.12 * scale
    water = jitter_color(rng, (0.50, 0.66, 0.82), cj)
    canvas.rect(row - half_h, col - half_w, row + half_h, col + half_w, water)
    bright = jitter_color(rng, (0.80, 0.88, 0.95), cj)
    canvas.rect(row, col - half_w, min(1.0, row + 0.015 * scale + 0.006),
                col + half_w, bright, alpha=0.65)


def _motif_sunset(canvas, rng, row, col, scale, cj) -> None:
    radius = max(0.03, 0.09 * scale)
    canvas.disc(row, col, radius * 2.0, (1.0, 0.75, 0.45), alpha=0.35)
    canvas.disc(row, col, radius, jitter_color(rng, (1.0, 0.92, 0.70), cj))
    dark = jitter_color(rng, (0.10, 0.08, 0.10), min(cj, 0.04))
    canvas.rect(min(1.0 - 0.02, row + radius), col - radius * 2.2,
                min(1.0, row + radius * 2.5), col + radius * 2.2, dark, alpha=0.8)


#: Scaled-down category cues, used for tiny targets and distractor objects.
_MOTIFS = {
    "waterfall": _motif_waterfall,
    "mountain": _motif_mountain,
    "field": _motif_field,
    "lake_river": _motif_lake_river,
    "sunset": _motif_sunset,
}


def _paint_backdrop(canvas: Canvas, rng: np.random.Generator, cj: float) -> None:
    """A category-neutral sky/ground backdrop for tiny-target images."""
    horizon = jitter(rng, 0.55, 0.1)
    top = jitter_color(rng, (0.50, 0.62, 0.78), cj)
    low = jitter_color(rng, (0.70, 0.76, 0.82), cj)
    canvas.vertical_gradient(top, low, 0.0, horizon)
    ground = jitter_color(rng, (0.42, 0.44, 0.36), cj)
    canvas.rect(horizon, 0.0, 1.0, 1.0, ground)


def _paint_clutter(canvas: Canvas, rng: np.random.Generator, clutter: float,
                   cj: float) -> None:
    """Random non-category shapes; count scales with the clutter knob."""
    n_shapes = int(round(clutter * _MAX_CLUTTER_SHAPES))
    for _ in range(n_shapes):
        row = rng.uniform(0.1, 0.9)
        col = rng.uniform(0.1, 0.9)
        color = jitter_color(
            rng, (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)), cj
        )
        kind = int(rng.integers(3))
        if kind == 0:
            half = rng.uniform(0.03, 0.10)
            canvas.rect(row - half, col - half, row + half, col + half,
                        color, alpha=0.85)
        elif kind == 1:
            canvas.disc(row, col, rng.uniform(0.03, 0.09), color, alpha=0.85)
        else:
            half = rng.uniform(0.04, 0.11)
            canvas.triangle((row - half, col), (row + half, col - half),
                            (row + half, col + half), color, alpha=0.85)


def render_scenario_image(
    config: ScenarioConfig, category: str, rng: np.random.Generator
) -> np.ndarray:
    """Render one scenario image: scene (or tiny motif) + distractors + clutter.

    Returns:
        ``(image_size, image_size, 3)`` float RGB array in [0, 1].
    """
    canvas = Canvas(config.image_size, config.image_size)
    cj = config.color_jitter
    if config.target_scale >= 1.0:
        paint_scene(canvas, category, rng)
    else:
        # Tiny-target regime: the category cue shrinks to a motif on a
        # neutral backdrop, so only a small sub-region is discriminative.
        _paint_backdrop(canvas, rng, cj)
        _MOTIFS[category](
            canvas, rng, jitter(rng, 0.45, 0.25), jitter(rng, 0.5, 0.3),
            config.target_scale, cj,
        )
    others = [name for name in config.categories if name != category]
    if others:
        for _ in range(config.objects_per_image - 1):
            other = others[int(rng.integers(len(others)))]
            _MOTIFS[other](
                canvas, rng, jitter(rng, 0.5, 0.3), jitter(rng, 0.5, 0.35),
                0.45 * config.target_scale, cj,
            )
    if config.clutter > 0:
        _paint_clutter(canvas, rng, config.clutter, cj)
    if config.texture_amplitude > 0:
        canvas.add_value_texture(rng, cells=5, amplitude=config.texture_amplitude)
    canvas.smooth(iterations=1)
    canvas.add_noise(rng, config.noise_sigma)
    return canvas.rgb


# ---------------------------------------------------------------------- #
# Bag assembly                                                            #
# ---------------------------------------------------------------------- #


def _recorded_category(
    config: ScenarioConfig, category: str, rng: np.random.Generator
) -> str:
    """The label the corpus records — flipped under label noise.

    Drawn *after* the bag content, so the pixels/instances of a given
    ``(seed, category, index)`` are identical across label-noise settings.
    """
    if config.label_noise <= 0 or len(config.categories) < 2:
        return category
    if rng.random() >= config.label_noise:
        return category
    others = [name for name in config.categories if name != category]
    return others[int(rng.integers(len(others)))]


def generate_bag(
    config: ScenarioConfig,
    category: str,
    index: int,
    _extractor=None,
) -> SynthBag:
    """Generate one bag from ``(config, category, index)`` — no prefix needed.

    Args:
        config: the scenario.
        category: one of ``config.categories``.
        index: the bag's index within its category (>= 0).
        _extractor: a reusable :class:`~repro.imaging.features.FeatureExtractor`
            (image mode); built on the fly when omitted.

    Raises:
        DatasetError: unknown category, negative index, or an image whose
            every region fails feature extraction.
    """
    if category not in config.categories:
        raise DatasetError(
            f"category {category!r} is not part of this scenario "
            f"({', '.join(config.categories)})"
        )
    if index < 0:
        raise DatasetError(f"bag index must be >= 0, got {index}")
    rng = bag_rng(config, category, index)
    if config.mode == "feature":
        instances = _feature_bag(config, category, rng)
    else:
        from repro.imaging.features import FeatureExtractor
        from repro.imaging.image import GrayImage

        pixels = render_scenario_image(config, category, rng)
        extractor = _extractor or FeatureExtractor(config.feature_config())
        image = GrayImage.from_array(
            pixels, image_id=f"{category}-{index:07d}", category=category
        )
        try:
            instances = extractor.extract(image).vectors
        except FeatureError as exc:
            raise DatasetError(
                f"scenario {config.name!r} produced an unfeaturisable image "
                f"({category}, index {index}): {exc}"
            ) from exc
    return SynthBag(
        bag_id=f"{category}-{index:07d}",
        category=_recorded_category(config, category, rng),
        true_category=category,
        instances=instances,
    )


def iter_bags(
    config: ScenarioConfig, start: int = 0, stop: int | None = None
) -> Iterator[SynthBag]:
    """Yield a slice of the corpus in global (category-major) order.

    Memory use is one bag at a time; the slice never generates its prefix.
    """
    extractor = None
    if config.mode == "image":
        from repro.imaging.features import FeatureExtractor

        extractor = FeatureExtractor(config.feature_config())
    for _position, category, index in config.iter_specs(start, stop):
        yield generate_bag(config, category, index, _extractor=extractor)
