"""Corpus generation drivers: streamed-to-disk and direct in-memory.

:func:`generate_corpus` walks the corpus shard by shard, materialising at
most one shard of bags at a time, and writes through
:class:`~repro.datasets.synth.store.ShardedCorpusWriter` — so a million-bag
run holds ~``shard_size`` bags in RAM regardless of corpus size.  An
interrupted run leaves a valid partial manifest behind; re-running with the
same config *resumes*: every shard whose on-disk checksum still matches is
adopted without regeneration, and because bags are pure functions of
``(config, category, index)``, the resumed corpus is bit-identical to an
uninterrupted one.

:func:`corpus_from_config` is the one-pass in-memory reference build the
equivalence tests compare the streamed path against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.retrieval import PackedCorpus
from repro.datasets.synth.config import ScenarioConfig
from repro.datasets.synth.render import generate_bag, iter_bags
from repro.datasets.synth.store import (
    DEFAULT_SHARD_SIZE,
    MANIFEST_NAME,
    PARTIAL_MANIFEST_NAME,
    ShardedCorpusWriter,
    _load_manifest_file,
    file_sha256,
)
from repro.errors import DatasetError


@dataclass(frozen=True)
class GenerationReport:
    """What one :func:`generate_corpus` run did.

    Attributes:
        directory: the corpus directory.
        fingerprint: the config fingerprint stamped into the manifest.
        n_bags: total bags in the (now complete) corpus.
        n_instances: total instances.
        n_shards: total shards.
        n_shards_skipped: shards adopted from a previous interrupted run.
        elapsed_seconds: wall time of this run.
        bags_per_second: generation throughput over the bags actually
            generated this run (``inf``-free: 0.0 when everything was
            adopted).
    """

    directory: Path
    fingerprint: str
    n_bags: int
    n_instances: int
    n_shards: int
    n_shards_skipped: int
    elapsed_seconds: float
    bags_per_second: float


def _existing_entries(
    directory: Path, config: ScenarioConfig, shard_size: int, resume: bool
) -> list[dict]:
    """Prior shard entries eligible for adoption, with identity checks.

    A manifest (complete or partial) for a *different* fingerprint or shard
    size is never silently overwritten while resuming — that is someone
    else's corpus.
    """
    manifest_path = directory / MANIFEST_NAME
    partial_path = directory / PARTIAL_MANIFEST_NAME
    source = manifest_path if manifest_path.exists() else partial_path
    if not source.exists():
        return []
    if not resume:
        # A fresh run owns the directory: drop stale manifests up front so
        # an interrupted fresh run can never mix old and new shards.
        for stale in (manifest_path, partial_path):
            if stale.exists():
                stale.unlink()
        return []
    payload = _load_manifest_file(source)
    recorded = payload.get("fingerprint")
    if recorded != config.fingerprint:
        raise DatasetError(
            f"directory {directory} holds a corpus with fingerprint "
            f"{recorded!r}, not {config.fingerprint!r} — refusing to resume "
            f"a different scenario over it (use a fresh directory, or "
            f"resume=False to regenerate)"
        )
    if payload.get("shard_size") != shard_size:
        raise DatasetError(
            f"directory {directory} was sharded {payload.get('shard_size')} "
            f"bags/shard, not {shard_size} — shard size is part of the "
            f"layout and cannot change on resume"
        )
    return list(payload["shards"])


def generate_corpus(
    config: ScenarioConfig,
    directory: str | Path,
    *,
    shard_size: int = DEFAULT_SHARD_SIZE,
    resume: bool = True,
    progress: Callable[[int, int], None] | None = None,
) -> GenerationReport:
    """Generate (or resume generating) a corpus into a sharded directory.

    Args:
        config: the scenario; its fingerprint becomes the corpus identity.
        directory: target directory.
        shard_size: bags per shard (fixed for the corpus's lifetime).
        resume: adopt checksum-matching shards from a previous run; when
            ``False`` the directory's manifests are discarded and every
            shard is regenerated.
        progress: optional ``(shards_done, n_shards)`` callback after each
            shard.

    Returns:
        A :class:`GenerationReport`; the directory then opens cleanly with
        :class:`~repro.datasets.synth.store.ShardedCorpusReader`.

    Raises:
        DatasetError: resuming over a different corpus (fingerprint or
            shard-size mismatch), or any store failure.
    """
    directory = Path(directory)
    started_at = time.perf_counter()
    prior = _existing_entries(directory, config, shard_size, resume)
    writer = ShardedCorpusWriter(directory, config=config, shard_size=shard_size)
    total = config.total_bags
    n_shards = -(-total // shard_size)
    n_skipped = 0
    n_generated_bags = 0
    generation_seconds = 0.0
    for shard_index in range(n_shards):
        start = shard_index * shard_size
        stop = min(start + shard_size, total)
        entry = prior[shard_index] if shard_index < len(prior) else None
        if entry is not None:
            path = directory / str(entry["file"])
            if path.exists() and file_sha256(path) == entry["sha256"]:
                writer.adopt_shard(entry)
                n_skipped += 1
                if progress is not None:
                    progress(shard_index + 1, n_shards)
                continue
        shard_started = time.perf_counter()
        for bag in iter_bags(config, start, stop):
            writer.append(bag.bag_id, bag.category, bag.instances)
        generation_seconds += time.perf_counter() - shard_started
        n_generated_bags += stop - start
        if progress is not None:
            progress(shard_index + 1, n_shards)
    writer.finalize()
    elapsed = time.perf_counter() - started_at
    return GenerationReport(
        directory=directory,
        fingerprint=config.fingerprint,
        n_bags=total,
        n_instances=int(sum(entry["n_instances"] for entry in writer.entries)),
        n_shards=n_shards,
        n_shards_skipped=n_skipped,
        elapsed_seconds=elapsed,
        bags_per_second=(
            n_generated_bags / generation_seconds if generation_seconds > 0 else 0.0
        ),
    )


def corpus_from_config(config: ScenarioConfig) -> PackedCorpus:
    """The whole corpus as one in-memory :class:`PackedCorpus` (one pass).

    The reference the streamed path is tested against; also the fast road
    for benches that do not need the disk round-trip.  Materialises every
    instance — use :func:`generate_corpus` for corpora that should not fit
    in RAM twice.
    """
    ids: list[str] = []
    categories: list[str] = []
    matrices: list[np.ndarray] = []
    lengths: list[int] = []
    for bag in iter_bags(config):
        ids.append(bag.bag_id)
        categories.append(bag.category)
        matrices.append(bag.instances)
        lengths.append(bag.instances.shape[0])
    offsets = np.concatenate([[0], np.cumsum(np.asarray(lengths, dtype=np.int64))])
    return PackedCorpus(
        instances=np.vstack(matrices),
        offsets=offsets.astype(np.int64),
        image_ids=ids,
        categories=categories,
    )
