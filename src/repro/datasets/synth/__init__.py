"""Streamed procedural corpus generation at scale.

The subsystem that takes the repo past the paper's few-thousand-image
experiments: scenario-knobbed, schema-versioned configs
(:mod:`~repro.datasets.synth.config`), bags that are pure functions of
``(config, category, index)`` (:mod:`~repro.datasets.synth.render`), a
checksummed sharded on-disk store with resumable generation
(:mod:`~repro.datasets.synth.store`,
:mod:`~repro.datasets.synth.generate`), and CLI/serve integration
(``repro synth``, ``repro serve --corpus-dir``).

Quick start::

    from repro.datasets.synth import ScenarioConfig, generate_corpus, \\
        ShardedCorpusReader

    config = ScenarioConfig(mode="feature", bags_per_category=20_000,
                            categories=tuple(f"c{i}" for i in range(50)))
    generate_corpus(config, "corpus-dir", shard_size=4096)
    packed = ShardedCorpusReader("corpus-dir").packed()
"""

from repro.datasets.synth.config import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioConfig,
    available_presets,
    get_preset,
    register_preset,
)
from repro.datasets.synth.generate import (
    GenerationReport,
    corpus_from_config,
    generate_corpus,
)
from repro.datasets.synth.render import (
    SynthBag,
    bag_rng,
    feature_center,
    generate_bag,
    iter_bags,
    render_scenario_image,
)
from repro.datasets.synth.store import (
    DEFAULT_SHARD_SIZE,
    MANIFEST_NAME,
    PARTIAL_MANIFEST_NAME,
    STORE_VERSION,
    ShardedCorpusReader,
    ShardedCorpusWriter,
    load_packed_corpus,
    save_packed_corpus,
    shard_filename,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioConfig",
    "available_presets",
    "get_preset",
    "register_preset",
    "GenerationReport",
    "corpus_from_config",
    "generate_corpus",
    "SynthBag",
    "bag_rng",
    "feature_center",
    "generate_bag",
    "iter_bags",
    "render_scenario_image",
    "DEFAULT_SHARD_SIZE",
    "MANIFEST_NAME",
    "PARTIAL_MANIFEST_NAME",
    "STORE_VERSION",
    "ShardedCorpusReader",
    "ShardedCorpusWriter",
    "load_packed_corpus",
    "save_packed_corpus",
    "shard_filename",
]
