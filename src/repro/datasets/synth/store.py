"""The sharded on-disk corpus store: npz shards + a checksummed manifest.

Layout of a corpus directory::

    manifest.json            # STORE_VERSION, config + fingerprint, totals,
                             # per-shard {file, n_bags, n_instances, sha256}
    manifest.partial.json    # same shape, present only mid-generation
    shard-00000.npz          # instances/offsets/image_ids/categories arrays
    shard-00001.npz
    ...

Writes are streamed: :class:`ShardedCorpusWriter` holds at most one shard
of bags in memory (its ``max_buffered_bags``/``max_buffered_instances``
counters are the bounded-memory proxy the tests assert on), and the
partial manifest is rewritten atomically after every shard, which is what
makes generation resumable — a restart adopts every shard whose file
checksum still matches and regenerates the rest.

Reads are verified: :class:`ShardedCorpusReader` validates the manifest up
front and (by default) re-checksums every shard as it streams, raising
typed :class:`~repro.errors.DatasetError`\\ s for missing, truncated,
corrupted or mismatched data — a short corpus is never silently returned.
:meth:`ShardedCorpusReader.packed` preallocates the full arrays from the
manifest totals and fills them shard by shard, so building the
:class:`~repro.core.retrieval.PackedCorpus` for an N-bag corpus needs the
final arrays plus one shard, never 2x.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator
from zipfile import BadZipFile

import numpy as np

from repro.core.retrieval import PackedCorpus
from repro.datasets.synth.config import ScenarioConfig
from repro.errors import DatasetError

#: On-disk format version of the shard store.
STORE_VERSION = 1

MANIFEST_NAME = "manifest.json"
PARTIAL_MANIFEST_NAME = "manifest.partial.json"

#: Default bags per shard.
DEFAULT_SHARD_SIZE = 1024


def shard_filename(index: int) -> str:
    """The canonical shard file name for a shard index."""
    return f"shard-{index:05d}.npz"


def file_sha256(path: str | Path) -> str:
    """SHA-256 of a file's bytes (streamed; shards can be large)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via a temp file + rename, so a crash never half-writes."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _load_manifest_file(path: Path) -> dict:
    """Parse one manifest file with typed failures."""
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise DatasetError(f"cannot read corpus manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corpus manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DatasetError(f"corpus manifest {path} must be a JSON object")
    version = payload.get("version")
    if version != STORE_VERSION:
        raise DatasetError(
            f"corpus manifest {path} has store version {version!r}; "
            f"this build reads {STORE_VERSION}"
        )
    shards = payload.get("shards")
    if not isinstance(shards, list):
        raise DatasetError(f"corpus manifest {path} has no 'shards' list")
    for entry in shards:
        for field in ("file", "n_bags", "n_instances", "n_dims", "sha256"):
            if not isinstance(entry, dict) or field not in entry:
                raise DatasetError(
                    f"corpus manifest {path} has a shard entry missing {field!r}"
                )
    return payload


class ShardedCorpusWriter:
    """Streams bags into npz shards under a directory, bounded-memory.

    Args:
        directory: target directory (created if missing).
        config: the scenario the corpus realises; embedded (with its
            fingerprint) in the manifest.  ``None`` writes a config-less
            manifest (corpora packed from other sources).
        shard_size: bags per shard.

    Use :meth:`append` per bag (shards flush automatically), or
    :meth:`adopt_shard` to keep an already-on-disk shard during a resumed
    generation, then :meth:`finalize`.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        config: ScenarioConfig | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ) -> None:
        if shard_size < 1:
            raise DatasetError(f"shard_size must be >= 1, got {shard_size}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._config = config
        self._shard_size = int(shard_size)
        self._entries: list[dict] = []
        self._buffer: list[tuple[str, str, np.ndarray]] = []
        self._buffered_instances = 0
        self._finalized = False
        #: High-water marks — the bounded-memory proxy tests assert on.
        self.max_buffered_bags = 0
        self.max_buffered_instances = 0

    @property
    def directory(self) -> Path:
        """The corpus directory being written."""
        return self._directory

    @property
    def shard_size(self) -> int:
        """Bags per shard."""
        return self._shard_size

    @property
    def n_shards(self) -> int:
        """Shards recorded so far (written or adopted)."""
        return len(self._entries)

    @property
    def entries(self) -> tuple[dict, ...]:
        """Manifest entries of the shards recorded so far (copies)."""
        return tuple(dict(entry) for entry in self._entries)

    def _manifest_payload(self) -> dict:
        payload: dict = {
            "version": STORE_VERSION,
            "shard_size": self._shard_size,
            "shards": self._entries,
        }
        if self._config is not None:
            payload["config"] = self._config.to_dict()
            payload["fingerprint"] = self._config.fingerprint
        return payload

    def _write_partial(self) -> None:
        _write_json_atomic(
            self._directory / PARTIAL_MANIFEST_NAME, self._manifest_payload()
        )

    def append(self, bag_id: str, category: str, instances: np.ndarray) -> None:
        """Buffer one bag; flushes a shard when ``shard_size`` is reached."""
        if self._finalized:
            raise DatasetError("writer is finalized; no more bags accepted")
        matrix = np.ascontiguousarray(instances, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise DatasetError(
                f"bag {bag_id!r} instances must be a non-empty 2-D matrix, "
                f"got shape {matrix.shape}"
            )
        self._buffer.append((str(bag_id), str(category), matrix))
        self._buffered_instances += matrix.shape[0]
        self.max_buffered_bags = max(self.max_buffered_bags, len(self._buffer))
        self.max_buffered_instances = max(
            self.max_buffered_instances, self._buffered_instances
        )
        if len(self._buffer) >= self._shard_size:
            self._flush()

    def adopt_shard(self, entry: dict) -> None:
        """Record an existing on-disk shard without rewriting it (resume).

        Only legal on a shard boundary (generation fills shards exactly).
        """
        if self._buffer:
            raise DatasetError(
                "cannot adopt a shard while bags are buffered mid-shard"
            )
        self._entries.append(dict(entry))
        self._write_partial()

    def _flush(self) -> None:
        if not self._buffer:
            return
        index = len(self._entries)
        path = self._directory / shard_filename(index)
        lengths = np.array([m.shape[0] for _, _, m in self._buffer], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        instances = np.vstack([m for _, _, m in self._buffer])
        image_ids = np.array([i for i, _, _ in self._buffer])
        categories = np.array([c for _, c, _ in self._buffer])
        np.savez(
            path,
            instances=instances,
            offsets=offsets,
            image_ids=image_ids,
            categories=categories,
        )
        self._entries.append(
            {
                "file": path.name,
                "n_bags": int(lengths.size),
                "n_instances": int(instances.shape[0]),
                "n_dims": int(instances.shape[1]),
                "sha256": file_sha256(path),
            }
        )
        self._buffer.clear()
        self._buffered_instances = 0
        self._write_partial()

    def finalize(self) -> Path:
        """Flush the tail shard and write the final manifest.

        Returns the manifest path; the partial manifest is removed.
        """
        if self._finalized:
            return self._directory / MANIFEST_NAME
        self._flush()
        if not self._entries:
            raise DatasetError("refusing to finalize an empty corpus")
        dims = {entry["n_dims"] for entry in self._entries}
        if len(dims) != 1:
            raise DatasetError(
                f"shards disagree on instance dimensionality: {sorted(dims)}"
            )
        payload = self._manifest_payload()
        payload["n_shards"] = len(self._entries)
        payload["n_bags"] = int(sum(e["n_bags"] for e in self._entries))
        payload["n_instances"] = int(sum(e["n_instances"] for e in self._entries))
        payload["n_dims"] = int(dims.pop())
        manifest_path = self._directory / MANIFEST_NAME
        _write_json_atomic(manifest_path, payload)
        partial = self._directory / PARTIAL_MANIFEST_NAME
        if partial.exists():
            partial.unlink()
        self._finalized = True
        return manifest_path


class ShardedCorpusReader:
    """Opens a finalized corpus directory; validates before serving data.

    Raises:
        DatasetError: missing directory/manifest, unreadable or
            version-mismatched manifest, or (still-)incomplete generation.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        if not self._directory.is_dir():
            raise DatasetError(f"corpus directory {self._directory} does not exist")
        manifest_path = self._directory / MANIFEST_NAME
        if not manifest_path.exists():
            if (self._directory / PARTIAL_MANIFEST_NAME).exists():
                raise DatasetError(
                    f"corpus at {self._directory} is incomplete (generation "
                    f"was interrupted); re-run generation to resume it"
                )
            raise DatasetError(
                f"{self._directory} holds no corpus manifest ({MANIFEST_NAME})"
            )
        manifest = _load_manifest_file(manifest_path)
        for field in ("n_bags", "n_instances", "n_dims", "n_shards"):
            if field not in manifest:
                raise DatasetError(
                    f"corpus manifest {manifest_path} is missing {field!r} "
                    f"(incomplete finalize?)"
                )
        if manifest["n_shards"] != len(manifest["shards"]):
            raise DatasetError(
                f"corpus manifest {manifest_path} lists "
                f"{len(manifest['shards'])} shards but claims "
                f"{manifest['n_shards']}"
            )
        self._manifest = manifest
        config_payload = manifest.get("config")
        self._config = (
            None if config_payload is None else ScenarioConfig.from_dict(config_payload)
        )
        if self._config is not None:
            recorded = manifest.get("fingerprint")
            if recorded != self._config.fingerprint:
                raise DatasetError(
                    f"corpus manifest fingerprint {recorded!r} does not match "
                    f"its embedded config ({self._config.fingerprint}); "
                    f"the manifest was tampered with or corrupted"
                )

    @property
    def directory(self) -> Path:
        """The corpus directory."""
        return self._directory

    @property
    def manifest(self) -> dict:
        """The parsed manifest (do not mutate)."""
        return self._manifest

    @property
    def config(self) -> ScenarioConfig | None:
        """The scenario that generated the corpus, when recorded."""
        return self._config

    @property
    def fingerprint(self) -> str:
        """The config fingerprint (empty for config-less corpora)."""
        return str(self._manifest.get("fingerprint", ""))

    @property
    def n_bags(self) -> int:
        """Total bags across all shards."""
        return int(self._manifest["n_bags"])

    @property
    def n_instances(self) -> int:
        """Total instances across all shards."""
        return int(self._manifest["n_instances"])

    @property
    def n_dims(self) -> int:
        """Instance dimensionality."""
        return int(self._manifest["n_dims"])

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return int(self._manifest["n_shards"])

    def _load_shard(self, entry: dict, verify: bool) -> PackedCorpus:
        path = self._directory / str(entry["file"])
        if not path.exists():
            raise DatasetError(f"corpus shard {path.name} is missing from disk")
        if verify:
            digest = file_sha256(path)
            if digest != entry["sha256"]:
                raise DatasetError(
                    f"corpus shard {path.name} fails its checksum "
                    f"(expected {entry['sha256'][:12]}…, got {digest[:12]}…); "
                    f"the file is corrupted or truncated"
                )
        try:
            with np.load(path, allow_pickle=False) as payload:
                instances = payload["instances"]
                offsets = payload["offsets"]
                image_ids = [str(i) for i in payload["image_ids"]]
                categories = [str(c) for c in payload["categories"]]
        except (OSError, EOFError, ValueError, KeyError, BadZipFile) as exc:
            raise DatasetError(
                f"corpus shard {path.name} is not a readable shard archive: {exc}"
            ) from exc
        if instances.shape[0] != int(entry["n_instances"]) or len(image_ids) != int(
            entry["n_bags"]
        ):
            raise DatasetError(
                f"corpus shard {path.name} holds {len(image_ids)} bags / "
                f"{instances.shape[0]} instances but the manifest promises "
                f"{entry['n_bags']} / {entry['n_instances']}"
            )
        return PackedCorpus(
            instances=instances,
            offsets=offsets,
            image_ids=image_ids,
            categories=categories,
        )

    def iter_shards(self, verify: bool = True) -> Iterator[PackedCorpus]:
        """Yield each shard as its own small :class:`PackedCorpus`.

        Args:
            verify: re-checksum each shard file before trusting it.

        Raises:
            DatasetError: missing/corrupt/short shard data.
        """
        for entry in self._manifest["shards"]:
            yield self._load_shard(entry, verify)

    def verify(self) -> None:
        """Checksum and structurally validate every shard (full pass)."""
        total_bags = 0
        total_instances = 0
        for shard in self.iter_shards(verify=True):
            total_bags += shard.n_bags
            total_instances += shard.n_instances
        if total_bags != self.n_bags or total_instances != self.n_instances:
            raise DatasetError(
                f"corpus at {self._directory} holds {total_bags} bags / "
                f"{total_instances} instances but the manifest promises "
                f"{self.n_bags} / {self.n_instances}"
            )

    def packed(self, verify: bool = True) -> PackedCorpus:
        """The whole corpus as one :class:`PackedCorpus`, built shard-by-shard.

        The final arrays are preallocated from the manifest totals and each
        shard is copied in then dropped, so peak memory is the result plus
        one shard — a 1M-bag corpus never exists twice.

        Raises:
            DatasetError: any shard failure, or totals short of the manifest.
        """
        instances = np.empty((self.n_instances, self.n_dims), dtype=np.float64)
        offsets = np.empty(self.n_bags + 1, dtype=np.int64)
        offsets[0] = 0
        image_ids: list[str] = []
        categories: list[str] = []
        bag_at = 0
        row_at = 0
        for shard in self.iter_shards(verify=verify):
            n_rows = shard.n_instances
            if row_at + n_rows > self.n_instances or bag_at + shard.n_bags > self.n_bags:
                raise DatasetError(
                    f"corpus at {self._directory} holds more data than its "
                    f"manifest promises ({self.n_bags} bags / "
                    f"{self.n_instances} instances)"
                )
            instances[row_at : row_at + n_rows] = shard.instances
            offsets[bag_at + 1 : bag_at + shard.n_bags + 1] = (
                shard.offsets[1:] + row_at
            )
            image_ids.extend(shard.image_ids)
            categories.extend(shard.categories)
            bag_at += shard.n_bags
            row_at += n_rows
        if bag_at != self.n_bags or row_at != self.n_instances:
            raise DatasetError(
                f"corpus at {self._directory} yielded {bag_at} bags / "
                f"{row_at} instances, short of the manifest's "
                f"{self.n_bags} / {self.n_instances}"
            )
        return PackedCorpus(
            instances=instances,
            offsets=offsets,
            image_ids=image_ids,
            categories=categories,
        )


def save_packed_corpus(
    packed: PackedCorpus,
    path: str | Path,
    *,
    fingerprint: str = "",
    config: ScenarioConfig | None = None,
) -> Path:
    """Write one packed corpus as a single ``.npz`` (the ``synth pack`` output).

    The manifest rides inside the archive as a uint8-encoded JSON array,
    the same trick the serve snapshots use.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    manifest: dict = {
        "version": STORE_VERSION,
        "n_bags": packed.n_bags,
        "n_instances": packed.n_instances,
        "n_dims": packed.n_dims,
        "fingerprint": fingerprint,
    }
    if config is not None:
        manifest["config"] = config.to_dict()
        manifest["fingerprint"] = config.fingerprint
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        manifest=np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8),
        instances=packed.instances,
        offsets=packed.offsets,
        image_ids=np.array(list(packed.image_ids)),
        categories=np.array(list(packed.categories)),
    )
    return path


def load_packed_corpus(path: str | Path) -> tuple[PackedCorpus, dict]:
    """Read a :func:`save_packed_corpus` archive; returns (corpus, manifest).

    Raises:
        DatasetError: missing/unreadable file, bad manifest or version.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"packed corpus {path} does not exist")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, EOFError, ValueError, BadZipFile) as exc:
        raise DatasetError(
            f"packed corpus {path} is not a readable .npz archive: {exc}"
        ) from exc
    with archive as payload:
        try:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatasetError(f"packed corpus {path} has no valid manifest: {exc}") from exc
        version = manifest.get("version")
        if version != STORE_VERSION:
            raise DatasetError(
                f"packed corpus {path} has store version {version!r}; "
                f"this build reads {STORE_VERSION}"
            )
        try:
            packed = PackedCorpus(
                instances=payload["instances"],
                offsets=payload["offsets"],
                image_ids=[str(i) for i in payload["image_ids"]],
                categories=[str(c) for c in payload["categories"]],
            )
        except KeyError as exc:
            raise DatasetError(f"packed corpus {path} is missing array {exc}") from exc
    if packed.n_bags != manifest.get("n_bags") or packed.n_instances != manifest.get(
        "n_instances"
    ):
        raise DatasetError(
            f"packed corpus {path} holds {packed.n_bags} bags / "
            f"{packed.n_instances} instances but its manifest promises "
            f"{manifest.get('n_bags')} / {manifest.get('n_instances')}"
        )
    return packed, manifest
