"""Scenario configuration for the procedural corpus generator.

A :class:`ScenarioConfig` is the *identity* of a synthetic corpus: every
bag is a pure function of ``(config, category, index)``, so two corpora
built from equal configs are bit-identical regardless of shard size,
machine, or interruption history.  The config is schema-versioned like the
serve codec — :meth:`ScenarioConfig.to_dict` embeds
:data:`SCENARIO_SCHEMA_VERSION`, :meth:`ScenarioConfig.from_dict` rejects
versions it does not understand while tolerating unknown fields — and
:attr:`ScenarioConfig.fingerprint` (SHA-256 of the canonical JSON form) is
what the sharded store's manifest records, so a half-generated directory
can never be silently resumed with different knobs.

Two generation modes share the scenario knobs:

* ``"image"`` — bags come from the :mod:`repro.datasets.base` Canvas
  renderers through the full feature pipeline (render, variance-filter,
  smooth-and-sample, normalise).  Honest but ~ms per bag.
* ``"feature"`` — bags are drawn directly in feature space around
  well-separated per-category centres (the regime the sharded rank index
  exists for).  ~µs per bag; the mode million-bag benches use.

:data:`PRESETS` names the scenario families the benches and the CLI speak:
``clean``, ``cluttered``, ``noisy-labels``, ``skewed`` and ``tiny-target``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.datasets.scenes import SCENE_CATEGORIES
from repro.errors import DatasetError

#: Schema version embedded in every serialised config and corpus manifest.
SCENARIO_SCHEMA_VERSION = 1

#: Scale of the per-category feature-space centres (feature mode).  Matches
#: the clustered corpus the sharded-rank bench has always used: centre
#: separation ~``4.0`` against an instance spread of ``cluster_spread``.
FEATURE_CENTER_SCALE = 4.0


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs describing one synthetic corpus scenario.

    Attributes:
        name: preset/scenario label (documentation only — it is part of the
            fingerprint, so rename deliberately).
        mode: ``"image"`` (Canvas renderers + feature pipeline) or
            ``"feature"`` (direct feature-space draws).
        categories: category names.  Image mode requires a subset of
            :data:`~repro.datasets.scenes.SCENE_CATEGORIES`; feature mode
            accepts arbitrary unique names.
        bags_per_category: bags per category before skew (see
            :meth:`category_counts`).
        seed: master seed — part of the config, so one object fully
            determines the corpus.
        image_size: square canvas side in pixels (image mode).
        resolution: feature sampling resolution ``h`` (image mode).
        region_family: region family name (``small9``/``default20``/
            ``large42``) — the instances-per-bag knob of image mode.
        include_mirrors: add mirrored instances (image mode).
        feature_dims: instance dimensionality (feature mode).
        instances_per_bag: instances per bag (feature mode).
        cluster_spread: instance spread around the category centre
            (feature mode).
        objects_per_image: how many category motifs a bag contains; values
            above 1 inject that many distractor objects from *other*
            categories.
        clutter: background clutter level in ``[0, 1]``.  Image mode paints
            that fraction of extra random shapes; feature mode replaces
            that fraction of instances with uniform background draws
            (which inflates bag envelopes — clutter genuinely degrades
            bound pruning, by design).
        label_noise: probability a bag's *recorded* category is flipped to
            another category.  Content and bag id keep the true category.
        category_skew: Zipf exponent over categories; ``0`` is uniform.
        target_scale: size of the category-discriminative structure in
            ``(0, 1]``; below 1, image mode shrinks the cue into a small
            motif on a generic backdrop (the ``tiny-target`` regime).
        color_jitter: colour jitter half-width for painted shapes.
        texture_amplitude: low-frequency value-texture amplitude.
        noise_sigma: per-pixel sensor noise sigma (image mode).
    """

    name: str = "custom"
    mode: str = "image"
    categories: tuple[str, ...] = SCENE_CATEGORIES
    bags_per_category: int = 200
    seed: int = 0
    # image mode
    image_size: int = 48
    resolution: int = 6
    region_family: str = "small9"
    include_mirrors: bool = True
    # feature mode
    feature_dims: int = 16
    instances_per_bag: int = 6
    cluster_spread: float = 0.05
    # scenario knobs (both modes)
    objects_per_image: int = 1
    clutter: float = 0.0
    label_noise: float = 0.0
    category_skew: float = 0.0
    target_scale: float = 1.0
    color_jitter: float = 0.05
    texture_amplitude: float = 0.06
    noise_sigma: float = 0.02

    def __post_init__(self) -> None:
        if self.mode not in ("image", "feature"):
            raise DatasetError(
                f"mode must be 'image' or 'feature', got {self.mode!r}"
            )
        categories = tuple(self.categories)
        object.__setattr__(self, "categories", categories)
        if not categories:
            raise DatasetError("a scenario needs at least one category")
        if len(set(categories)) != len(categories):
            raise DatasetError(f"duplicate category names in {categories}")
        if self.mode == "image":
            unknown = set(categories) - set(SCENE_CATEGORIES)
            if unknown:
                raise DatasetError(
                    f"image mode only renders scene categories "
                    f"{SCENE_CATEGORIES}; unknown: {sorted(unknown)}"
                )
        if self.bags_per_category < 1:
            raise DatasetError(
                f"bags_per_category must be >= 1, got {self.bags_per_category}"
            )
        if self.image_size < 16:
            raise DatasetError(f"image_size must be >= 16, got {self.image_size}")
        if self.resolution < 2:
            raise DatasetError(f"resolution must be >= 2, got {self.resolution}")
        if self.feature_dims < 2:
            raise DatasetError(f"feature_dims must be >= 2, got {self.feature_dims}")
        if self.instances_per_bag < 1:
            raise DatasetError(
                f"instances_per_bag must be >= 1, got {self.instances_per_bag}"
            )
        if self.cluster_spread <= 0:
            raise DatasetError(
                f"cluster_spread must be > 0, got {self.cluster_spread}"
            )
        if self.objects_per_image < 1:
            raise DatasetError(
                f"objects_per_image must be >= 1, got {self.objects_per_image}"
            )
        if self.mode == "feature" and self.objects_per_image > self.instances_per_bag:
            raise DatasetError(
                f"objects_per_image ({self.objects_per_image}) cannot exceed "
                f"instances_per_bag ({self.instances_per_bag}) in feature mode"
            )
        if not 0.0 <= self.clutter <= 1.0:
            raise DatasetError(f"clutter must lie in [0, 1], got {self.clutter}")
        if not 0.0 <= self.label_noise <= 1.0:
            raise DatasetError(
                f"label_noise must lie in [0, 1], got {self.label_noise}"
            )
        if self.category_skew < 0:
            raise DatasetError(
                f"category_skew must be >= 0, got {self.category_skew}"
            )
        if not 0.0 < self.target_scale <= 1.0:
            raise DatasetError(
                f"target_scale must lie in (0, 1], got {self.target_scale}"
            )
        for knob in ("color_jitter", "texture_amplitude", "noise_sigma"):
            if getattr(self, knob) < 0:
                raise DatasetError(f"{knob} must be >= 0, got {getattr(self, knob)}")
        # Fail at config time, not mid-generation, on a bad family name.
        if self.mode == "image":
            from repro.imaging.regions import available_families

            if self.region_family not in available_families():
                raise DatasetError(
                    f"unknown region family {self.region_family!r}; "
                    f"known: {', '.join(available_families())}"
                )

    # ------------------------------------------------------------------ #
    # Serialisation and identity                                          #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The schema-versioned JSON form (canonical corpus identity)."""
        payload = dataclasses.asdict(self)
        payload["categories"] = list(self.categories)
        payload["schema_version"] = SCENARIO_SCHEMA_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown fields are tolerated (a newer writer may add knobs); an
        unknown ``schema_version`` is not.

        Raises:
            DatasetError: missing/unsupported version or invalid values.
        """
        if not isinstance(payload, dict):
            raise DatasetError(
                f"scenario config payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SCENARIO_SCHEMA_VERSION:
            raise DatasetError(
                f"unsupported scenario schema version {version!r} "
                f"(this build reads {SCENARIO_SCHEMA_VERSION})"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        if "categories" in kwargs:
            kwargs["categories"] = tuple(kwargs["categories"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise DatasetError(f"invalid scenario config payload: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form (first 16 hex chars).

        Any knob change — including the seed — changes the fingerprint,
        which is what makes resume-into-a-different-corpus detectable.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # Corpus layout                                                       #
    # ------------------------------------------------------------------ #

    def category_counts(self) -> tuple[int, ...]:
        """Bags per category after skew; sums to :attr:`total_bags` exactly.

        With ``category_skew == 0`` every category gets
        ``bags_per_category``.  Otherwise Zipf weights ``(i+1)**-skew``
        (category order = rank) are scaled to the same total and rounded
        cumulatively, so the counts are deterministic and sum-exact.
        """
        n = len(self.categories)
        total = self.bags_per_category * n
        if self.category_skew == 0:
            return (self.bags_per_category,) * n
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-self.category_skew)
        cumulative = np.cumsum(weights / weights.sum()) * total
        bounds = np.rint(cumulative).astype(np.int64)
        bounds[-1] = total
        counts = np.diff(np.concatenate([[0], bounds]))
        return tuple(int(count) for count in counts)

    @property
    def total_bags(self) -> int:
        """Total bags in the corpus (``bags_per_category * len(categories)``)."""
        return self.bags_per_category * len(self.categories)

    def with_total_bags(self, total: int) -> "ScenarioConfig":
        """A copy sized to *at least* ``total`` bags (category-rounded up)."""
        if total < 1:
            raise DatasetError(f"total bags must be >= 1, got {total}")
        per_category = max(1, math.ceil(total / len(self.categories)))
        return dataclasses.replace(self, bags_per_category=per_category)

    def iter_specs(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[int, str, int]]:
        """Yield ``(position, category, index)`` for a slice of the corpus.

        The global bag order is category-major (category 0's bags first),
        mirroring how every database in this repo is populated — the layout
        the shard index's coarse group envelopes exploit.  The mapping is
        pure arithmetic over :meth:`category_counts`, which is what makes
        any slice generable without its prefix.
        """
        total = self.total_bags
        if stop is None:
            stop = total
        if not 0 <= start <= stop <= total:
            raise DatasetError(
                f"invalid bag slice [{start}, {stop}) of a {total}-bag corpus"
            )
        offset = 0
        for category, count in zip(self.categories, self.category_counts()):
            lo = max(start, offset)
            hi = min(stop, offset + count)
            for position in range(lo, hi):
                yield position, category, position - offset
            offset += count
            if offset >= stop:
                return

    def feature_config(self):
        """The image-mode feature pipeline this scenario implies."""
        from repro.imaging.features import FeatureConfig
        from repro.imaging.regions import region_family

        return FeatureConfig(
            resolution=self.resolution,
            region_family=region_family(self.region_family),
            include_mirrors=self.include_mirrors,
        )

    @property
    def n_dims(self) -> int:
        """Instance dimensionality the generated bags will have."""
        if self.mode == "feature":
            return self.feature_dims
        return self.resolution * self.resolution


# ---------------------------------------------------------------------- #
# Preset registry                                                         #
# ---------------------------------------------------------------------- #

_PRESETS: dict[str, Callable[[], ScenarioConfig]] = {}


def register_preset(
    name: str, factory: Callable[[], ScenarioConfig], overwrite: bool = False
) -> None:
    """Register a named scenario preset (mirrors the learner registry).

    Raises:
        DatasetError: empty name, or duplicate without ``overwrite``.
    """
    if not name:
        raise DatasetError("preset name must be a non-empty string")
    if name in _PRESETS and not overwrite:
        raise DatasetError(
            f"preset {name!r} is already registered (pass overwrite=True)"
        )
    _PRESETS[name] = factory


def get_preset(name: str) -> ScenarioConfig:
    """Build a registered preset's config.

    Raises:
        DatasetError: unknown preset name.
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown scenario preset {name!r}; known: {', '.join(available_presets())}"
        ) from None
    return factory()


def available_presets() -> tuple[str, ...]:
    """Names of every registered preset (sorted)."""
    return tuple(sorted(_PRESETS))


register_preset("clean", lambda: ScenarioConfig(name="clean"))
register_preset(
    "cluttered",
    lambda: ScenarioConfig(
        name="cluttered",
        clutter=0.6,
        objects_per_image=3,
        texture_amplitude=0.10,
    ),
)
register_preset(
    "noisy-labels",
    lambda: ScenarioConfig(name="noisy-labels", label_noise=0.15),
)
register_preset(
    "skewed",
    lambda: ScenarioConfig(name="skewed", category_skew=1.0),
)
register_preset(
    "tiny-target",
    lambda: ScenarioConfig(name="tiny-target", target_scale=0.35, clutter=0.3),
)
