"""Synthetic natural-scene renderers (the COREL substitute).

Five categories matching the paper's scene database: ``waterfall``,
``mountain``, ``field``, ``lake_river`` and ``sunset``.  Each renderer
places category-discriminative structure in a *sub-region* of the frame —
the property that motivates the paper's multiple-instance formulation — and
surrounds it with jittered, textured, noisy background so whole-image
matching is unreliable:

* waterfall — a bright vertical cascade at a jittered horizontal position,
  cut into a dark rock face under a sky band;
* mountain — one or two dark triangular peaks with bright snow caps against
  a gradient sky;
* field — a low horizon with smooth textured ground and furrow streaks;
* lake_river — a bright horizontal water band with ripple texture between a
  far shore and a dark near bank;
* sunset — a warm gradient sky with a bright sun disc low over a dark
  silhouette.

All geometry, colours and noise derive from the per-image generator, so a
given ``(seed, category, index)`` always renders the same picture.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Canvas, jitter, jitter_color
from repro.errors import DatasetError

#: The scene categories, in the paper's order of mention.
SCENE_CATEGORIES: tuple[str, ...] = (
    "waterfall",
    "mountain",
    "field",
    "lake_river",
    "sunset",
)


def _sky(canvas: Canvas, rng: np.random.Generator, horizon: float) -> None:
    """A blue-gray gradient sky with occasional light cloud texture."""
    top = jitter_color(rng, (0.45, 0.62, 0.82), 0.12)
    low = jitter_color(rng, (0.72, 0.80, 0.88), 0.12)
    canvas.vertical_gradient(top, low, 0.0, horizon)
    if rng.random() < 0.6:
        canvas.add_value_texture(rng, cells=4, amplitude=0.08, row0=0.0, row1=horizon)
    if rng.random() < 0.35:  # bright cloud blob — confounds bright concepts
        canvas.ellipse(
            rng.uniform(0.05, max(0.1, horizon - 0.08)),
            rng.uniform(0.15, 0.85),
            rng.uniform(0.03, 0.06),
            rng.uniform(0.08, 0.16),
            (0.95, 0.95, 0.96),
            alpha=0.7,
        )


def _background_ridge(canvas: Canvas, rng: np.random.Generator, horizon: float) -> None:
    """A distant dark ridge behind the horizon — shared scenery element.

    Real COREL scenes mix their elements (fields with hills, lakes under
    mountains); these shared confounders keep categories from being
    separable by any single global cue.
    """
    peak_col = jitter(rng, 0.5, 0.3)
    peak_row = max(0.05, horizon - jitter(rng, 0.12, 0.05))
    half = jitter(rng, 0.3, 0.1)
    shade = jitter_color(rng, (0.35, 0.36, 0.40), 0.08)
    canvas.triangle(
        (peak_row, peak_col), (horizon, peak_col - half), (horizon, peak_col + half), shade
    )


def _render_waterfall(canvas: Canvas, rng: np.random.Generator) -> None:
    horizon = jitter(rng, 0.22, 0.1)
    _sky(canvas, rng, horizon)
    # Rock face fills the frame below the sky.
    rock = jitter_color(rng, (0.30, 0.24, 0.20), 0.10)
    canvas.rect(horizon, 0.0, 1.0, 1.0, rock)
    canvas.add_value_texture(rng, cells=7, amplitude=0.14, row0=horizon, row1=1.0)
    # The cascade: a bright vertical streak with a soft halo and a plunge
    # pool.  Position, width and height vary widely — the concept region is
    # genuinely unknown a priori.
    center = jitter(rng, 0.5, 0.3)
    width = jitter(rng, 0.08, 0.045)
    fall_top = horizon + jitter(rng, 0.06, 0.05)
    pool_top = jitter(rng, 0.78, 0.12)
    white = jitter_color(rng, (0.90, 0.92, 0.95), 0.06)
    canvas.rect(fall_top, center - width, pool_top, center + width, white, alpha=0.5)
    canvas.rect(fall_top, center - width / 2, pool_top, center + width / 2, white)
    canvas.rect(pool_top, max(0.0, center - 3 * width), 1.0,
                min(1.0, center + 3 * width), jitter_color(rng, (0.72, 0.79, 0.86), 0.08),
                alpha=0.8)
    # Streak highlights inside the fall.
    for _ in range(rng.integers(2, 5)):
        col = jitter(rng, center, width * 0.6)
        canvas.line((fall_top, col), (pool_top, col), 0.012, (1.0, 1.0, 1.0), alpha=0.45)
    if rng.random() < 0.4:  # occluding foreground boulder / foliage
        canvas.ellipse(
            rng.uniform(0.75, 0.92),
            rng.uniform(0.1, 0.9),
            rng.uniform(0.06, 0.12),
            rng.uniform(0.1, 0.2),
            jitter_color(rng, (0.22, 0.26, 0.16), 0.06),
        )


def _render_mountain(canvas: Canvas, rng: np.random.Generator) -> None:
    horizon = jitter(rng, 0.62, 0.08)
    _sky(canvas, rng, horizon)
    ground = jitter_color(rng, (0.35, 0.38, 0.30), 0.06)
    canvas.rect(horizon, 0.0, 1.0, 1.0, ground)
    canvas.add_value_texture(rng, cells=6, amplitude=0.06, row0=horizon, row1=1.0)
    n_peaks = int(rng.integers(1, 3))
    base_cols = [jitter(rng, 0.35, 0.18), jitter(rng, 0.7, 0.15)][:n_peaks]
    for base_col in base_cols:
        peak_row = jitter(rng, 0.2, 0.1)
        half_width = jitter(rng, 0.28, 0.1)
        rock = jitter_color(rng, (0.28, 0.26, 0.28), 0.08)
        apex = (peak_row, base_col)
        left = (horizon, base_col - half_width)
        right = (horizon, base_col + half_width)
        canvas.triangle(apex, left, right, rock)
        if rng.random() < 0.75:  # snow cap (absent on some peaks)
            snow_drop = jitter(rng, 0.30, 0.1)
            snow_left = (
                peak_row + snow_drop * (horizon - peak_row),
                base_col - snow_drop * half_width,
            )
            snow_right = (
                peak_row + snow_drop * (horizon - peak_row),
                base_col + snow_drop * half_width,
            )
            canvas.triangle(
                apex, snow_left, snow_right, jitter_color(rng, (0.94, 0.95, 0.97), 0.04)
            )


def _render_field(canvas: Canvas, rng: np.random.Generator) -> None:
    horizon = jitter(rng, 0.42, 0.12)
    _sky(canvas, rng, horizon)
    if rng.random() < 0.45:  # distant hills behind the field
        _background_ridge(canvas, rng, horizon)
    near = jitter_color(rng, (0.45, 0.58, 0.25), 0.10)
    far = jitter_color(rng, (0.62, 0.66, 0.38), 0.10)
    canvas.vertical_gradient(far, near, horizon, 1.0)
    canvas.add_value_texture(rng, cells=8, amplitude=0.05, row0=horizon, row1=1.0)
    # Furrow streaks: faint darker horizontal lines converging nowhere in
    # particular — enough to give the ground a banded texture.
    n_furrows = int(rng.integers(3, 7))
    for i in range(n_furrows):
        row = horizon + (i + 1) * (1.0 - horizon) / (n_furrows + 1)
        shade = jitter_color(rng, (0.35, 0.45, 0.20), 0.05)
        canvas.rect(row, 0.0, min(1.0, row + 0.015), 1.0, shade, alpha=0.6)
    if rng.random() < 0.4:  # occasional distant tree clump
        col = jitter(rng, 0.5, 0.35)
        canvas.ellipse(horizon - 0.03, col, 0.04, jitter(rng, 0.06, 0.02),
                       jitter_color(rng, (0.20, 0.30, 0.15), 0.05))


def _render_lake_river(canvas: Canvas, rng: np.random.Generator) -> None:
    horizon = jitter(rng, 0.35, 0.1)
    _sky(canvas, rng, horizon)
    if rng.random() < 0.45:  # lakes under mountains are common
        _background_ridge(canvas, rng, horizon)
    # Far shore band.
    shore = jitter_color(rng, (0.40, 0.42, 0.32), 0.08)
    water_top = horizon + jitter(rng, 0.06, 0.04)
    canvas.rect(horizon, 0.0, water_top, 1.0, shore)
    # The water: a bright blue band with horizontal ripple striping.
    water = jitter_color(rng, (0.50, 0.66, 0.82), 0.10)
    water_bottom = jitter(rng, 0.85, 0.1)
    canvas.rect(water_top, 0.0, water_bottom, 1.0, water)
    n_ripples = int(rng.integers(3, 9))
    for _ in range(n_ripples):
        row = rng.uniform(water_top + 0.02, water_bottom - 0.02)
        bright = jitter_color(rng, (0.80, 0.88, 0.95), 0.05)
        canvas.rect(row, rng.uniform(0.0, 0.3), row + 0.012, rng.uniform(0.7, 1.0),
                    bright, alpha=0.65)
    if rng.random() < 0.3:  # sun glint column on the water (sunset confound)
        glint_col = jitter(rng, 0.5, 0.25)
        canvas.rect(water_top, glint_col - 0.03, water_bottom, glint_col + 0.03,
                    (0.95, 0.93, 0.85), alpha=0.5)
    # Near bank.
    canvas.rect(water_bottom, 0.0, 1.0, 1.0, jitter_color(rng, (0.25, 0.28, 0.18), 0.07))


def _render_sunset(canvas: Canvas, rng: np.random.Generator) -> None:
    horizon = jitter(rng, 0.66, 0.1)
    top = jitter_color(rng, (0.25, 0.15, 0.35), 0.10)
    mid = jitter_color(rng, (0.92, 0.55, 0.25), 0.10)
    canvas.vertical_gradient(top, mid, 0.0, horizon)
    # The sun: a bright disc low over the horizon with a warm halo.  It may
    # sit partly behind the horizon, shrinking the visible cue.
    sun_row = horizon - jitter(rng, 0.08, 0.08)
    sun_col = jitter(rng, 0.5, 0.3)
    radius = jitter(rng, 0.08, 0.035)
    canvas.disc(sun_row, sun_col, radius * 2.2, (1.0, 0.75, 0.45), alpha=0.35)
    canvas.disc(sun_row, sun_col, radius, jitter_color(rng, (1.0, 0.92, 0.70), 0.05))
    if rng.random() < 0.35:  # sunset over water: bright band below (lake confound)
        canvas.rect(horizon, 0.0, min(1.0, horizon + 0.1), 1.0,
                    jitter_color(rng, (0.85, 0.65, 0.45), 0.07), alpha=0.8)
        ground_top = min(1.0, horizon + 0.1)
    else:
        ground_top = horizon
    # Dark silhouette ground.
    dark = jitter_color(rng, (0.10, 0.08, 0.10), 0.04)
    canvas.rect(ground_top, 0.0, 1.0, 1.0, dark)
    if rng.random() < 0.5:  # a silhouetted ridge breaking the horizon
        peak_col = jitter(rng, 0.5, 0.35)
        canvas.triangle(
            (ground_top - jitter(rng, 0.08, 0.04), peak_col),
            (ground_top, peak_col - 0.2),
            (ground_top, peak_col + 0.2),
            dark,
        )


_RENDERERS = {
    "waterfall": _render_waterfall,
    "mountain": _render_mountain,
    "field": _render_field,
    "lake_river": _render_lake_river,
    "sunset": _render_sunset,
}

#: Pixel noise applied to every scene (sensor grain; keeps regions
#: non-constant so variance filtering behaves as in real photographs).
_SCENE_NOISE_SIGMA = 0.02


def paint_scene(canvas: Canvas, category: str, rng: np.random.Generator) -> None:
    """Paint a category's scene structure onto an existing canvas.

    The composable half of :func:`render_scene`: no smoothing and no sensor
    noise, so callers (the procedural corpus generator in
    :mod:`repro.datasets.synth`) can layer clutter and distractor objects
    on top before finishing the image.

    Raises:
        DatasetError: for an unknown category.
    """
    try:
        renderer = _RENDERERS[category]
    except KeyError:
        known = ", ".join(SCENE_CATEGORIES)
        raise DatasetError(f"unknown scene category {category!r}; known: {known}") from None
    renderer(canvas, rng)


def render_scene(
    category: str,
    rng: np.random.Generator,
    size: tuple[int, int] = (96, 96),
) -> np.ndarray:
    """Render one scene image.

    Args:
        category: one of :data:`SCENE_CATEGORIES`.
        rng: the per-image generator (see
            :func:`repro.datasets.base.category_rng`).
        size: ``(rows, cols)`` canvas size.

    Returns:
        ``(rows, cols, 3)`` float RGB array in [0, 1].

    Raises:
        DatasetError: for an unknown category.
    """
    canvas = Canvas(size[0], size[1])
    paint_scene(canvas, category, rng)
    canvas.smooth(iterations=1)
    canvas.add_noise(rng, _SCENE_NOISE_SIGMA)
    return canvas.rgb
