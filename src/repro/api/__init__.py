"""The public query API: learner registry, query objects, retrieval service.

This package is the architectural seam between the learning stack below it
(``repro.core``, ``repro.baselines``) and every consumer above it (the CLI,
``repro.session``, the experiment runner, user code):

* :mod:`repro.api.learners` — the :class:`Learner` interface and the
  string-keyed registry (``dd``, ``emdd``, ``maron-ratan``, ``random``,
  ``global-correlation``; extend with :func:`register_learner`).
* :mod:`repro.api.query` — frozen :class:`Query` / :class:`QueryResult`
  request–response dataclasses.
* :mod:`repro.api.service` — :class:`RetrievalService`, which owns a
  database, caches bag corpora, and executes single queries or seeded
  deterministic ``batch_query`` fan-outs.

Quickstart::

    from repro import RetrievalService, Query, quick_database

    service = RetrievalService(quick_database("scenes", seed=7))
    result = service.query(
        Query(
            positive_ids=("scene-waterfall-0000", "scene-waterfall-0001"),
            negative_ids=("scene-field-0000",),
            learner="dd",
            params={"scheme": "inequality", "beta": 0.5, "seed": 7},
            top_k=10,
        )
    )
    for entry in result.top():
        print(entry.image_id, entry.distance)
"""

from repro.api.learners import (
    ConceptLearner,
    DiverseDensityLearner,
    EMDDLearner,
    GlobalCorrelationLearner,
    LearnedModel,
    Learner,
    MaronRatanLearner,
    RandomLearner,
    available_learners,
    make_learner,
    register_learner,
    shape_learner_params,
)
from repro.api.query import Query, QueryResult, QueryTiming
from repro.api.service import FittedQuery, QueryRecord, RetrievalService

__all__ = [
    "Learner",
    "LearnedModel",
    "ConceptLearner",
    "DiverseDensityLearner",
    "EMDDLearner",
    "MaronRatanLearner",
    "RandomLearner",
    "GlobalCorrelationLearner",
    "available_learners",
    "make_learner",
    "register_learner",
    "shape_learner_params",
    "Query",
    "QueryResult",
    "QueryTiming",
    "QueryRecord",
    "FittedQuery",
    "RetrievalService",
]
