"""Frozen request/response objects for the retrieval service.

A :class:`Query` is one self-contained retrieval request — example image
ids, which learner to use (by registry name) and with which parameters,
an optional candidate subset, an optional ``top_k`` and an optional
``category_filter`` — so requests can be built anywhere, validated once,
queued, and executed by :class:`~repro.api.service.RetrievalService` in
any order or thread.

A :class:`QueryResult` pairs the request with the ranking (truncated to
``top_k`` when requested, while
:attr:`~repro.core.retrieval.RetrievalResult.total_candidates` still
reports the full candidate count), the learned concept (when the learner
produces one), the training diagnostics and per-phase wall-clock timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Sequence

from repro.core.concept import LearnedConcept
from repro.core.diverse_density import TrainingResult
from repro.core.retrieval import RankedImage, RetrievalResult
from repro.errors import QueryError


def _as_id_tuple(ids: Sequence[str], what: str) -> tuple[str, ...]:
    out = tuple(ids)
    for image_id in out:
        if not isinstance(image_id, str) or not image_id:
            raise QueryError(f"{what} must be non-empty strings, got {image_id!r}")
    return out


@dataclass(frozen=True)
class Query:
    """One retrieval request.

    Attributes:
        positive_ids: ids of the positive example images (at least one).
        negative_ids: ids of the negative example images (may be empty).
        learner: registry name of the learner to run
            (see :func:`~repro.api.learners.available_learners`).
        params: keyword parameters for the learner factory (exposed as a
            read-only mapping once constructed).
        candidate_ids: which images to rank; the whole database when ``None``.
            Example images are always excluded from the ranking.
        top_k: truncate the ranking to the best ``top_k`` entries
            (``None`` keeps the full ranking); the result still reports
            its ``total_candidates``, and :meth:`QueryResult.top` uses
            this as its default ``k``.
        category_filter: rank only candidates of this ground-truth
            category; ``None`` ranks every candidate.
        query_id: optional caller-supplied tag carried through to the result
            and the service's timing records.

    Raises:
        QueryError: on empty positives, duplicate/overlapping example ids,
            a non-positive ``top_k``, or an empty ``category_filter``.
    """

    positive_ids: tuple[str, ...]
    negative_ids: tuple[str, ...] = ()
    learner: str = "dd"
    # hash=False: params is a read-only mapping (unhashable); equal queries
    # still hash equal, so Query stays usable as a set member / dict key.
    params: Mapping[str, object] = field(default_factory=dict, hash=False)
    candidate_ids: tuple[str, ...] | None = None
    top_k: int | None = None
    category_filter: str | None = None
    query_id: str = ""

    def __post_init__(self) -> None:
        positives = _as_id_tuple(self.positive_ids, "positive ids")
        negatives = _as_id_tuple(self.negative_ids, "negative ids")
        if not positives:
            raise QueryError("a query needs at least one positive example id")
        if len(set(positives)) != len(positives):
            raise QueryError("positive ids contain duplicates")
        if len(set(negatives)) != len(negatives):
            raise QueryError("negative ids contain duplicates")
        overlap = set(positives) & set(negatives)
        if overlap:
            raise QueryError(
                f"ids cannot be both positive and negative examples: {sorted(overlap)}"
            )
        if not self.learner:
            raise QueryError("learner name must be a non-empty string")
        if self.top_k is not None and self.top_k < 1:
            raise QueryError(f"top_k must be >= 1 or None, got {self.top_k}")
        if self.category_filter is not None and (
            not isinstance(self.category_filter, str) or not self.category_filter
        ):
            raise QueryError(
                f"category_filter must be a non-empty string or None, "
                f"got {self.category_filter!r}"
            )
        candidates = (
            None
            if self.candidate_ids is None
            else _as_id_tuple(self.candidate_ids, "candidate ids")
        )
        object.__setattr__(self, "positive_ids", positives)
        object.__setattr__(self, "negative_ids", negatives)
        object.__setattr__(self, "candidate_ids", candidates)
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    @property
    def example_ids(self) -> tuple[str, ...]:
        """All example ids (positives then negatives)."""
        return self.positive_ids + self.negative_ids


@dataclass(frozen=True)
class QueryTiming:
    """Wall-clock phases of one executed query (seconds)."""

    fit_seconds: float
    rank_seconds: float
    total_seconds: float


@dataclass(frozen=True)
class QueryResult:
    """One executed query: the request, the ranking and the diagnostics.

    Attributes:
        query: the request that ran.
        ranking: the ranking, example images excluded and truncated to the
            query's ``top_k`` when one was requested
            (``ranking.total_candidates`` still reports how many images
            competed).
        concept: the learned concept, or ``None`` for non-concept learners.
        training: full training diagnostics, or ``None``.
        timing: per-phase wall-clock timing.
    """

    query: Query
    ranking: RetrievalResult
    concept: LearnedConcept | None
    training: TrainingResult | None
    timing: QueryTiming

    @property
    def total_candidates(self) -> int:
        """How many images competed (delegates to the ranking)."""
        return self.ranking.total_candidates

    def top(self, k: int | None = None) -> tuple[RankedImage, ...]:
        """The best ``k`` matches (defaults to the query's ``top_k``)."""
        if k is None:
            k = self.query.top_k
        if k is None:
            return self.ranking.ranked
        return self.ranking.top(k)

    def precision_at(self, k: int, target_category: str) -> float:
        """Precision among the top ``k`` results (delegates to the ranking)."""
        return self.ranking.precision_at(k, target_category)
