"""The unified learner interface and its string-keyed registry.

Every concept-learning and ranking strategy in the package — the paper's
Diverse Density trainer, the EM-DD extension, the Maron & Lakshmi Ratan
colour baseline and the sanity rankers — is wrapped behind one small
interface so the :class:`~repro.api.service.RetrievalService` (and anything
built on it) can treat them interchangeably:

* :class:`Learner` — ``fit(bag_set) -> LearnedModel``, plus two hooks the
  service calls while assembling a query: :meth:`Learner.bind` (capture the
  database, for learners that need raw pixels) and :meth:`Learner.corpus`
  (which bag/candidate view to rank — the colour baseline swaps in SBN
  colour bags here, everything else uses the database's region bags).
* :class:`LearnedModel` — the fitted artefact: an optional
  :class:`~repro.core.concept.LearnedConcept` plus
  ``rank(corpus, exclude, top_k=..., category_filter=...) ->
  RetrievalResult``, where the corpus is a
  :class:`~repro.core.retrieval.PackedCorpus` (or anything coercible to
  one).
* :func:`register_learner` / :func:`make_learner` /
  :func:`available_learners` — the registry.  Unknown names and bad
  parameters raise :class:`~repro.errors.LearnerError`.

Built-in registry keys: ``dd`` (alias ``diverse-density``), ``emdd``,
``maron-ratan``, ``random`` and ``global-correlation``.
"""

from __future__ import annotations

import abc
import inspect
from typing import Callable, ClassVar, Iterable

import numpy as np

from repro.bags.bag import BagSet
from repro.baselines.maron_ratan import DEFAULT_GRID, ColorCorpus
from repro.baselines.rankers import (
    RandomRanker,
    correlation_ranking,
    correlation_template,
)
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig, TrainingResult
from repro.core.emdd import EMDDConfig, EMDDTrainer
from repro.core.feedback import Corpus
from repro.core.retrieval import PackedCorpus, Ranker, RetrievalResult
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, LearnerError, TrainingError


# --------------------------------------------------------------------- #
# Fitted models                                                          #
# --------------------------------------------------------------------- #


class LearnedModel(abc.ABC):
    """What :meth:`Learner.fit` returns: something that can rank a corpus."""

    @property
    def concept(self) -> LearnedConcept | None:
        """The learned concept, when the strategy produces one."""
        return None

    @property
    def training(self) -> TrainingResult | None:
        """Full training diagnostics, when the strategy produces them."""
        return None

    @abc.abstractmethod
    def rank(
        self,
        corpus,
        exclude: Iterable[str] = (),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Rank a corpus, best match first.

        ``corpus`` is a :class:`~repro.core.retrieval.PackedCorpus`, an
        object offering ``packed()``, or an iterable of
        :class:`~repro.core.retrieval.RetrievalCandidate` items
        (compatibility).  ``exclude`` skips ids, ``category_filter`` keeps
        one ground-truth category, ``top_k`` truncates the result while
        preserving ``total_candidates``.
        """


class ConceptModel(LearnedModel):
    """A learned ``(t, w)`` concept ranked by min-instance distance."""

    def __init__(self, training: TrainingResult):
        self._training = training
        self._ranker = Ranker()

    @property
    def concept(self) -> LearnedConcept:
        return self._training.concept

    @property
    def training(self) -> TrainingResult:
        return self._training

    def rank(
        self,
        corpus,
        exclude: Iterable[str] = (),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        return self._ranker.rank(
            self._training.concept,
            corpus,
            top_k=top_k,
            exclude=exclude,
            category_filter=category_filter,
        )


class _PoolCategories:
    """category_of view over an id -> category mapping (for RandomRanker)."""

    def __init__(self, categories: dict[str, str]):
        self._categories = categories

    def category_of(self, image_id: str) -> str:
        return self._categories[image_id]


def _filtered_pool(
    corpus,
    exclude: Iterable[str],
    category_filter: str | None,
    top_k: int | None,
) -> list[tuple[str, str]]:
    """``(image_id, category)`` pairs surviving exclusion and filtering.

    Also validates ``top_k`` so every model rejects a non-positive value
    the same way the :class:`~repro.core.retrieval.Ranker` does.
    """
    if top_k is not None and top_k < 1:
        raise DatabaseError(f"top_k must be >= 1 or None, got {top_k}")
    packed = PackedCorpus.coerce(corpus)
    excluded = set(exclude)
    return [
        (image_id, category)
        for image_id, category in zip(packed.image_ids, packed.categories)
        if image_id not in excluded
        and (category_filter is None or category == category_filter)
    ]


class RandomOrderModel(LearnedModel):
    """Seeded random ordering (the paper's "completely random retrieval").

    Delegates to :class:`~repro.baselines.rankers.RandomRanker` over the
    id-sorted candidate pool, with a fresh ranker per call so repeated
    ranks from one model are reproducible.
    """

    def __init__(self, seed: int):
        self._seed = seed

    def rank(
        self,
        corpus,
        exclude: Iterable[str] = (),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        pool = sorted(_filtered_pool(corpus, exclude, category_filter, top_k))
        if not pool:
            return RetrievalResult((), total_candidates=0)
        result = RandomRanker(self._seed).rank(
            _PoolCategories(dict(pool)), [image_id for image_id, _ in pool]
        )
        return result.truncate(top_k)


class CorrelationTemplateModel(LearnedModel):
    """Whole-image correlation to the mean positive example (no MIL)."""

    def __init__(self, database: ImageDatabase, template: np.ndarray, resolution: int):
        self._database = database
        self._template = template
        self._resolution = resolution

    def rank(
        self,
        corpus,
        exclude: Iterable[str] = (),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        chosen = [
            image_id
            for image_id, _ in _filtered_pool(corpus, exclude, category_filter,
                                              top_k)
        ]
        result = correlation_ranking(
            self._database, self._template, chosen, self._resolution
        )
        return result.truncate(top_k)


# --------------------------------------------------------------------- #
# Learners                                                               #
# --------------------------------------------------------------------- #


class Learner(abc.ABC):
    """One pluggable retrieval-learning strategy.

    The service drives every learner through the same three steps::

        learner.bind(database)                  # optional database capture
        corpus = learner.corpus(database)       # which bag view to use
        model = learner.fit(bag_set)            # train on example bags
        result = model.rank(corpus.packed(), ...)   # rank the packed corpus

    Subclasses set :attr:`name` (the registry key they are usually
    registered under) and implement :meth:`fit`.
    """

    name: ClassVar[str] = ""

    def bind(self, database: ImageDatabase) -> None:
        """Capture the database before fitting (no-op by default)."""

    def corpus(self, database: ImageDatabase) -> Corpus:
        """The corpus the learner's bags and candidates come from."""
        return database

    @property
    def corpus_key(self) -> str:
        """Cache key for the corpus view (learners sharing a key share bags)."""
        return "region-bags"

    @abc.abstractmethod
    def fit(self, bag_set: BagSet) -> LearnedModel:
        """Train on the labelled example bags and return a rankable model."""


class ConceptLearner(Learner):
    """Base for learners that wrap a ``train(bag_set) -> TrainingResult`` trainer."""

    def __init__(self, trainer) -> None:
        self._trainer = trainer

    @property
    def trainer(self):
        """The underlying trainer object."""
        return self._trainer

    @property
    def config(self):
        """The underlying trainer's configuration."""
        return self._trainer.config

    @property
    def fingerprint(self) -> str | None:
        """Concept-cache identity of the wrapped trainer (None if it has none)."""
        fingerprint = getattr(self._trainer, "fingerprint", None)
        return fingerprint if isinstance(fingerprint, str) else None

    def train(self, bag_set: BagSet, extra_starts=()) -> TrainingResult:
        """FeedbackLoop-compatible alias: train and return the full result."""
        if extra_starts:
            return self._trainer.train(bag_set, extra_starts=tuple(extra_starts))
        return self._trainer.train(bag_set)

    def fit(self, bag_set: BagSet) -> ConceptModel:
        return ConceptModel(self.train(bag_set))


class DiverseDensityLearner(ConceptLearner):
    """The paper's multi-restart Diverse Density trainer (registry: ``dd``)."""

    name = "dd"

    def __init__(
        self,
        scheme: str = "inequality",
        beta: float = 0.5,
        alpha: float = 50.0,
        max_iterations: int = 100,
        start_bag_subset: int | None = None,
        start_instance_stride: int = 1,
        seed: int = 0,
        engine: str = "batched",
        restart_prune_margin: float | None = None,
    ) -> None:
        super().__init__(
            DiverseDensityTrainer(
                TrainerConfig(
                    scheme=scheme,
                    beta=beta,
                    alpha=alpha,
                    max_iterations=max_iterations,
                    start_bag_subset=start_bag_subset,
                    start_instance_stride=start_instance_stride,
                    seed=seed,
                    engine=engine,
                    restart_prune_margin=restart_prune_margin,
                )
            )
        )


class EMDDLearner(ConceptLearner):
    """The EM-DD extension trainer (registry: ``emdd``)."""

    name = "emdd"

    def __init__(
        self,
        inner_scheme: str = "identical",
        beta: float = 0.5,
        alpha: float = 50.0,
        max_em_iterations: int = 10,
        tolerance: float = 1e-6,
        max_inner_iterations: int = 60,
        start_bag_subset: int | None = None,
        start_instance_stride: int = 1,
        seed: int = 0,
        engine: str = "batched",
        restart_prune_margin: float | None = None,
    ) -> None:
        super().__init__(
            EMDDTrainer(
                EMDDConfig(
                    inner_scheme=inner_scheme,
                    beta=beta,
                    alpha=alpha,
                    max_em_iterations=max_em_iterations,
                    tolerance=tolerance,
                    max_inner_iterations=max_inner_iterations,
                    start_bag_subset=start_bag_subset,
                    start_instance_stride=start_instance_stride,
                    seed=seed,
                    engine=engine,
                    restart_prune_margin=restart_prune_margin,
                )
            )
        )


class MaronRatanLearner(ConceptLearner):
    """Diverse Density over SBN colour bags (registry: ``maron-ratan``).

    The Section 4.2.4 "previous approach": same DD core, colour features.
    Requires a database whose images carry RGB data.
    """

    name = "maron-ratan"

    def __init__(
        self,
        grid: int = DEFAULT_GRID,
        scheme: str = "identical",
        beta: float = 0.5,
        alpha: float = 50.0,
        max_iterations: int = 100,
        start_bag_subset: int | None = None,
        start_instance_stride: int = 1,
        seed: int = 0,
        engine: str = "batched",
        restart_prune_margin: float | None = None,
    ) -> None:
        super().__init__(
            DiverseDensityTrainer(
                TrainerConfig(
                    scheme=scheme,
                    beta=beta,
                    alpha=alpha,
                    max_iterations=max_iterations,
                    start_bag_subset=start_bag_subset,
                    start_instance_stride=start_instance_stride,
                    seed=seed,
                    engine=engine,
                    restart_prune_margin=restart_prune_margin,
                )
            )
        )
        self._grid = grid

    def corpus(self, database: ImageDatabase) -> ColorCorpus:
        return ColorCorpus(database, grid=self._grid)

    @property
    def corpus_key(self) -> str:
        return f"sbn-color-{self._grid}"


class RandomLearner(Learner):
    """Seeded random baseline (registry: ``random``); ignores the examples."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._seed = seed

    def fit(self, bag_set: BagSet) -> RandomOrderModel:
        return RandomOrderModel(self._seed)


class GlobalCorrelationLearner(Learner):
    """Whole-image correlation baseline (registry: ``global-correlation``).

    No regions, no mirrors, no negative examples, no learning — the
    Figure 3-3 / 3-4 reference the MIL system is measured against.
    """

    name = "global-correlation"

    def __init__(self, resolution: int = 10):
        if resolution < 2:
            raise LearnerError(f"resolution must be >= 2, got {resolution}")
        self._resolution = resolution
        self._database: ImageDatabase | None = None

    def bind(self, database: ImageDatabase) -> None:
        self._database = database

    def fit(self, bag_set: BagSet) -> CorrelationTemplateModel:
        if self._database is None:
            raise LearnerError(
                "global-correlation needs a database; call bind(database) before fit"
            )
        positive_ids = [bag.bag_id for bag in bag_set.positive_bags]
        if not positive_ids:
            raise TrainingError(
                "global correlation ranking needs at least one positive example"
            )
        template = correlation_template(self._database, positive_ids, self._resolution)
        return CorrelationTemplateModel(self._database, template, self._resolution)


# --------------------------------------------------------------------- #
# Registry                                                               #
# --------------------------------------------------------------------- #

_REGISTRY: dict[str, Callable[..., Learner]] = {}


def register_learner(
    name: str, factory: Callable[..., Learner], overwrite: bool = False
) -> None:
    """Register a learner factory under a string key.

    Args:
        name: the registry key (``make_learner(name, ...)`` resolves it).
        factory: callable returning a :class:`Learner`; keyword arguments of
            ``make_learner`` are forwarded to it.
        overwrite: allow replacing an existing registration.

    Raises:
        LearnerError: on an empty name or a duplicate registration.
    """
    if not name:
        raise LearnerError("learner name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise LearnerError(
            f"learner {name!r} is already registered; pass overwrite=True to replace"
        )
    _REGISTRY[name] = factory


def available_learners() -> tuple[str, ...]:
    """All registered learner names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_learner(name: str, **params) -> Learner:
    """Build a learner by registry key.

    Args:
        name: one of :func:`available_learners`.
        **params: forwarded to the registered factory.

    Raises:
        LearnerError: for an unknown name or parameters the factory rejects.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_learners())
        raise LearnerError(f"unknown learner {name!r}; known learners: {known}") from None
    try:
        inspect.signature(factory).bind(**params)
    except TypeError as exc:
        raise LearnerError(f"invalid parameters for learner {name!r}: {exc}") from None
    learner = factory(**params)
    if not isinstance(learner, Learner):
        raise LearnerError(
            f"factory for {name!r} returned {type(learner).__name__}, not a Learner"
        )
    return learner


def shape_learner_params(
    learner: str,
    scheme: str = "inequality",
    beta: float = 0.5,
    alpha: float = 50.0,
    max_iterations: int = 100,
    start_bag_subset: int | None = None,
    start_instance_stride: int = 1,
    seed: int = 0,
    engine: str = "batched",
    restart_prune_margin: float | None = None,
) -> dict[str, object]:
    """Map the historical DD-style knobs onto a built-in learner's parameters.

    The session, the CLI and the experiment runner all configure learners
    from the same Diverse-Density-shaped knob set; this is the single place
    that knows how those knobs spell for each learner family (EM-DD renames
    the scheme and iteration cap, the sanity rankers take almost nothing).
    Unknown/custom learners get the DD-shaped mapping; pass explicit params
    instead if they differ.
    """
    if learner == "emdd":
        return {
            "inner_scheme": scheme,
            "beta": beta,
            "alpha": alpha,
            "max_inner_iterations": max_iterations,
            "start_bag_subset": start_bag_subset,
            "start_instance_stride": start_instance_stride,
            "seed": seed,
            "engine": engine,
            "restart_prune_margin": restart_prune_margin,
        }
    if learner == "random":
        return {"seed": seed}
    if learner == "global-correlation":
        return {}
    # dd, diverse-density, maron-ratan and DD-shaped custom learners.
    return {
        "scheme": scheme,
        "beta": beta,
        "alpha": alpha,
        "max_iterations": max_iterations,
        "start_bag_subset": start_bag_subset,
        "start_instance_stride": start_instance_stride,
        "seed": seed,
        "engine": engine,
        "restart_prune_margin": restart_prune_margin,
    }


register_learner("dd", DiverseDensityLearner)
register_learner("diverse-density", DiverseDensityLearner)
register_learner("emdd", EMDDLearner)
register_learner("maron-ratan", MaronRatanLearner)
register_learner("random", RandomLearner)
register_learner("global-correlation", GlobalCorrelationLearner)
