"""The retrieval service: one database, many queries, any learner.

:class:`RetrievalService` is the package's serving facade.  It owns an
:class:`~repro.database.store.ImageDatabase`, caches the precomputed bag
corpora every learner family ranks against (region bags for the paper's
system, SBN colour bags for the Maron–Ratan baseline), and executes
:class:`~repro.api.query.Query` requests:

* :meth:`RetrievalService.query` — resolve the learner from the registry,
  build the example bags, fit, rank (vectorised, over the corpus's cached
  :class:`~repro.core.retrieval.PackedCorpus` view, honouring the query's
  ``top_k`` and ``category_filter``), and time each phase;
* :meth:`RetrievalService.batch_query` — fan a list of queries out over a
  thread pool (multi-user traffic); results come back in request order and
  are bit-identical to sequential execution because every learner is
  seeded and shares no mutable state across queries;
* :meth:`RetrievalService.fit` / :meth:`RetrievalService.rank_with` — the
  two halves of ``query`` for callers that train once and re-rank many
  times (:class:`~repro.session.RetrievalSession` uses these).

Per-query timing is recorded in :attr:`RetrievalService.history` for
throughput monitoring; :meth:`RetrievalService.warm` runs the bulk
preprocessing pass up front so serving latency is not charged the feature
extraction cost.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.api.learners import LearnedModel, Learner, make_learner
from repro.api.query import Query, QueryResult, QueryTiming
from repro.bags.bag import Bag, BagSet
from repro.core.cache import CacheStats, ConceptCache
from repro.core.feedback import Corpus
from repro.core.retrieval import (
    AUTO_SHARD_MIN_BAGS,
    RANK_MODES,
    PackedCorpus,
    RetrievalResult,
    packed_view,
)
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, QueryError


@dataclass(frozen=True)
class QueryRecord:
    """One row of the service's execution log."""

    query_id: str
    learner: str
    n_candidates: int
    timing: QueryTiming


@dataclass(frozen=True)
class FittedQuery:
    """A trained model bound to the corpus it should rank.

    Produced by :meth:`RetrievalService.fit`; consumed by
    :meth:`RetrievalService.rank_with`.
    """

    model: LearnedModel
    learner: Learner
    corpus: Corpus
    fit_seconds: float


class RetrievalService:
    """Executes retrieval queries against one image database.

    Thread-safe: :meth:`query` may be called concurrently (``batch_query``
    does exactly that).  Corpus caches are shared across queries; all
    learners are seeded, so concurrent execution cannot change results.

    Repeated training is short-circuited by a trained-concept cache keyed
    on the learner's configuration fingerprint plus a content hash of the
    example bags: a query whose (learner, params, example images) repeat —
    common under real traffic and in ``batch_query`` bursts — reuses the
    fitted model instead of re-running the multi-start optimisation.  Hits
    are bit-identical to retraining because every learner is deterministic.

    Args:
        database: the populated image database to serve.
        cache_size: capacity of the trained-concept cache; ``0`` or ``None``
            disables caching entirely.
        max_history: keep at most this many per-query timing records
            (oldest dropped first) so long-running servers do not leak
            memory; ``None`` keeps everything.  The lifetime query count
            survives trimming (see :meth:`stats`).
        rank_index: allow ``top_k`` queries over large corpora to route
            through the sharded bound-pruned rank index
            (:mod:`repro.core.sharding`); rankings are identical either
            way, so this is purely a performance knob.
        rank_shards: pin the index's shard count (``None`` = automatic).
        rank_mode: ``"exact"`` (default — bound-pruned, ordering-identical
            ranking) or ``"approx"`` (``top_k`` queries route through the
            hash-coded coarse tier, :mod:`repro.index.ann`, trading a
            measured recall@k for speed).  Stamped onto every packed view
            the service serves; per-request overrides ride the
            :class:`~repro.api.query.Query`.
        reorder_bags: re-pack the database's corpus in clustered-centroid
            order at warm time
            (:meth:`~repro.core.retrieval.PackedCorpus.reordered_by_centroid`
            — rankings are ordering-identical; pruning tightens because
            group envelopes stop depending on ingestion order).
    """

    def __init__(
        self,
        database: ImageDatabase,
        cache_size: int | None = 128,
        max_history: int | None = 1000,
        rank_index: bool = True,
        rank_shards: int | None = None,
        rank_mode: str = "exact",
        reorder_bags: bool = False,
    ) -> None:
        if max_history is not None and max_history < 0:
            raise QueryError(f"max_history must be >= 0 or None, got {max_history}")
        if rank_shards is not None and rank_shards < 1:
            raise QueryError(f"rank_shards must be >= 1 or None, got {rank_shards}")
        if rank_mode not in RANK_MODES:
            raise QueryError(
                f"rank_mode must be one of {RANK_MODES}, got {rank_mode!r}"
            )
        self._database = database
        self._corpora: dict[str, Corpus] = {"region-bags": database}
        self._lock = threading.Lock()
        self._history: list[QueryRecord] = []
        self._max_history = max_history
        self._n_queries = 0
        self._cache = ConceptCache(cache_size) if cache_size else None
        self._rank_index = bool(rank_index)
        self._rank_shards = rank_shards
        self._rank_mode = rank_mode
        self._reorder_bags = bool(reorder_bags)

    @property
    def database(self) -> ImageDatabase:
        """The database being served."""
        return self._database

    @property
    def concept_cache(self) -> ConceptCache | None:
        """The trained-concept cache (``None`` when disabled)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the concept cache (zeros when disabled)."""
        if self._cache is None:
            return CacheStats(hits=0, misses=0, entries=0, max_entries=0)
        return self._cache.stats

    @property
    def rank_index(self) -> bool:
        """Whether the sharded rank index may serve ``top_k`` queries."""
        return self._rank_index

    @property
    def rank_shards(self) -> int | None:
        """Pinned shard count for the rank index (``None`` = automatic)."""
        return self._rank_shards

    @property
    def rank_mode(self) -> str:
        """The serving rank mode (:data:`~repro.core.retrieval.RANK_MODES`)."""
        return self._rank_mode

    @property
    def reorder_bags(self) -> bool:
        """Whether :meth:`warm` re-packs the corpus in centroid order."""
        return self._reorder_bags

    @property
    def history(self) -> tuple[QueryRecord, ...]:
        """Per-query timing records, in completion order.

        Bounded to the most recent ``max_history`` records; the lifetime
        query count is reported by :meth:`stats`.
        """
        with self._lock:
            return tuple(self._history)

    @property
    def max_history(self) -> int | None:
        """The configured history bound (``None`` = unbounded)."""
        return self._max_history

    def stats(self) -> dict:
        """Point-in-time serving counters (plain JSON-safe dict).

        Keys: ``n_queries`` (lifetime, survives history trimming),
        ``history_len`` / ``max_history``, ``n_images`` / ``database_name``,
        ``corpus_keys`` (which bag corpora are warmed), the concept
        cache's ``hits`` / ``misses`` / ``hit_rate`` / ``entries`` /
        ``max_entries``, and — when the corpus carries a coarse tier —
        an ``ann`` block with its probe / hit-rate / candidate-size /
        fallback-to-exact counters
        (:meth:`repro.index.ann.CoarseIndex.stats`; ``None`` until a
        coarse index exists).
        """
        cache = self.cache_stats
        packed = self._region_packed()
        coarse = packed.cached_coarse_index if packed is not None else None
        with self._lock:
            history_len = len(self._history)
            n_queries = self._n_queries
            corpus_keys = sorted(self._corpora)
        return {
            "n_queries": n_queries,
            "history_len": history_len,
            "max_history": self._max_history,
            "n_images": len(self._database),
            # A service can wrap a bare PackedCorpus (sharded synthetic
            # corpora have no database object), which carries no name.
            "database_name": getattr(self._database, "name", ""),
            "corpus_keys": corpus_keys,
            "rank_index": {
                "enabled": self._rank_index,
                "shards": self._rank_shards,
                "mode": self._rank_mode,
                "reorder_bags": self._reorder_bags,
            },
            "ann": coarse.stats() if coarse is not None else None,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "entries": cache.entries,
                "max_entries": cache.max_entries,
            },
        }

    # ------------------------------------------------------------------ #
    # Corpus management                                                   #
    # ------------------------------------------------------------------ #

    def _region_packed(self) -> PackedCorpus | None:
        """The region corpus's cached packed view, or ``None`` — no build.

        A service can wrap either an :class:`ImageDatabase` (whose packer
        caches the view) or a bare :class:`PackedCorpus` (synthetic
        corpora — the view *is* the corpus).
        """
        if isinstance(self._database, PackedCorpus):
            return self._database
        cached = getattr(self._database, "cached_packed", None)
        return cached if isinstance(cached, PackedCorpus) else None

    def corpus_for(self, learner: Learner) -> Corpus:
        """The (cached) corpus view a learner ranks against."""
        key = learner.corpus_key
        with self._lock:
            corpus = self._corpora.get(key)
            if corpus is None:
                corpus = learner.corpus(self._database)
                self._corpora[key] = corpus
        return corpus

    @property
    def corpus_keys(self) -> tuple[str, ...]:
        """Keys of the currently cached bag corpora (sorted)."""
        with self._lock:
            return tuple(sorted(self._corpora))

    def get_corpus(self, key: str) -> Corpus:
        """The cached corpus under a key (snapshot layer's accessor).

        Raises:
            QueryError: when no corpus is cached under ``key``.
        """
        with self._lock:
            try:
                return self._corpora[key]
            except KeyError:
                raise QueryError(f"no corpus cached under key {key!r}") from None

    def adopt_corpus(self, key: str, corpus: Corpus) -> None:
        """Install a pre-built corpus under a learner family's corpus key.

        The snapshot layer uses this to restore warmed corpora (e.g. the
        colour baseline's SBN bags, rehydrated as a bare
        :class:`~repro.core.retrieval.PackedCorpus`) so a fresh worker
        never re-featurises them.
        """
        if not key:
            raise QueryError("corpus key must be a non-empty string")
        with self._lock:
            self._corpora[key] = corpus

    def warm(self, learner: str = "dd", **params) -> int:
        """Precompute the bag corpus a learner family uses; returns the image count.

        Builds the corpus's cached packed view (the serving hot path ranks
        against it) — and, on corpora large enough for the bound-pruned
        rank path, the shard index too — so neither feature extraction nor
        packing nor the index build is charged to the first query.  A
        ``reorder_bags`` service re-packs the view in clustered-centroid
        order first (adopted back into the adapter's cache, so every later
        caller sees the reordered view); a ``rank_mode="approx"`` service
        additionally builds the coarse tier.
        """
        resolved = make_learner(learner, **params)
        resolved.bind(self._database)
        corpus = self.corpus_for(resolved)
        packer = getattr(corpus, "packed", None)
        if callable(packer):
            packed = packer()  # featurises every image into the cached view
            if isinstance(packed, PackedCorpus):
                if self._reorder_bags:
                    adopt = getattr(corpus, "adopt_packed", None)
                    if callable(adopt):
                        packed, _ = packed.reordered_by_centroid()
                        adopt(packed)
                    elif packed is self._database:
                        # A bare PackedCorpus database (synthetic corpora)
                        # has no adapter cache to adopt into — the service
                        # itself holds the only reference, so swap it.
                        packed, _ = packed.reordered_by_centroid()
                        self._database = packed
                        with self._lock:
                            self._corpora["region-bags"] = packed
                large = packed.n_bags >= AUTO_SHARD_MIN_BAGS
                if self._rank_index and large:
                    packed.shard_index(self._rank_shards)
                if self._rank_mode == "approx" and large:
                    packed.coarse_index()
        else:
            for image_id in self._database.image_ids:
                corpus.instances_for(image_id)
        return len(self._database)

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def fit(
        self,
        positive_ids: Sequence[str],
        negative_ids: Sequence[str] = (),
        learner: str = "dd",
        params: Mapping[str, object] | None = None,
    ) -> FittedQuery:
        """Train a learner on example images; returns the fitted model + corpus.

        Raises:
            LearnerError: unknown learner name or bad parameters.
            DatabaseError: an example id is not in the database.
        """
        started_at = time.perf_counter()
        resolved = make_learner(learner, **dict(params or {}))
        resolved.bind(self._database)
        corpus = self.corpus_for(resolved)
        for image_id in (*positive_ids, *negative_ids):
            if image_id not in self._database:
                raise DatabaseError(f"unknown image id {image_id!r}")
        bag_set = BagSet()
        for image_id in positive_ids:
            bag_set.add(
                Bag(instances=corpus.instances_for(image_id), label=True, bag_id=image_id)
            )
        for image_id in negative_ids:
            bag_set.add(
                Bag(instances=corpus.instances_for(image_id), label=False, bag_id=image_id)
            )
        model = self._fit_cached(resolved, bag_set)
        return FittedQuery(
            model=model,
            learner=resolved,
            corpus=corpus,
            fit_seconds=time.perf_counter() - started_at,
        )

    def _fit_cached(self, learner: Learner, bag_set: BagSet) -> LearnedModel:
        """Fit through the concept cache when the learner is fingerprintable.

        Only learners exposing a configuration ``fingerprint`` (the concept
        learners) are cached; the sanity rankers train in microseconds and
        the fingerprint cannot vouch for them.
        """
        fingerprint = getattr(learner, "fingerprint", None)
        if self._cache is None or not isinstance(fingerprint, str):
            return learner.fit(bag_set)
        key = ConceptCache.key_for("model", fingerprint, bag_set)
        model, _ = self._cache.compute_if_absent(key, lambda: learner.fit(bag_set))
        return model

    def rank_with(
        self,
        fitted: FittedQuery,
        candidate_ids: Sequence[str] | None = None,
        exclude: Sequence[str] = (),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Rank database images with an already-fitted model.

        The corpus is consumed in packed (columnar) form — the service asks
        the fitted corpus for its cached
        :class:`~repro.core.retrieval.PackedCorpus` view and hands that to
        the model's vectorised rank path.

        Args:
            fitted: the :meth:`fit` output.
            candidate_ids: which images to rank; all images when ``None``.
            exclude: image ids to leave out (e.g. the training examples).
            top_k: truncate the ranking to the best ``top_k`` entries; the
                result still reports its ``total_candidates``.
            category_filter: rank only candidates of this category.
        """
        if candidate_ids is None:
            chosen: tuple[str, ...] | None = None
            if not callable(getattr(fitted.corpus, "packed", None)):
                # Legacy custom corpora only answer explicit id lists.
                chosen = self._database.image_ids
        else:
            chosen = tuple(candidate_ids)
            for image_id in chosen:
                if image_id not in self._database:
                    raise DatabaseError(f"unknown image id {image_id!r}")
        packed = packed_view(fitted.corpus, chosen)
        if isinstance(packed, PackedCorpus):
            self.apply_rank_policy(packed)
        return fitted.model.rank(
            packed, exclude=exclude, top_k=top_k, category_filter=category_filter
        )

    def packed_database(
        self, candidate_ids: Sequence[str] | None = None
    ) -> PackedCorpus:
        """The database's packed view with this service's rank policy applied.

        The one spelling of "give me the corpus the rank path scores"
        shared by the wire ``rank`` endpoint, the ``rank_fragment``
        scatter workers, and the scatter coordinator — all three must
        score the *same* cached view under the *same* policy or their
        results could diverge.  ``candidate_ids`` selects a subset view
        (non-routable, see :func:`~repro.core.retrieval.packed_view`).
        """
        packed = packed_view(
            self._database,
            None if candidate_ids is None else tuple(candidate_ids),
        )
        if isinstance(packed, PackedCorpus):
            self.apply_rank_policy(packed)
        return packed

    def apply_rank_policy(self, packed: PackedCorpus) -> None:
        """Stamp this service's rank-index policy onto a packed view.

        The policy travels with the corpus view, so the model's Ranker
        routes (or refuses to route) accordingly.  Ephemeral views —
        subset selections and legacy re-packs, discarded when the query
        returns — arrive already non-routable
        (:func:`~repro.core.retrieval.packed_view` disables the index on
        every view no cache owns), and nothing here re-enables them.  The
        policy is only stamped when it differs from the view's current
        one, so a default-configured service never perturbs a view
        another service over the same database configured explicitly.
        """
        if not self._rank_index and packed.rank_index_enabled:
            packed.configure_rank_index(enabled=False)
        if (
            self._rank_shards is not None
            and packed.rank_index_shards != self._rank_shards
        ):
            packed.configure_rank_index(n_shards=self._rank_shards)
        if packed.rank_mode != self._rank_mode:
            packed.configure_rank_index(rank_mode=self._rank_mode)

    def query(self, query: Query) -> QueryResult:
        """Execute one query end to end (fit + rank + timing)."""
        if not isinstance(query, Query):
            raise QueryError(f"expected a Query, got {type(query).__name__}")
        started_at = time.perf_counter()
        fitted = self.fit(
            query.positive_ids,
            query.negative_ids,
            learner=query.learner,
            params=query.params,
        )
        rank_started_at = time.perf_counter()
        ranking = self.rank_with(
            fitted,
            candidate_ids=query.candidate_ids,
            exclude=query.example_ids,
            top_k=query.top_k,
            category_filter=query.category_filter,
        )
        finished_at = time.perf_counter()
        timing = QueryTiming(
            fit_seconds=fitted.fit_seconds,
            rank_seconds=finished_at - rank_started_at,
            total_seconds=finished_at - started_at,
        )
        with self._lock:
            self._n_queries += 1
            self._history.append(
                QueryRecord(
                    query_id=query.query_id,
                    learner=query.learner,
                    n_candidates=ranking.total_candidates,
                    timing=timing,
                )
            )
            if self._max_history is not None and len(self._history) > self._max_history:
                del self._history[: len(self._history) - self._max_history]
        return QueryResult(
            query=query,
            ranking=ranking,
            concept=fitted.model.concept,
            training=fitted.model.training,
            timing=timing,
        )

    def batch_query(
        self, queries: Sequence[Query], workers: int | None = None
    ) -> list[QueryResult]:
        """Execute many queries; results come back in request order.

        Args:
            queries: the requests to run.
            workers: thread-pool size; ``None`` or 1 runs sequentially.
                Rankings are identical either way — learners are seeded and
                queries share no mutable state.

        Raises:
            QueryError: on a non-positive ``workers``.
        """
        if workers is not None and workers < 1:
            raise QueryError(f"workers must be >= 1 or None, got {workers}")
        queries = list(queries)
        if workers is None or workers == 1 or len(queries) <= 1:
            return [self.query(query) for query in queries]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.query, queries))
