"""Figure 4-19: smoothing and sampling at different resolutions.

The paper sweeps the feature resolution h over 6x6, 10x10 and 15x15 on
sunsets, waterfalls and fields: "as we increase the resolution, performance
first rises, then declines" in many cases — too little information at low h,
shift sensitivity and noise at high h.  The reproduction claim: performance
is not monotone increasing in h across categories (the best h is in the
interior or at 10 for at least one category).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale

#: The resolutions of Figure 4-19.
RESOLUTIONS: tuple[int, ...] = (6, 10, 15)

#: The categories the figure shows.
CATEGORIES: tuple[str, ...] = ("sunset", "waterfall", "field")


@dataclass(frozen=True)
class ResolutionResult:
    """Results across resolutions for one category."""

    target_category: str
    by_resolution: dict[int, ExperimentResult]

    def average_precisions(self) -> dict[int, float]:
        """resolution -> average precision."""
        return {h: result.average_precision for h, result in self.by_resolution.items()}


def figure_4_19(
    scale: BenchScale | None = None,
    categories: tuple[str, ...] = CATEGORIES,
    resolutions: tuple[int, ...] = RESOLUTIONS,
    seed: int = 17,
) -> list[ResolutionResult]:
    """Run the resolution ablation for each category."""
    scale = scale or resolve_scale()
    base = base_config_kwargs(scale)
    results = []
    for category in categories:
        by_resolution: dict[int, ExperimentResult] = {}
        for resolution in resolutions:
            database = scene_database(scale, resolution=resolution)
            config = ExperimentConfig(
                target_category=category,
                scheme="inequality",
                beta=0.5,
                seed=seed,
                **base,
            )
            by_resolution[resolution] = RetrievalExperiment(database, config).run()
        results.append(
            ResolutionResult(target_category=category, by_resolution=by_resolution)
        )
    return results
