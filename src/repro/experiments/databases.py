"""Shared, cached experiment databases.

Building and featurising a database is the dominant fixed cost of the
benchmark suite, so the scene and object databases for a given scale are
built once per process and shared by every experiment module.
"""

from __future__ import annotations

from functools import lru_cache

from repro.database.store import ImageDatabase
from repro.datasets.loader import build_object_database, build_scene_database
from repro.experiments.scale import BenchScale, resolve_scale
from repro.imaging.features import FeatureConfig
from repro.imaging.regions import region_family

#: Seed shared by all experiment databases — experiments vary everything
#: else, so the underlying images stay comparable across figures.
DATABASE_SEED = 20000


@lru_cache(maxsize=8)
def _scene_database(scale_name: str, resolution: int, family: str) -> ImageDatabase:
    scale = resolve_scale(scale_name)
    config = FeatureConfig(resolution=resolution, region_family=region_family(family))
    database = build_scene_database(
        images_per_category=scale.scene_images_per_category,
        size=scale.image_size,
        seed=DATABASE_SEED,
        feature_config=config,
    )
    database.precompute_features()
    return database


@lru_cache(maxsize=8)
def _object_database(scale_name: str, resolution: int, family: str) -> ImageDatabase:
    scale = resolve_scale(scale_name)
    config = FeatureConfig(resolution=resolution, region_family=region_family(family))
    database = build_object_database(
        images_per_category=scale.object_images_per_category,
        size=scale.image_size,
        seed=DATABASE_SEED,
        feature_config=config,
    )
    database.precompute_features()
    return database


def scene_database(
    scale: BenchScale, resolution: int = 10, family: str = "default20"
) -> ImageDatabase:
    """The (cached) scene database for a scale/feature configuration."""
    return _scene_database(scale.name, resolution, family)


def object_database(
    scale: BenchScale, resolution: int = 10, family: str = "default20"
) -> ImageDatabase:
    """The (cached) object database for a scale/feature configuration."""
    return _object_database(scale.name, resolution, family)


def base_config_kwargs(scale: BenchScale, kind: str = "scenes") -> dict:
    """Experiment-config fields implied by a scale.

    Args:
        scale: the benchmark scale.
        kind: ``"scenes"`` or ``"objects"`` — picks the split fraction (see
            :class:`~repro.experiments.scale.BenchScale`).
    """
    fraction = (
        scale.scene_training_fraction
        if kind == "scenes"
        else scale.object_training_fraction
    )
    return {
        "max_iterations": scale.max_iterations,
        "start_bag_subset": scale.start_bag_subset,
        "start_instance_stride": scale.start_instance_stride,
        "rounds": scale.rounds,
        "training_fraction": fraction,
    }
