"""Figures 4-20 / 4-21: comparison with the Maron & Lakshmi Ratan approach.

The thesis compares its correlation-region system against the ICML'98
colour-feature DD system on waterfall retrieval, showing the two perform
"very close" on natural scenes — once with our original-DD variant
(Figure 4-20) and once with the inequality beta = 0.25 variant
(Figure 4-21).  The colour baseline runs through the identical feedback
loop; only the bag representation differs (see
:mod:`repro.baselines.maron_ratan`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.maron_ratan import ColorCorpus
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import FeedbackLoop, select_examples
from repro.eval.curves import PrecisionRecallCurve, RecallCurve
from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale


@dataclass(frozen=True)
class BaselineResult:
    """The colour baseline's final retrieval, in curve form."""

    recall_curve: RecallCurve
    pr_curve: PrecisionRecallCurve

    @property
    def average_precision(self) -> float:
        """Average precision of the baseline's test ranking."""
        return self.pr_curve.average_precision()


@dataclass(frozen=True)
class PreviousApproachComparison:
    """One figure's our-system / colour-baseline pairing."""

    figure: str
    ours: ExperimentResult
    baseline: BaselineResult

    @property
    def gap(self) -> float:
        """AP(ours) - AP(baseline); the paper expects this near zero."""
        return self.ours.average_precision - self.baseline.average_precision


def _run_baseline(
    database, split, target_category: str, scale: BenchScale, seed: int
) -> BaselineResult:
    corpus = ColorCorpus(database)
    selection = select_examples(
        corpus, split.potential_ids, target_category, n_positive=5, n_negative=5, seed=seed
    )
    base = base_config_kwargs(scale)
    trainer = DiverseDensityTrainer(
        TrainerConfig(
            scheme="original",
            max_iterations=base["max_iterations"],
            start_bag_subset=base["start_bag_subset"],
            start_instance_stride=1,  # colour bags are small; keep all starts
            seed=seed,
        )
    )
    loop = FeedbackLoop(
        corpus=corpus,
        trainer=trainer,
        target_category=target_category,
        potential_ids=split.potential_ids,
        test_ids=split.test_ids,
        rounds=base["rounds"],
        false_positives_per_round=5,
    )
    outcome = loop.run(selection)
    relevance = outcome.test_ranking.relevance(target_category)
    n_relevant = sum(
        1 for image_id in split.test_ids if corpus.category_of(image_id) == target_category
    )
    return BaselineResult(
        recall_curve=RecallCurve(relevance, n_relevant),
        pr_curve=PrecisionRecallCurve(relevance, n_relevant),
    )


def figures_4_20_4_21(
    scale: BenchScale | None = None,
    target_category: str = "waterfall",
    seed: int = 21,
) -> list[PreviousApproachComparison]:
    """Both comparison figures on a shared split.

    Returns Figure 4-20 (our original DD vs baseline) and Figure 4-21 (our
    inequality beta = 0.25 vs the same baseline run).
    """
    scale = scale or resolve_scale()
    database = scene_database(scale)
    base = base_config_kwargs(scale)

    ours_original_cfg = ExperimentConfig(
        target_category=target_category, scheme="original", seed=seed, **base
    )
    first = RetrievalExperiment(database, ours_original_cfg)
    split = first.split
    ours_original = first.run()
    ours_inequality = RetrievalExperiment(
        database,
        ours_original_cfg.with_overrides(scheme="inequality", beta=0.25),
        split=split,
    ).run()
    baseline = _run_baseline(database, split, target_category, scale, seed)

    return [
        PreviousApproachComparison(
            figure="Figure 4-20", ours=ours_original, baseline=baseline
        ),
        PreviousApproachComparison(
            figure="Figure 4-21", ours=ours_inequality, baseline=baseline
        ),
    ]
