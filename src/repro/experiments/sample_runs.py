"""Figures 4-3 .. 4-7: sample three-round feedback runs and their curves.

* Figure 4-3 — retrieving waterfalls (natural-scene database) with 3 rounds
  of training, 5 false positives promoted after rounds 1 and 2.
* Figure 4-4 — the same protocol retrieving cars (object database).
* Figure 4-5 / 4-6 — the recall curve and precision-recall curve of the
  waterfall run.
* Figure 4-7 — the "somewhat misleading" precision-recall curve: an
  incorrect first retrieval followed by correct ones pins the curve's left
  edge low even though the ranking is good.  We reproduce it analytically
  from such a relevance pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.curves import PrecisionRecallCurve, RecallCurve
from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, object_database, scene_database
from repro.experiments.scale import BenchScale, resolve_scale


@dataclass(frozen=True)
class SampleRun:
    """One figure's feedback run."""

    figure: str
    target_category: str
    result: ExperimentResult

    @property
    def round_precisions(self) -> tuple[float, ...]:
        """Training-set precision@10 per round — should trend upward."""
        return tuple(r.training_precision_at_10 for r in self.result.outcome.rounds)


def figure_4_3(scale: BenchScale | None = None, seed: int = 3) -> SampleRun:
    """The waterfall sample run (Figure 4-3)."""
    scale = scale or resolve_scale()
    database = scene_database(scale)
    config = ExperimentConfig(
        target_category="waterfall",
        scheme="inequality",
        beta=0.5,
        seed=seed,
        **base_config_kwargs(scale),
    )
    return SampleRun(
        figure="Figure 4-3",
        target_category="waterfall",
        result=RetrievalExperiment(database, config).run(),
    )


def figure_4_4(scale: BenchScale | None = None, seed: int = 3) -> SampleRun:
    """The car sample run (Figure 4-4)."""
    scale = scale or resolve_scale()
    database = object_database(scale)
    config = ExperimentConfig(
        target_category="car",
        scheme="identical",
        seed=seed,
        n_negative=5,
        **base_config_kwargs(scale, kind="objects"),
    )
    return SampleRun(
        figure="Figure 4-4",
        target_category="car",
        result=RetrievalExperiment(database, config).run(),
    )


@dataclass(frozen=True)
class CurvePair:
    """Figures 4-5/4-6: both curves of one run."""

    recall_curve: RecallCurve
    pr_curve: PrecisionRecallCurve


def figures_4_5_4_6(scale: BenchScale | None = None, seed: int = 3) -> CurvePair:
    """The curves of the Figure 4-3 waterfall run."""
    run = figure_4_3(scale, seed)
    return CurvePair(recall_curve=run.result.recall_curve, pr_curve=run.result.pr_curve)


def figure_4_7() -> PrecisionRecallCurve:
    """The "misleading" PR curve: first image wrong, next seven right.

    The thesis constructs this case to warn that a single early miss drags
    the curve's left edge to 0.5 even when retrieval is otherwise excellent.
    """
    relevance = np.array(
        [False] + [True] * 7 + [False, True] * 10 + [False] * 20, dtype=bool
    )
    return PrecisionRecallCurve(relevance)
