"""Figure 4-22: starting minimisation from a subset of positive bags.

Section 4.3's speed-up: instead of hill-climbing from every instance of
every positive bag, start from the instances of only k out of 5 positive
bags.  The paper's finding, using mean precision for recall in [0.3, 0.4]:
k = 2 recovers ~95% of full performance and k = 3 is indistinguishable
from the original, while training time scales roughly linearly in k.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale

#: Subset sizes swept (out of 5 positive bags).
SUBSET_SIZES: tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class SubsetPoint:
    """One subset size's performance and cost."""

    n_start_bags: int
    band_precision: float
    relative_performance: float
    training_seconds: float


@dataclass(frozen=True)
class StartSubsetSweep:
    """The full Figure 4-22 series."""

    target_category: str
    points: tuple[SubsetPoint, ...]
    full_band_precision: float


def figure_4_22(
    scale: BenchScale | None = None,
    target_category: str = "waterfall",
    subset_sizes: tuple[int, ...] = SUBSET_SIZES,
    seed: int = 25,
) -> StartSubsetSweep:
    """Sweep the start-bag subset size on one query.

    Every run shares the split and initial examples; only the restart
    strategy changes.  ``relative_performance`` is band precision divided by
    the all-bags (k = 5) band precision.
    """
    scale = scale or resolve_scale()
    database = scene_database(scale)
    base = base_config_kwargs(scale)
    # The restart subset is the experiment variable, so drop the scale's own
    # subset default (k = max means all bags).  The within-bag instance
    # stride is orthogonal to the subset question and is kept from the scale
    # so quick runs stay quick; the paper-scale configuration uses stride 1.
    base["start_bag_subset"] = None

    reference_cfg = ExperimentConfig(
        target_category=target_category,
        scheme="inequality",
        beta=0.5,
        seed=seed,
        n_positive=5,
        **base,
    )
    first = RetrievalExperiment(database, reference_cfg)
    split = first.split

    results: dict[int, ExperimentResult] = {}
    for k in subset_sizes:
        config = reference_cfg.with_overrides(
            start_bag_subset=None if k >= 5 else k
        )
        results[k] = RetrievalExperiment(database, config, split=split).run()

    full = results[max(subset_sizes)]
    full_band = full.band_precision
    points = tuple(
        SubsetPoint(
            n_start_bags=k,
            band_precision=results[k].band_precision,
            relative_performance=(
                results[k].band_precision / full_band if full_band > 0 else 0.0
            ),
            training_seconds=results[k].outcome.final_training.elapsed_seconds,
        )
        for k in subset_sizes
    )
    return StartSubsetSweep(
        target_category=target_category, points=points, full_band_precision=full_band
    )
