"""Figure 4-18: choosing different numbers of instances per bag.

The paper compares 18, 40 and 84 instances per bag (9, 20 and 42 regions
with mirrors) on sunsets, waterfalls and fields: "having more instances per
bag means a higher chance of hitting the 'right' region.  However, it also
means introducing more noise ... more instances per bag do not guarantee
better performance."  The reproduction claim: the 40-instance default is not
dominated by 84, i.e. performance is non-monotone in bag size for at least
one category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale

#: Instance counts of Figure 4-18 mapped to region families.
BAG_SIZES: tuple[tuple[int, str], ...] = ((18, "small9"), (40, "default20"), (84, "large42"))

#: The categories the figure shows.
CATEGORIES: tuple[str, ...] = ("sunset", "waterfall", "field")


@dataclass(frozen=True)
class BagSizeResult:
    """Results across bag sizes for one category."""

    target_category: str
    by_instances: dict[int, ExperimentResult]

    def average_precisions(self) -> dict[int, float]:
        """instances-per-bag -> average precision."""
        return {n: result.average_precision for n, result in self.by_instances.items()}


def figure_4_18(
    scale: BenchScale | None = None,
    categories: tuple[str, ...] = CATEGORIES,
    seed: int = 13,
) -> list[BagSizeResult]:
    """Run the bag-size ablation for each category.

    Each bag size uses its own featurised database (features depend on the
    region family); the split seed is shared so partitions align.
    """
    scale = scale or resolve_scale()
    base = base_config_kwargs(scale)
    results = []
    for category in categories:
        by_instances: dict[int, ExperimentResult] = {}
        for instances, family in BAG_SIZES:
            database = scene_database(scale, resolution=10, family=family)
            config = ExperimentConfig(
                target_category=category,
                scheme="inequality",
                beta=0.5,
                seed=seed,
                **base,
            )
            by_instances[instances] = RetrievalExperiment(database, config).run()
        results.append(BagSizeResult(target_category=category, by_instances=by_instances))
    return results
