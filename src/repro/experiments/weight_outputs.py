"""Figures 3-7 / 3-8 / 3-9: the DD output under different weight schemes.

The thesis trains one waterfall query and displays the resulting ``t`` and
``w`` as 10x10 matrices: the original algorithm leaves only a few large
weights (Figure 3-7), identical weights are flat at 1 (Figure 3-8), and the
beta = 0.5 inequality constraint keeps at least half the weight mass spread
out (Figure 3-9).  This experiment reproduces the three concepts from one
bag set and summarises each weight distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bags.bag import BagSet
from repro.core.concept import LearnedConcept, WeightProfile
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import select_examples
from repro.database.store import ImageDatabase
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale


@dataclass(frozen=True)
class SchemeOutput:
    """One figure's worth of DD output."""

    figure: str
    scheme: str
    concept: LearnedConcept
    profile: WeightProfile


def _waterfall_bag_set(database: ImageDatabase, seed: int) -> BagSet:
    selection = select_examples(
        database, database.image_ids, "waterfall", n_positive=5, n_negative=5, seed=seed
    )
    bag_set = BagSet()
    for image_id in selection.positive_ids:
        bag_set.add(database.bag_for(image_id, label=True))
    for image_id in selection.negative_ids:
        bag_set.add(database.bag_for(image_id, label=False))
    return bag_set


def figures_3_7_to_3_9(
    scale: BenchScale | None = None, seed: int = 7
) -> list[SchemeOutput]:
    """Train the same waterfall query under the three schemes of Ch. 3.

    Returns outputs for (original, identical, inequality beta=0.5) in figure
    order.  The reproduction claim: the original scheme's weight vector has
    a much larger near-zero fraction (and lower entropy) than the
    constrained one; identical weights are exactly flat.
    """
    scale = scale or resolve_scale()
    database = scene_database(scale)
    bag_set = _waterfall_bag_set(database, seed)
    base = base_config_kwargs(scale)

    outputs = []
    for figure, scheme, extra in (
        ("Figure 3-7", "original", {}),
        ("Figure 3-8", "identical", {}),
        ("Figure 3-9", "inequality", {"beta": 0.5}),
    ):
        trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme=scheme,
                max_iterations=base["max_iterations"],
                start_bag_subset=base["start_bag_subset"],
                start_instance_stride=base["start_instance_stride"],
                seed=seed,
                **extra,
            )
        )
        concept = trainer.train(bag_set).concept
        outputs.append(
            SchemeOutput(
                figure=figure,
                scheme=scheme,
                concept=concept,
                profile=concept.weight_profile(),
            )
        )
    return outputs
