"""Figures 4-8 .. 4-14: weight-control scheme comparison across categories.

The paper compares original DD, identical weights and the inequality
constraint (beta = 0.5) on six retrieval targets — waterfalls, fields,
sunsets/sunrises (scenes) and cars, pants, airplanes (objects) — finding
"a lot of variation in the relative performance" but the inequality method
best or close to best in a majority of cases, and identical weights
sometimes best on objects.  Figure 4-14 revisits cars with beta = 0.25.

All schemes for one category share the same split and initial examples, so
the comparison isolates the weight treatment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, object_database, scene_database
from repro.experiments.scale import BenchScale, resolve_scale

#: The categories of Figures 4-8 .. 4-13 and the database each lives in.
COMPARISON_TARGETS: tuple[tuple[str, str, str], ...] = (
    ("Figure 4-8", "waterfall", "scenes"),
    ("Figure 4-9", "field", "scenes"),
    ("Figure 4-10", "sunset", "scenes"),
    ("Figure 4-11", "car", "objects"),
    ("Figure 4-12", "pants", "objects"),
    ("Figure 4-13", "airplane", "objects"),
)

#: The three schemes compared in each figure.
SCHEMES: tuple[str, ...] = ("original", "identical", "inequality")


@dataclass(frozen=True)
class SchemeComparison:
    """All scheme results for one figure/category."""

    figure: str
    target_category: str
    database_kind: str
    results: dict[str, ExperimentResult]

    def average_precisions(self) -> dict[str, float]:
        """Scheme name -> average precision."""
        return {name: result.average_precision for name, result in self.results.items()}

    def best_scheme(self) -> str:
        """The scheme with the highest average precision."""
        return max(self.results, key=lambda name: self.results[name].average_precision)


def compare_category(
    figure: str,
    target_category: str,
    database_kind: str,
    scale: BenchScale | None = None,
    beta: float = 0.5,
    seed: int = 5,
) -> SchemeComparison:
    """Run the three-scheme comparison for one category on a shared split."""
    scale = scale or resolve_scale()
    database = (
        scene_database(scale) if database_kind == "scenes" else object_database(scale)
    )
    base = base_config_kwargs(scale, kind=database_kind)
    shared_split = None
    results: dict[str, ExperimentResult] = {}
    for scheme in SCHEMES:
        config = ExperimentConfig(
            target_category=target_category,
            scheme=scheme,
            beta=beta,
            seed=seed,
            **base,
        )
        experiment = RetrievalExperiment(database, config, split=shared_split)
        shared_split = experiment.split
        results[scheme] = experiment.run()
    return SchemeComparison(
        figure=figure,
        target_category=target_category,
        database_kind=database_kind,
        results=results,
    )


def figures_4_8_to_4_13(
    scale: BenchScale | None = None, seed: int = 5
) -> list[SchemeComparison]:
    """The full six-category comparison suite."""
    scale = scale or resolve_scale()
    return [
        compare_category(figure, category, kind, scale, beta=0.5, seed=seed)
        for figure, category, kind in COMPARISON_TARGETS
    ]


def figure_4_14(scale: BenchScale | None = None, seed: int = 5) -> SchemeComparison:
    """Cars with beta = 0.25 — the constraint level the paper found better."""
    scale = scale or resolve_scale()
    return compare_category("Figure 4-14", "car", "objects", scale, beta=0.25, seed=seed)
