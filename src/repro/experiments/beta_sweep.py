"""Figures 4-15 .. 4-17: sweeping beta in the inequality constraint.

The thesis varies beta for the sunset/sunrise query and observes that "as
beta moves towards 0, the precision-recall curve tends to move close to that
of the original DD algorithm.  As beta moves towards 1, the precision-recall
curve tends to move close to that of forcing all weights to be identical."
(The endpoints need not match exactly — different minimisers — which the
thesis notes in a footnote.)

We sweep the *waterfall* query by default: on the synthetic substrate the
sunset category saturates (every scheme reaches AP 1.0), which would make
the interpolation claim hold vacuously; waterfalls keep the endpoints apart
so the sweep is informative.  Pass ``target_category="sunset"`` to match the
paper's category exactly.

The reproduction claim tested here: the inequality result at beta = 0 is
closer (in average precision) to the original-DD result than the beta = 1
result is, and vice versa at beta = 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.experiments.databases import base_config_kwargs, scene_database
from repro.experiments.scale import BenchScale, resolve_scale

#: The beta grid of Figures 4-15 .. 4-17.
PAPER_BETAS: tuple[float, ...] = (0.0, 0.1, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 1.0)


@dataclass(frozen=True)
class BetaSweep:
    """All sweep results plus the two reference schemes."""

    target_category: str
    betas: tuple[float, ...]
    by_beta: dict[float, ExperimentResult]
    original: ExperimentResult
    identical: ExperimentResult

    def average_precisions(self) -> dict[float, float]:
        """beta -> average precision."""
        return {beta: result.average_precision for beta, result in self.by_beta.items()}

    def endpoint_gaps(self) -> tuple[float, float]:
        """|AP(beta=min) - AP(original)| and |AP(beta=max) - AP(identical)|."""
        low = min(self.betas)
        high = max(self.betas)
        return (
            abs(self.by_beta[low].average_precision - self.original.average_precision),
            abs(self.by_beta[high].average_precision - self.identical.average_precision),
        )


def figures_4_15_to_4_17(
    scale: BenchScale | None = None,
    target_category: str = "waterfall",
    betas: tuple[float, ...] = PAPER_BETAS,
    seed: int = 9,
) -> BetaSweep:
    """Run the beta sweep plus the original/identical references."""
    scale = scale or resolve_scale()
    database = scene_database(scale)
    base = base_config_kwargs(scale)

    reference = ExperimentConfig(
        target_category=target_category, scheme="original", seed=seed, **base
    )
    first = RetrievalExperiment(database, reference)
    split = first.split
    original = first.run()
    identical = RetrievalExperiment(
        database,
        reference.with_overrides(scheme="identical"),
        split=split,
    ).run()

    by_beta: dict[float, ExperimentResult] = {}
    for beta in betas:
        config = reference.with_overrides(scheme="inequality", beta=beta)
        by_beta[beta] = RetrievalExperiment(database, config, split=split).run()
    return BetaSweep(
        target_category=target_category,
        betas=tuple(betas),
        by_beta=by_beta,
        original=original,
        identical=identical,
    )
