"""Benchmark scaling: quick defaults vs paper-sized runs.

Every experiment module takes a :class:`BenchScale`.  The default ``quick``
scale keeps the full pipeline (all stages, all schemes) but shrinks the
databases and restart counts so the whole benchmark suite finishes in
minutes.  Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run
the paper-sized databases (500 scenes / 228 objects, all restarts); shapes
are the same, wall-clock is hours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import EvaluationError

_ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade fidelity for wall-clock time.

    Attributes:
        name: ``"quick"``, ``"medium"`` or ``"paper"``.
        scene_images_per_category: database size knob (paper: 100).
        object_images_per_category: database size knob (paper: 12).
        image_size: rendered image side in pixels.
        max_iterations: per-start solver cap.
        start_bag_subset: positive-bag restart subset (``None`` = all, as in
            the original algorithm).
        start_instance_stride: restart thinning within each start bag.
        rounds: feedback training rounds.
        scene_training_fraction: potential-training share per scene category
            (paper: 0.2 on the 100-per-category database).
        object_training_fraction: potential-training share per object
            category.  The thesis's 20% would leave only ~2 images per
            12-image category — too few to supply its own 5 positive
            examples — so object experiments use a 50% split at every scale
            (documented in EXPERIMENTS.md).
    """

    name: str
    scene_images_per_category: int
    object_images_per_category: int
    image_size: tuple[int, int]
    max_iterations: int
    start_bag_subset: int | None
    start_instance_stride: int
    rounds: int
    scene_training_fraction: float
    object_training_fraction: float


_SCALES = {
    "quick": BenchScale(
        name="quick",
        scene_images_per_category=20,
        object_images_per_category=12,
        image_size=(80, 80),
        max_iterations=50,
        start_bag_subset=2,
        start_instance_stride=3,
        rounds=3,
        scene_training_fraction=0.4,
        object_training_fraction=0.5,
    ),
    "medium": BenchScale(
        name="medium",
        scene_images_per_category=40,
        object_images_per_category=12,
        image_size=(96, 96),
        max_iterations=80,
        start_bag_subset=3,
        start_instance_stride=2,
        rounds=3,
        scene_training_fraction=0.3,
        object_training_fraction=0.5,
    ),
    "paper": BenchScale(
        name="paper",
        scene_images_per_category=100,
        object_images_per_category=12,
        image_size=(96, 96),
        max_iterations=150,
        start_bag_subset=None,
        start_instance_stride=1,
        rounds=3,
        scene_training_fraction=0.2,
        object_training_fraction=0.5,
    ),
}


def resolve_scale(name: str | None = None) -> BenchScale:
    """Pick a scale: explicit name, else ``$REPRO_BENCH_SCALE``, else quick.

    Raises:
        EvaluationError: for an unknown scale name.
    """
    chosen = name or os.environ.get(_ENV_VAR, "quick")
    try:
        return _SCALES[chosen]
    except KeyError:
        known = ", ".join(sorted(_SCALES))
        raise EvaluationError(f"unknown bench scale {chosen!r}; known: {known}") from None
