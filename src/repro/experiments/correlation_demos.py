"""Correlation demonstrations: Table 3.1, Figure 3-1 and Figures 3-3/3-4.

* Table 3.1 shows that after smoothing-and-sampling (h = 10), correlation
  coefficients separate same-category object pairs (0.65 .. 0.84 in the
  thesis) from cross-category pairs (0.1 .. 0.25).
* Figure 3-1 illustrates 1-D correlation at r = 1, r ~ 0 and r = -1.
* Figures 3-3/3-4 show that two multi-object images correlate poorly as
  wholes (0.118) but strongly on matched regions (0.674) — the argument for
  region bags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import category_rng
from repro.datasets.objects import render_object
from repro.datasets.scenes import render_scene
from repro.datasets.signals import (
    inversely_correlated_pair,
    perfectly_correlated_pair,
    uncorrelated_pair,
)
from repro.imaging.correlation import correlation_coefficient, image_correlation
from repro.imaging.image import to_gray
from repro.imaging.regions import Region


@dataclass(frozen=True)
class PairCorrelation:
    """One Table 3.1 row: an image pair and its correlation."""

    first: str
    second: str
    same_category: bool
    correlation: float


def table_3_1(
    seed: int = 0, resolution: int = 10, size: tuple[int, int] = (80, 80)
) -> list[PairCorrelation]:
    """Reproduce Table 3.1: correlations of same/cross-category object pairs.

    Returns three same-category pairs followed by three cross-category
    pairs, mirroring the table's 4-high / 2-low layout (the thesis shows six
    rows; the exact pictures are unrecoverable, the high/low split is the
    claim under test).
    """
    def gray(category: str, index: int) -> np.ndarray:
        rng = category_rng(seed, category, index)
        return to_gray(render_object(category, rng, size))

    pairs = [
        ("car", 0, "car", 1, True),
        ("airplane", 0, "airplane", 1, True),
        ("pants", 0, "pants", 1, True),
        ("camera", 0, "camera", 1, True),
        ("car", 0, "pants", 0, False),
        ("airplane", 1, "hammer", 0, False),
    ]
    rows = []
    for cat_a, idx_a, cat_b, idx_b, same in pairs:
        value = image_correlation(gray(cat_a, idx_a), gray(cat_b, idx_b), resolution)
        rows.append(
            PairCorrelation(
                first=f"{cat_a}-{idx_a}",
                second=f"{cat_b}-{idx_b}",
                same_category=same,
                correlation=value,
            )
        )
    return rows


@dataclass(frozen=True)
class SignalCorrelation:
    """One Figure 3-1 panel: a labelled 1-D signal pair and its r."""

    label: str
    expected: float
    correlation: float


def figure_3_1(seed: int = 0, n_samples: int = 200) -> list[SignalCorrelation]:
    """Reproduce Figure 3-1: r = 1, r ~ 0 and r = -1 signal pairs."""
    rows = []
    for label, expected, builder in (
        ("perfectly correlated", 1.0, perfectly_correlated_pair),
        ("uncorrelated", 0.0, uncorrelated_pair),
        ("inversely correlated", -1.0, inversely_correlated_pair),
    ):
        first, second = builder(seed, n_samples)
        rows.append(
            SignalCorrelation(
                label=label,
                expected=expected,
                correlation=correlation_coefficient(first, second),
            )
        )
    return rows


@dataclass(frozen=True)
class RegionVersusWhole:
    """The Figure 3-3/3-4 contrast for one image pair."""

    whole_image_correlation: float
    matched_region_correlation: float


def figure_3_3_3_4(
    seed: int = 0,
    resolution: int = 10,
    size: tuple[int, int] = (96, 96),
    pool: int = 10,
) -> RegionVersusWhole:
    """Whole-image vs matched-region correlation on two waterfall scenes.

    Two waterfall scenes whose cascades sit at different positions correlate
    poorly as whole frames; comparing each image's most-cascade-containing
    half restores the similarity — the paper's motivation for regions.  The
    thesis hand-picked its example pair; we deterministically pick the
    *least whole-image-correlated* pair among the first ``pool`` rendered
    waterfalls, which is the same editorial choice.
    """
    images = [
        to_gray(render_scene("waterfall", category_rng(seed, "waterfall", index), size))
        for index in range(pool)
    ]
    best_pair = min(
        (
            (image_correlation(images[i], images[j], resolution), i, j)
            for i in range(pool)
            for j in range(i + 1, pool)
        ),
        key=lambda item: item[0],
    )
    whole, first_index, second_index = best_pair
    first, second = images[first_index], images[second_index]

    # Pick, for each image, a window centred on its cascade — the brightest
    # column once the sky band is excluded — then correlate the windows.
    def cascade_window(pixels: np.ndarray) -> np.ndarray:
        rows, cols = pixels.shape
        body = pixels[int(0.3 * rows) :, :]  # drop the (bright) sky band
        peak_col = int(body.mean(axis=0).argmax())
        half_width = cols // 4
        left = min(max(0, peak_col - half_width), cols - 2 * half_width)
        region = Region(
            top=0.3,
            left=left / cols,
            height=0.7,
            width=(2 * half_width) / cols,
            name="cascade-window",
        )
        return region.extract(pixels)

    matched = image_correlation(cascade_window(first), cascade_window(second), resolution)
    return RegionVersusWhole(
        whole_image_correlation=whole, matched_region_correlation=matched
    )
