"""Experiment registry: one configuration per table/figure of the paper.

Each module reproduces one evaluation artefact and returns plain-data result
objects the benchmarks print:

* :mod:`repro.experiments.correlation_demos` — Table 3.1, Figures 3-1 and
  3-3/3-4.
* :mod:`repro.experiments.weight_outputs` — Figures 3-7/3-8/3-9 (DD output
  matrices under the three schemes).
* :mod:`repro.experiments.sample_runs` — Figures 4-3/4-4 (three-round
  feedback runs) and 4-5/4-6/4-7 (their curves).
* :mod:`repro.experiments.scheme_comparison` — Figures 4-8 .. 4-14.
* :mod:`repro.experiments.beta_sweep` — Figures 4-15 .. 4-17.
* :mod:`repro.experiments.bag_size` — Figure 4-18.
* :mod:`repro.experiments.resolution` — Figure 4-19.
* :mod:`repro.experiments.previous_approach` — Figures 4-20/4-21.
* :mod:`repro.experiments.start_subsets` — Figure 4-22.

All experiments accept a *scale* so the benchmark defaults stay laptop-fast
while ``REPRO_BENCH_SCALE=paper`` reproduces the full-size databases.
"""

from repro.experiments.scale import BenchScale, resolve_scale

__all__ = ["BenchScale", "resolve_scale"]
