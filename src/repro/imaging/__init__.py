"""Imaging substrate: gray-scale images, smoothing/sampling, regions, correlation.

This subpackage implements everything in Chapter 3 of the paper up to (but not
including) bag generation:

* :mod:`repro.imaging.image` — the :class:`~repro.imaging.image.GrayImage`
  wrapper and colour-to-gray conversion.
* :mod:`repro.imaging.smoothing` — the 50%-overlap averaging kernel that turns
  an ``m x n`` region into an ``h x h`` matrix (Section 3.1.2).
* :mod:`repro.imaging.regions` — the 20-region family of Figure 3-5, mirror
  augmentation and the low-variance filter (Section 3.2).
* :mod:`repro.imaging.correlation` — plain and weighted correlation
  coefficients for 1-D and 2-D signals (Sections 3.1.1 and 3.3).
* :mod:`repro.imaging.transform` — the mean/std normalisation of Section 3.4
  under which weighted Euclidean distance ranks pairs exactly like weighted
  correlation.
* :mod:`repro.imaging.features` — the full image-to-feature-matrix pipeline.
"""

from repro.imaging.color_features import RgbFeatureExtractor, RgbRegionCorpus
from repro.imaging.correlation import (
    correlation_coefficient,
    correlation_matrix,
    image_correlation,
    weighted_correlation,
)
from repro.imaging.features import FeatureConfig, FeatureExtractor
from repro.imaging.image import GrayImage, to_gray
from repro.imaging.rotations import RotationAugmentedExtractor, RotationConfig
from repro.imaging.regions import Region, RegionFamily, default_region_family, region_family
from repro.imaging.smoothing import smooth_and_sample
from repro.imaging.transform import (
    correlation_from_distance,
    distance_from_correlation,
    normalize_feature,
    normalize_features,
)

__all__ = [
    "RgbFeatureExtractor",
    "RgbRegionCorpus",
    "correlation_coefficient",
    "correlation_matrix",
    "image_correlation",
    "weighted_correlation",
    "FeatureConfig",
    "FeatureExtractor",
    "GrayImage",
    "to_gray",
    "RotationAugmentedExtractor",
    "RotationConfig",
    "Region",
    "RegionFamily",
    "default_region_family",
    "region_family",
    "smooth_and_sample",
    "correlation_from_distance",
    "distance_from_correlation",
    "normalize_feature",
    "normalize_features",
]
