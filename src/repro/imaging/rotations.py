"""Rotation-augmented instances (Chapter 5 future work).

The thesis notes its system "is not designed to handle rotations ... One
way to handle rotations would be to add more instances to represent
different angles of view for each image region, although this would mean a
significant increase in the number of instances per bag."  This module
implements exactly that proposal: quarter-turn rotations of each region's
smoothed matrix are appended as extra instances.

Quarter turns act exactly on the ``h x h`` matrix level: the block layout is
mirror-symmetric along both axes (see :mod:`repro.imaging.smoothing`), so a
180-degree rotation of the smoothed matrix equals smoothing the rotated
region; 90/270-degree turns are exact for square regions and a controlled
approximation otherwise (the matrix is square regardless, so the rotated
matrix represents the rotated content at the same resolution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FeatureError
from repro.imaging.features import FeatureConfig, FeatureSet, InstanceSource
from repro.imaging.image import GrayImage
from repro.imaging.regions import Region
from repro.imaging.smoothing import smooth_and_sample
from repro.imaging.transform import normalize_feature

#: Quarter-turn angles the augmenter accepts.
ALLOWED_ANGLES = (90, 180, 270)


@dataclass(frozen=True)
class RotationConfig:
    """Configuration of the rotation augmenter.

    Attributes:
        base: the underlying feature configuration (regions, resolution,
            mirrors, variance filter).
        angles: quarter-turn angles to append, a subset of (90, 180, 270).
    """

    base: FeatureConfig
    angles: tuple[int, ...] = ALLOWED_ANGLES

    def __post_init__(self) -> None:
        bad = [a for a in self.angles if a not in ALLOWED_ANGLES]
        if bad:
            raise FeatureError(
                f"rotation angles must be quarter turns {ALLOWED_ANGLES}, got {bad}"
            )
        if len(set(self.angles)) != len(self.angles):
            raise FeatureError(f"duplicate rotation angles: {self.angles}")

    @property
    def max_instances(self) -> int:
        """Bag-size ceiling: base orientations times (1 + len(angles))."""
        return self.base.max_instances * (1 + len(self.angles))


class RotationAugmentedExtractor:
    """Feature extractor appending quarter-turn rotated instances."""

    def __init__(self, config: RotationConfig):
        self._config = config

    @property
    def config(self) -> RotationConfig:
        """The augmenter configuration."""
        return self._config

    def extract(self, image: GrayImage) -> FeatureSet:
        """Run the augmented pipeline on one image.

        Raises:
            FeatureError: if no region survives extraction.
        """
        cfg = self._config.base
        vectors: list[np.ndarray] = []
        sources: list[InstanceSource] = []
        dropped: list[str] = []

        for index, region in enumerate(cfg.region_family):
            crop = region.extract(image.pixels)
            keep_anyway = cfg.keep_full_frame and index == 0
            if not keep_anyway and cfg.variance_threshold > 0:
                if float(crop.var()) < cfg.variance_threshold:
                    dropped.append(region.name or f"region-{index}")
                    continue
            matrix = smooth_and_sample(crop, cfg.resolution)
            orientations = self._orientations(matrix)
            name = region.name or f"region-{index}"
            survived = self._append_orientations(
                orientations, index, name, vectors, sources
            )
            if not survived:
                dropped.append(name)

        if not vectors:
            raise FeatureError(
                f"no region of image {image.image_id or '<unnamed>'} survived "
                "rotation-augmented extraction"
            )
        return FeatureSet(
            vectors=np.vstack(vectors),
            sources=tuple(sources),
            dropped_regions=tuple(dropped),
        )

    def _orientations(self, matrix: np.ndarray) -> list[tuple[str, np.ndarray]]:
        """All configured orientations of one smoothed matrix."""
        cfg = self._config
        oriented: list[tuple[str, np.ndarray]] = [("0", matrix)]
        if cfg.base.include_mirrors:
            oriented.append(("mirror", matrix[:, ::-1]))
        for angle in cfg.angles:
            turns = angle // 90
            oriented.append((f"rot{angle}", np.rot90(matrix, k=turns)))
            if cfg.base.include_mirrors:
                oriented.append(
                    (f"rot{angle}+mirror", np.rot90(matrix, k=turns)[:, ::-1])
                )
        return oriented

    @staticmethod
    def _append_orientations(
        orientations: list[tuple[str, np.ndarray]],
        region_index: int,
        region_name: str,
        vectors: list[np.ndarray],
        sources: list[InstanceSource],
    ) -> bool:
        appended = False
        for label, oriented in orientations:
            try:
                vector = normalize_feature(oriented.reshape(-1))
            except FeatureError:
                continue  # constant after smoothing; skip this orientation
            vectors.append(vector)
            sources.append(
                InstanceSource(
                    region_index=region_index,
                    region_name=f"{region_name}@{label}",
                    mirrored="mirror" in label,
                )
            )
            appended = True
        return appended
