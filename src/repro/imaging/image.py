"""Gray-scale image handling.

The paper works exclusively on gray-scale information (Section 3.1.2): "All
color images are converted into gray-scale images first."  This module holds
the small :class:`GrayImage` value type used across the package and the
colour-to-gray conversion.

Images are numpy arrays throughout:

* gray images are 2-D ``float64`` arrays with values in ``[0, 1]``,
* colour images are 3-D ``(rows, cols, 3)`` arrays, either ``uint8`` in
  ``[0, 255]`` or floats in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ImageFormatError

# ITU-R BT.601 luma weights, the standard choice for luminance conversion.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114], dtype=np.float64)


def _as_float_plane(pixels: np.ndarray) -> np.ndarray:
    """Return ``pixels`` as float64 in [0, 1], validating the value range."""
    if pixels.dtype == np.uint8:
        return pixels.astype(np.float64) / 255.0
    plane = np.asarray(pixels, dtype=np.float64)
    if plane.size:
        if not np.all(np.isfinite(plane)):
            raise ImageFormatError("image contains NaN or infinite pixel values")
        if plane.min() < -1e-9 or plane.max() > 1.0 + 1e-9:
            raise ImageFormatError(
                "float image values must lie in [0, 1]; "
                f"got range [{plane.min():.4g}, {plane.max():.4g}]"
            )
    return np.clip(plane, 0.0, 1.0)


def to_gray(pixels: np.ndarray) -> np.ndarray:
    """Convert an image array to a gray-scale float64 plane in [0, 1].

    Accepts 2-D gray arrays (returned normalised) and 3-D RGB arrays, which
    are reduced with the BT.601 luma weights.

    Raises:
        ImageFormatError: if the array is not 2-D or ``(m, n, 3)``.
    """
    pixels = np.asarray(pixels)
    if pixels.ndim == 2:
        return _as_float_plane(pixels)
    if pixels.ndim == 3 and pixels.shape[2] == 3:
        rgb = _as_float_plane(pixels)
        return rgb @ _LUMA_WEIGHTS
    raise ImageFormatError(
        f"expected a 2-D gray or (m, n, 3) colour array, got shape {pixels.shape}"
    )


@dataclass(frozen=True)
class GrayImage:
    """A validated gray-scale image plus light metadata.

    Attributes:
        pixels: 2-D float64 array with values in ``[0, 1]``.
        image_id: optional identifier assigned by the database layer.
        category: optional ground-truth category label.
    """

    pixels: np.ndarray
    image_id: str = ""
    category: str = ""
    _rgb: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        plane = np.asarray(self.pixels)
        if plane.ndim != 2:
            raise ImageFormatError(f"GrayImage requires a 2-D array, got shape {plane.shape}")
        if plane.shape[0] < 2 or plane.shape[1] < 2:
            raise ImageFormatError(f"GrayImage must be at least 2x2, got shape {plane.shape}")
        object.__setattr__(self, "pixels", _as_float_plane(plane))

    @classmethod
    def from_array(
        cls,
        pixels: np.ndarray,
        image_id: str = "",
        category: str = "",
    ) -> "GrayImage":
        """Build a :class:`GrayImage` from gray or RGB pixels.

        When given an RGB array, the original colour plane is retained (as
        float64 in [0, 1]) so colour-feature baselines can access it via
        :attr:`rgb`.
        """
        pixels = np.asarray(pixels)
        rgb = None
        if pixels.ndim == 3:
            rgb = _as_float_plane(pixels)
        return cls(pixels=to_gray(pixels), image_id=image_id, category=category, _rgb=rgb)

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape as ``(rows, cols)``."""
        return self.pixels.shape  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        """Number of pixel rows."""
        return self.pixels.shape[0]

    @property
    def cols(self) -> int:
        """Number of pixel columns."""
        return self.pixels.shape[1]

    @property
    def rgb(self) -> np.ndarray | None:
        """Original colour plane if the image was built from RGB, else None."""
        return self._rgb

    def mirrored(self) -> "GrayImage":
        """Return the left-right mirror image (Section 3.2)."""
        mirrored_rgb = None if self._rgb is None else self._rgb[:, ::-1].copy()
        return GrayImage(
            pixels=self.pixels[:, ::-1].copy(),
            image_id=self.image_id,
            category=self.category,
            _rgb=mirrored_rgb,
        )

    def crop(self, top: int, left: int, height: int, width: int) -> np.ndarray:
        """Return the pixel block at (top, left) of size (height, width).

        Raises:
            ImageFormatError: if the block falls outside the image.
        """
        if top < 0 or left < 0 or height <= 0 or width <= 0:
            raise ImageFormatError(
                f"invalid crop origin/size: top={top} left={left} height={height} width={width}"
            )
        if top + height > self.rows or left + width > self.cols:
            raise ImageFormatError(
                f"crop ({top}+{height}, {left}+{width}) exceeds image shape {self.shape}"
            )
        return self.pixels[top : top + height, left : left + width]

    def variance(self) -> float:
        """Population variance of the gray values (used by the region filter)."""
        return float(self.pixels.var())
