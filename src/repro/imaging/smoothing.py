"""Smoothing and sampling (Section 3.1.2).

The paper avoids pixel-level shift sensitivity by reducing each ``m x n``
image (or sub-region) to a low-resolution ``h x h`` matrix: the image is
smoothed with a ``2m/h x 2n/h`` averaging kernel and sub-sampled so that each
entry of the result is the mean gray value of a block, with every block
overlapping its neighbours by 50% (Figure 3-2).

With a block of height ``2m/h`` and a stride of ``m/h``, ``h`` block positions
overshoot the image border by one stride, so — as any faithful implementation
must — we anchor the first block at the top/left edge, the last block at the
bottom/right edge, and space the remaining blocks evenly.  For ``h`` well
below ``m`` this reproduces the 50% overlap of the paper exactly (the stride
works out to ``(m - 2m/h)/(h-1) ~= m/h``).

Block means are computed with an integral image (summed-area table), so a
whole region is reduced in ``O(m*n)`` regardless of ``h``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageFormatError


def _block_starts(extent: int, block: int, count: int) -> np.ndarray:
    """Return ``count`` block start offsets covering ``[0, extent - block]``.

    The first block is anchored at 0, the last at ``extent - block`` and the
    rest are spaced evenly (rounded to integer pixels).  The layout is made
    mirror-symmetric by construction — ``starts[count-1-i] == span -
    starts[i]`` exactly — so smoothing commutes with left-right mirroring,
    a property the feature pipeline relies on.
    """
    if count == 1:
        return np.array([0], dtype=np.int64)
    span = extent - block
    half = (count + 1) // 2
    first = np.round(
        np.arange(half, dtype=np.float64) * span / (count - 1)
    ).astype(np.int64)
    mirrored = (span - first)[::-1]
    if count % 2:
        mirrored = mirrored[1:]
    return np.concatenate([first, mirrored])


def block_grid(
    rows: int, cols: int, resolution: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Compute the averaging-block layout for an image of shape (rows, cols).

    Returns:
        ``(row_starts, col_starts, block_rows, block_cols)`` where the block
        at grid cell ``(i, j)`` covers
        ``pixels[row_starts[i] : row_starts[i] + block_rows,
        col_starts[j] : col_starts[j] + block_cols]``.

    Raises:
        ImageFormatError: if ``resolution`` is not positive or the image is
            smaller than the requested grid.
    """
    if resolution < 1:
        raise ImageFormatError(f"resolution must be >= 1, got {resolution}")
    if rows < resolution or cols < resolution:
        raise ImageFormatError(
            f"image of shape ({rows}, {cols}) is too small for an "
            f"{resolution}x{resolution} sampling grid"
        )
    # Paper kernel: 2m/h x 2n/h, clamped so a block never exceeds the image.
    block_rows = _symmetric_block(rows, resolution)
    block_cols = _symmetric_block(cols, resolution)
    row_starts = _block_starts(rows, block_rows, resolution)
    col_starts = _block_starts(cols, block_cols, resolution)
    return row_starts, col_starts, block_rows, block_cols


def _symmetric_block(extent: int, count: int) -> int:
    """The paper's ~``2*extent/count`` block size, nudged for mirror symmetry.

    With an odd number of blocks, the middle block start must sit exactly at
    ``span/2``, which requires an even span ``extent - block``; when the
    rounded kernel size leaves an odd span we shrink the block by one pixel
    (or grow it when shrinking is impossible).
    """
    block = max(1, min(extent, int(round(2.0 * extent / count))))
    if count % 2 == 1 and (extent - block) % 2 == 1:
        if block > 1:
            block -= 1
        else:
            block += 1
    return block


def smooth_and_sample(pixels: np.ndarray, resolution: int = 10) -> np.ndarray:
    """Reduce a gray-scale plane to a ``resolution x resolution`` mean matrix.

    Args:
        pixels: 2-D array of gray values.
        resolution: the ``h`` of the paper; most experiments use ``h = 10``.

    Returns:
        ``(resolution, resolution)`` float64 array of block means.

    Raises:
        ImageFormatError: on non-2-D input or an unsatisfiable grid.
    """
    plane = np.asarray(pixels, dtype=np.float64)
    if plane.ndim != 2:
        raise ImageFormatError(f"smooth_and_sample expects a 2-D array, got shape {plane.shape}")
    rows, cols = plane.shape
    row_starts, col_starts, block_rows, block_cols = block_grid(rows, cols, resolution)

    # Summed-area table with a zero border so block sums are four lookups.
    integral = np.zeros((rows + 1, cols + 1), dtype=np.float64)
    np.cumsum(plane, axis=0, out=integral[1:, 1:])
    np.cumsum(integral[1:, 1:], axis=1, out=integral[1:, 1:])

    top = row_starts[:, None]
    bottom = top + block_rows
    left = col_starts[None, :]
    right = left + block_cols
    block_sums = (
        integral[bottom, right]
        - integral[top, right]
        - integral[bottom, left]
        + integral[top, left]
    )
    return block_sums / float(block_rows * block_cols)


def smooth_and_sample_stack(planes: np.ndarray, resolution: int = 10) -> np.ndarray:
    """Reduce a stack of planes in one pass: ``(m, n, c) -> (h, h, c)``.

    Bit-identical per channel to calling :func:`smooth_and_sample` on each
    ``planes[..., k]`` separately (the integral-image cumsums and the
    four-lookup block sums are element-wise sequences of the exact same
    additions), but the grid is computed once and the numpy dispatch cost
    is paid once instead of ``c`` times — the RGB feature pipeline batches
    its three channels through here.

    Raises:
        ImageFormatError: on non-3-D input or an unsatisfiable grid.
    """
    stack = np.asarray(planes, dtype=np.float64)
    if stack.ndim != 3:
        raise ImageFormatError(
            f"smooth_and_sample_stack expects a 3-D array, got shape {stack.shape}"
        )
    rows, cols, channels = stack.shape
    row_starts, col_starts, block_rows, block_cols = block_grid(rows, cols, resolution)

    integral = np.zeros((rows + 1, cols + 1, channels), dtype=np.float64)
    np.cumsum(stack, axis=0, out=integral[1:, 1:, :])
    np.cumsum(integral[1:, 1:, :], axis=1, out=integral[1:, 1:, :])

    top = row_starts[:, None]
    bottom = top + block_rows
    left = col_starts[None, :]
    right = left + block_cols
    block_sums = (
        integral[bottom, right]
        - integral[top, right]
        - integral[bottom, left]
        + integral[top, left]
    )
    return block_sums / float(block_rows * block_cols)


def smoothed_vector(pixels: np.ndarray, resolution: int = 10) -> np.ndarray:
    """Reduce a plane and flatten the result to an ``h**2`` feature vector.

    This is the raw (pre-normalisation) feature vector of the paper: the
    ``h x h`` matrix treated as an ``h**2``-dimensional vector.
    """
    return smooth_and_sample(pixels, resolution).reshape(-1)
