"""Region selection (Section 3.2, Figure 3-5).

The paper represents an image by the feature vectors of ~20 overlapping
sub-regions (plus their left-right mirrors, for up to 40 instances per bag).
Conceptually any region could be the user's region of interest, so the family
spans multiple scales and positions; the multiple-instance learner is left to
pick out the right one.

The thesis does not enumerate the exact pixel coordinates of its 20 regions
(Figure 3-5 is a picture), so we define a deterministic multi-scale family
with the same cardinality and character: the full frame, half-frames,
quadrants, a dense mid-scale 3x3 sweep and two centre crops.  Families with
9 and 42 regions (18 and 84 instances per bag after mirroring) support the
Figure 4-18 bag-size ablation.

Regions are stored in *fractional* coordinates so one family serves every
image size; they are converted to pixels on extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import RegionError

#: Number of instances contributed per region (the region and its mirror).
INSTANCES_PER_REGION = 2


@dataclass(frozen=True)
class Region:
    """A rectangular sub-region in fractional image coordinates.

    Attributes:
        top, left: offsets of the region's upper-left corner in ``[0, 1)``.
        height, width: extents in ``(0, 1]``; ``top + height`` and
            ``left + width`` must not exceed 1.
        name: short human-readable label (e.g. ``"quadrant-ne"``).
    """

    top: float
    left: float
    height: float
    width: float
    name: str = ""

    def __post_init__(self) -> None:
        for label, value in (("top", self.top), ("left", self.left)):
            if not 0.0 <= value < 1.0:
                raise RegionError(f"{label} must be in [0, 1), got {value}")
        for label, value in (("height", self.height), ("width", self.width)):
            if not 0.0 < value <= 1.0:
                raise RegionError(f"{label} must be in (0, 1], got {value}")
        if self.top + self.height > 1.0 + 1e-9:
            raise RegionError(f"region extends below the image: top={self.top} height={self.height}")
        if self.left + self.width > 1.0 + 1e-9:
            raise RegionError(f"region extends right of the image: left={self.left} width={self.width}")

    def pixel_box(self, rows: int, cols: int) -> tuple[int, int, int, int]:
        """Convert to integer pixels for an image of shape (rows, cols).

        Returns ``(top, left, height, width)`` with the box clamped inside
        the image and at least 2x2 pixels.
        """
        top = int(round(self.top * rows))
        left = int(round(self.left * cols))
        height = max(2, int(round(self.height * rows)))
        width = max(2, int(round(self.width * cols)))
        top = min(top, rows - height) if height <= rows else 0
        left = min(left, cols - width) if width <= cols else 0
        height = min(height, rows)
        width = min(width, cols)
        if top < 0 or left < 0:
            raise RegionError(
                f"image of shape ({rows}, {cols}) too small for region {self.name or self}"
            )
        return top, left, height, width

    def extract(self, pixels: np.ndarray) -> np.ndarray:
        """Return the pixel block of this region from a 2-D gray plane."""
        plane = np.asarray(pixels)
        if plane.ndim != 2:
            raise RegionError(f"extract expects a 2-D plane, got shape {plane.shape}")
        top, left, height, width = self.pixel_box(plane.shape[0], plane.shape[1])
        return plane[top : top + height, left : left + width]

    @property
    def area(self) -> float:
        """Fractional area of the region."""
        return self.height * self.width


class RegionFamily:
    """An ordered, named collection of regions.

    The family order is deterministic, which keeps instance indices stable
    across runs — important both for reproducibility and for interpreting
    which region a learned concept latched onto.
    """

    def __init__(self, name: str, regions: Sequence[Region]):
        if not regions:
            raise RegionError("a region family needs at least one region")
        self._name = name
        self._regions = tuple(regions)

    @property
    def name(self) -> str:
        """Family name, e.g. ``"default20"``."""
        return self._name

    @property
    def regions(self) -> tuple[Region, ...]:
        """The regions, in fixed order."""
        return self._regions

    @property
    def max_instances(self) -> int:
        """Bag size ceiling: two instances (region + mirror) per region."""
        return len(self._regions) * INSTANCES_PER_REGION

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __getitem__(self, index: int) -> Region:
        return self._regions[index]

    def __repr__(self) -> str:
        return f"RegionFamily({self._name!r}, {len(self._regions)} regions)"


def _grid(scale: float, steps: int, prefix: str) -> list[Region]:
    """A ``steps x steps`` sweep of ``scale``-sized windows across the frame."""
    if steps == 1:
        offsets = [0.0]
    else:
        offsets = [i * (1.0 - scale) / (steps - 1) for i in range(steps)]
    return [
        Region(top=row, left=col, height=scale, width=scale, name=f"{prefix}-{i}{j}")
        for i, row in enumerate(offsets)
        for j, col in enumerate(offsets)
    ]


def _core_regions() -> list[Region]:
    """Full frame, four half-frames and four quadrants (9 regions)."""
    return [
        Region(0.0, 0.0, 1.0, 1.0, name="full"),
        Region(0.0, 0.0, 0.5, 1.0, name="half-top"),
        Region(0.5, 0.0, 0.5, 1.0, name="half-bottom"),
        Region(0.0, 0.0, 1.0, 0.5, name="half-left"),
        Region(0.0, 0.5, 1.0, 0.5, name="half-right"),
        Region(0.0, 0.0, 0.5, 0.5, name="quadrant-nw"),
        Region(0.0, 0.5, 0.5, 0.5, name="quadrant-ne"),
        Region(0.5, 0.0, 0.5, 0.5, name="quadrant-sw"),
        Region(0.5, 0.5, 0.5, 0.5, name="quadrant-se"),
    ]


def _default_regions() -> list[Region]:
    """The 20-region family standing in for Figure 3-5."""
    regions = _core_regions()
    regions.extend(_grid(scale=0.6, steps=3, prefix="sweep60"))
    regions.append(Region(0.1, 0.1, 0.8, 0.8, name="center-80"))
    regions.append(Region(0.3, 0.3, 0.4, 0.4, name="center-40"))
    return regions


def _large_regions() -> list[Region]:
    """A 42-region family (84 instances with mirrors) for Figure 4-18."""
    regions = _default_regions()
    regions.extend(_grid(scale=0.4, steps=4, prefix="sweep40"))
    for i in range(3):
        regions.append(
            Region(0.0, i / 3.0, 1.0, 1.0 / 3.0, name=f"vstrip-{i}")
        )
        regions.append(
            Region(i / 3.0, 0.0, 1.0 / 3.0, 1.0, name=f"hstrip-{i}")
        )
    return regions


_FAMILY_BUILDERS = {
    "small9": _core_regions,
    "default20": _default_regions,
    "large42": _large_regions,
}

#: Instance-count aliases used by the paper ("18, 40, 84 instances per bag").
_INSTANCE_ALIASES = {18: "small9", 40: "default20", 84: "large42"}


def region_family(name: str) -> RegionFamily:
    """Build a named region family: ``"small9"``, ``"default20"`` or ``"large42"``.

    Raises:
        RegionError: for an unknown family name.
    """
    try:
        builder = _FAMILY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILY_BUILDERS))
        raise RegionError(f"unknown region family {name!r}; known families: {known}") from None
    return RegionFamily(name, builder())


def default_region_family() -> RegionFamily:
    """The paper's default: 20 regions, up to 40 instances per bag."""
    return region_family("default20")


def family_for_instance_count(instances: int) -> RegionFamily:
    """Map the paper's instances-per-bag counts (18/40/84) to a family.

    Raises:
        RegionError: for counts other than 18, 40 and 84.
    """
    try:
        return region_family(_INSTANCE_ALIASES[instances])
    except KeyError:
        known = ", ".join(str(k) for k in sorted(_INSTANCE_ALIASES))
        raise RegionError(
            f"no region family yields {instances} instances per bag; known counts: {known}"
        ) from None


def available_families() -> tuple[str, ...]:
    """Names of all built-in region families."""
    return tuple(sorted(_FAMILY_BUILDERS))
