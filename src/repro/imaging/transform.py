"""Fitting the correlation measure into Euclidean space (Section 3.4).

The paper's key representational trick: transform every raw feature vector
``A`` into ``B = (A - mean(A)) / sigma'(A)`` where ``sigma'`` is the weighted
standard deviation.  Under this transformation,

    ||B_ij - B_lm||^2_w  =  2n - 2n * Corr_w(A_ij, A_lm)

(the Claim of Section 3.4), so ranking pairs by weighted Euclidean distance
on transformed vectors is exactly ranking by weighted correlation on raw
vectors, in reverse order.  This lets the Diverse Density machinery — which
is built around weighted Euclidean distance — optimise what is semantically a
correlation similarity.

Bag generation normalises with unit weights ("All weights are 1 to start
with", Section 3.5); the DD algorithm then learns weights on the transformed
vectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError

_STD_EPS = 1e-12


def _weights_for(vector: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
    if weights is None:
        return np.ones_like(vector)
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.shape != vector.shape:
        raise FeatureError(f"weights must have {vector.size} entries, got {w.size}")
    if np.any(w < 0):
        raise FeatureError("weights must be non-negative")
    return w


def weighted_std(vector: np.ndarray, weights: np.ndarray | None = None) -> float:
    """The paper's sigma': sqrt((1/n) * sum_k w_k (x_k - mean(x))^2).

    The mean is unweighted; only the spread is weighted.
    """
    x = np.asarray(vector, dtype=np.float64).reshape(-1)
    if x.size < 2:
        raise FeatureError("weighted_std requires at least 2 dimensions")
    w = _weights_for(x, weights)
    centered = x - x.mean()
    return float(np.sqrt((w @ (centered * centered)) / x.size))


def normalize_feature(
    vector: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Transform ``A`` to ``B = (A - mean(A)) / sigma'(A)``.

    Raises:
        FeatureError: if the vector is (weighted-)constant, i.e. sigma' ~ 0.
    """
    x = np.asarray(vector, dtype=np.float64).reshape(-1)
    sigma = weighted_std(x, weights)
    if sigma < _STD_EPS:
        raise FeatureError("cannot normalise a constant feature vector (sigma' ~ 0)")
    return (x - x.mean()) / sigma


def normalize_features(
    matrix: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Row-wise :func:`normalize_feature` for an ``(n_vectors, n_dims)`` array.

    Raises:
        FeatureError: if any row is constant.
    """
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2:
        raise FeatureError(f"normalize_features expects a 2-D array, got shape {data.shape}")
    n = data.shape[1]
    if n < 2:
        raise FeatureError("normalize_features requires at least 2 dimensions")
    w = np.ones(n) if weights is None else _weights_for(data[0], weights)
    centered = data - data.mean(axis=1, keepdims=True)
    sigmas = np.sqrt((centered * centered) @ w / n)
    if np.any(sigmas < _STD_EPS):
        bad = int(np.argmin(sigmas))
        raise FeatureError(f"row {bad} is a constant feature vector (sigma' ~ 0)")
    return centered / sigmas[:, None]


def weighted_squared_distance(
    first: np.ndarray, second: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """``sum_k w_k (x_k - y_k)^2`` — the distance the DD model uses."""
    x = np.asarray(first, dtype=np.float64).reshape(-1)
    y = np.asarray(second, dtype=np.float64).reshape(-1)
    if x.shape != y.shape:
        raise FeatureError(f"vectors must match in size, got {x.size} and {y.size}")
    w = _weights_for(x, weights)
    diff = x - y
    return float(w @ (diff * diff))


def distance_from_correlation(correlation: float, n_dims: int) -> float:
    """Squared distance between normalised vectors implied by a correlation.

    From the Claim: ``||B1 - B2||^2 = 2n (1 - Corr(A1, A2))``.
    """
    if n_dims < 2:
        raise FeatureError("n_dims must be at least 2")
    if not -1.0 <= correlation <= 1.0:
        raise FeatureError(f"correlation must lie in [-1, 1], got {correlation}")
    return 2.0 * n_dims * (1.0 - correlation)


def correlation_from_distance(squared_distance: float, n_dims: int) -> float:
    """Inverse of :func:`distance_from_correlation`."""
    if n_dims < 2:
        raise FeatureError("n_dims must be at least 2")
    if squared_distance < 0:
        raise FeatureError(f"squared distance must be non-negative, got {squared_distance}")
    return 1.0 - squared_distance / (2.0 * n_dims)
