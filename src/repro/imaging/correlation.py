"""Correlation coefficients: plain (Section 3.1.1) and weighted (Section 3.3).

The paper's similarity measure between two equally sized signals (1-D series
or 2-D image regions) is the Pearson correlation coefficient, computed with
population (``1/n``) normalisation — the thesis notes explicitly that the
``1/n`` versus ``1/(n-1)`` choice is immaterial and uses ``1/n``.

Section 3.3 generalises this to a *weighted* correlation coefficient where
each dimension ``k`` carries a non-negative weight ``w_k``:

    Corr_w(f1, f2) = sum_k w_k (f1_k - mean(f1)) (f2_k - mean(f2))
                     / (n * sigma'_1 * sigma'_2)

with *unweighted* means and *weighted* standard deviations

    sigma'_i = sqrt( (1/n) * sum_k w_k (f_i(k) - mean(f_i))^2 ).

Setting ``w_k = 1`` everywhere recovers the plain coefficient.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError

#: Two signals whose variance falls below this are treated as constant.
_VARIANCE_EPS = 1e-12


def _flatten_pair(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(first, dtype=np.float64).reshape(-1)
    b = np.asarray(second, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise FeatureError(
            f"correlation requires equally sized signals, got {a.size} and {b.size} samples"
        )
    if a.size < 2:
        raise FeatureError("correlation requires at least 2 samples")
    return a, b


def correlation_coefficient(first: np.ndarray, second: np.ndarray) -> float:
    """Pearson correlation of two signals (any shape; flattened first).

    An ``m x n`` region is treated as one big ``mn``-dimensional vector, as in
    the paper.  Returns a value in ``[-1, 1]``.

    Raises:
        FeatureError: on shape mismatch or if either signal is constant.
    """
    a, b = _flatten_pair(first, second)
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    var_a = float(a_centered @ a_centered)
    var_b = float(b_centered @ b_centered)
    if var_a < _VARIANCE_EPS or var_b < _VARIANCE_EPS:
        raise FeatureError("correlation is undefined for a constant signal")
    value = float(a_centered @ b_centered) / np.sqrt(var_a * var_b)
    return float(np.clip(value, -1.0, 1.0))


def weighted_correlation(
    first: np.ndarray, second: np.ndarray, weights: np.ndarray
) -> float:
    """Weighted correlation coefficient of Section 3.3.

    Args:
        first: first signal (flattened).
        second: second signal (flattened), same size as ``first``.
        weights: non-negative per-dimension weights, same size.

    Raises:
        FeatureError: on shape mismatch, negative weights, all-zero weights or
            a signal that is constant under the weighting.
    """
    a, b = _flatten_pair(first, second)
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.shape != a.shape:
        raise FeatureError(
            f"weights must match signal size {a.size}, got {w.size}"
        )
    if np.any(w < 0):
        raise FeatureError("weights must be non-negative")
    if float(w.sum()) < _VARIANCE_EPS:
        raise FeatureError("weighted correlation requires at least one positive weight")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    var_a = float(w @ (a_centered * a_centered))
    var_b = float(w @ (b_centered * b_centered))
    if var_a < _VARIANCE_EPS or var_b < _VARIANCE_EPS:
        raise FeatureError("weighted correlation is undefined for a constant signal")
    value = float((w * a_centered) @ b_centered) / np.sqrt(var_a * var_b)
    return float(np.clip(value, -1.0, 1.0))


def image_correlation(
    first: np.ndarray, second: np.ndarray, resolution: int | None = None
) -> float:
    """Correlation of two gray planes, optionally after smoothing/sampling.

    With ``resolution`` given, both planes are reduced to ``h x h`` matrices
    first (the Table 3.1 protocol); the planes may then differ in size.
    Without it, the raw planes must have identical shape.
    """
    if resolution is not None:
        from repro.imaging.smoothing import smooth_and_sample

        first = smooth_and_sample(np.asarray(first), resolution)
        second = smooth_and_sample(np.asarray(second), resolution)
    return correlation_coefficient(first, second)


def correlation_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise correlation matrix of the rows of ``vectors``.

    Args:
        vectors: ``(n_signals, n_dims)`` array; every row must be
            non-constant.

    Returns:
        ``(n_signals, n_signals)`` symmetric matrix with unit diagonal.
    """
    data = np.asarray(vectors, dtype=np.float64)
    if data.ndim != 2:
        raise FeatureError(f"correlation_matrix expects a 2-D array, got shape {data.shape}")
    if data.shape[1] < 2:
        raise FeatureError("correlation_matrix requires at least 2 dimensions per signal")
    centered = data - data.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    if np.any(norms * norms < _VARIANCE_EPS):
        raise FeatureError("correlation_matrix given a constant row")
    normalized = centered / norms[:, None]
    gram = normalized @ normalized.T
    return np.clip(gram, -1.0, 1.0)
