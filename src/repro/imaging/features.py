"""Image-to-feature pipeline (Sections 3.1.2, 3.2, 3.4 combined).

:class:`FeatureExtractor` turns one gray-scale image into the matrix of
normalised region feature vectors that becomes the image's bag:

1. extract every region of the configured family,
2. drop regions whose raw pixel variance falls below the threshold
   ("low-variance regions are not likely to be interesting", Section 3.2),
3. smooth-and-sample each surviving region to ``h x h``,
4. optionally add the left-right mirror of each region,
5. normalise each flattened vector per Section 3.4.

The mirror of a region's smoothed matrix equals the smoothed matrix of the
mirrored region (the block grid is anchored symmetrically at both edges), so
mirrors are produced by flipping the ``h x h`` matrix instead of re-smoothing
— an exact optimisation, verified by a test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FeatureError
from repro.imaging.image import GrayImage
from repro.imaging.regions import Region, RegionFamily, default_region_family
from repro.imaging.smoothing import smooth_and_sample
from repro.imaging.transform import normalize_feature

#: Default raw-variance threshold below which a region is discarded.  Gray
#: values live in [0, 1]; flat synthetic backgrounds sit around 1e-5 after
#: sensor noise while structured regions exceed 1e-3.
DEFAULT_VARIANCE_THRESHOLD = 1e-4


@dataclass(frozen=True)
class InstanceSource:
    """Provenance of one instance: which region produced it, mirrored or not."""

    region_index: int
    region_name: str
    mirrored: bool

    def describe(self) -> str:
        """Human-readable provenance, e.g. ``"quadrant-ne (mirrored)"``."""
        suffix = " (mirrored)" if self.mirrored else ""
        return f"{self.region_name}{suffix}"


@dataclass(frozen=True)
class FeatureSet:
    """The extracted instances of one image.

    Attributes:
        vectors: ``(n_instances, resolution**2)`` normalised feature matrix.
        sources: per-row provenance, same length as ``vectors``.
        dropped_regions: names of regions removed by the variance filter.
    """

    vectors: np.ndarray
    sources: tuple[InstanceSource, ...]
    dropped_regions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2:
            raise FeatureError(f"FeatureSet vectors must be 2-D, got shape {self.vectors.shape}")
        if len(self.sources) != self.vectors.shape[0]:
            raise FeatureError(
                f"{self.vectors.shape[0]} vectors but {len(self.sources)} sources"
            )

    @property
    def n_instances(self) -> int:
        """Number of instances extracted."""
        return self.vectors.shape[0]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality (``resolution**2``)."""
        return self.vectors.shape[1]


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration of the image-to-bag feature pipeline.

    Attributes:
        resolution: the ``h`` of the paper (``h x h`` sampling); default 10.
        region_family: which region family to sweep; default the 20-region
            family (up to 40 instances with mirrors).
        include_mirrors: add the left-right mirror of each region
            (Section 3.2); default True.
        variance_threshold: raw-variance cutoff for the region filter; set to
            0 to keep every region.
        keep_full_frame: never let the variance filter remove the full-frame
            region, so a bag is never empty.
    """

    resolution: int = 10
    region_family: RegionFamily = field(default_factory=default_region_family)
    include_mirrors: bool = True
    variance_threshold: float = DEFAULT_VARIANCE_THRESHOLD
    keep_full_frame: bool = True

    def __post_init__(self) -> None:
        if self.resolution < 2:
            raise FeatureError(f"resolution must be >= 2, got {self.resolution}")
        if self.variance_threshold < 0:
            raise FeatureError(
                f"variance_threshold must be >= 0, got {self.variance_threshold}"
            )

    @property
    def n_dims(self) -> int:
        """Feature dimensionality implied by the resolution."""
        return self.resolution * self.resolution

    @property
    def max_instances(self) -> int:
        """Upper bound on instances per bag for this configuration."""
        per_region = 2 if self.include_mirrors else 1
        return len(self.region_family) * per_region


class FeatureExtractor:
    """Turns gray images into normalised region-instance matrices."""

    def __init__(self, config: FeatureConfig | None = None):
        self._config = config or FeatureConfig()

    @property
    def config(self) -> FeatureConfig:
        """The active pipeline configuration."""
        return self._config

    def extract(self, image: GrayImage) -> FeatureSet:
        """Run the full pipeline on one image.

        Raises:
            FeatureError: if no region survives (e.g. a constant image).
        """
        cfg = self._config
        vectors: list[np.ndarray] = []
        sources: list[InstanceSource] = []
        dropped: list[str] = []

        for index, region in enumerate(cfg.region_family):
            crop = region.extract(image.pixels)
            if self._rejected(region, crop, index):
                dropped.append(region.name or f"region-{index}")
                continue
            matrix = smooth_and_sample(crop, cfg.resolution)
            for mirrored in self._orientations():
                oriented = matrix[:, ::-1] if mirrored else matrix
                try:
                    vector = normalize_feature(oriented.reshape(-1))
                except FeatureError:
                    # A region can pass the raw-variance filter yet become
                    # constant after heavy smoothing; treat it as filtered.
                    dropped.append(region.name or f"region-{index}")
                    break
                vectors.append(vector)
                sources.append(
                    InstanceSource(
                        region_index=index,
                        region_name=region.name or f"region-{index}",
                        mirrored=mirrored,
                    )
                )

        if not vectors:
            raise FeatureError(
                f"no region of image {image.image_id or '<unnamed>'} survived "
                "feature extraction (constant image?)"
            )
        return FeatureSet(
            vectors=np.vstack(vectors),
            sources=tuple(sources),
            dropped_regions=tuple(dropped),
        )

    def _rejected(self, region: Region, crop: np.ndarray, index: int) -> bool:
        """Apply the low-variance region filter."""
        cfg = self._config
        if cfg.keep_full_frame and index == 0:
            return False
        if cfg.variance_threshold == 0:
            return False
        return float(crop.var()) < cfg.variance_threshold

    def _orientations(self) -> tuple[bool, ...]:
        return (False, True) if self._config.include_mirrors else (False,)
