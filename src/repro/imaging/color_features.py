"""Colour feature variant (Chapter 5 future work).

The thesis reports an attempt to "make use of color information in color
natural scene images.  We used RGB values separately and used a similar
approach as we did with gray-scale images, tripling the number of dimensions
of feature vectors."  This module implements that variant: each region
yields one vector per colour channel, concatenated to a ``3 * h**2``-dim
instance, each channel block normalised independently (so the Section 3.4
correlation correspondence holds per channel).

:class:`RgbRegionCorpus` adapts an :class:`~repro.database.store.ImageDatabase`
to the corpus protocol with these tripled features, so the standard feedback
loop and ranking run unchanged — mirroring how the thesis swapped feature
representations without touching the learner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DatabaseError, FeatureError
from repro.imaging.features import FeatureConfig
from repro.imaging.smoothing import smooth_and_sample, smooth_and_sample_stack
from repro.imaging.transform import normalize_feature

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.core.retrieval import RetrievalCandidate
    from repro.database.store import ImageDatabase


class RgbFeatureExtractor:
    """Region features with per-channel RGB blocks (3 * h**2 dims)."""

    def __init__(self, config: FeatureConfig | None = None):
        self._config = config or FeatureConfig()

    @property
    def config(self) -> FeatureConfig:
        """The pipeline configuration (resolution, regions, mirrors)."""
        return self._config

    @property
    def n_dims(self) -> int:
        """Tripled feature dimensionality."""
        return 3 * self._config.n_dims

    def extract(self, rgb: np.ndarray) -> np.ndarray:
        """Instance matrix of one RGB image.

        The per-channel work is batched: each region is cropped once from
        the ``(m, n, 3)`` array, the channel variances reduce over views
        of that one crop (computed per channel so the floating-point
        summation matches the reference loop bit-for-bit), and all three
        channels ride through a single integral-image smoothing pass
        (:func:`~repro.imaging.smoothing.smooth_and_sample_stack`) instead
        of three — the feature vectors are identical to the per-channel
        loop (:func:`extract_rgb_by_loop`, asserted by the test suite).

        Args:
            rgb: ``(m, n, 3)`` float array in [0, 1].

        Returns:
            ``(n_instances, 3 * resolution**2)`` matrix.

        Raises:
            FeatureError: if no region survives (constant image) or the
                input is not an RGB array.
        """
        rgb = np.asarray(rgb, dtype=np.float64)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise FeatureError(
                f"RGB features require an (m, n, 3) array, got shape {rgb.shape}"
            )
        cfg = self._config
        vectors: list[np.ndarray] = []
        for index, region in enumerate(cfg.region_family):
            top, left, height, width = region.pixel_box(rgb.shape[0], rgb.shape[1])
            crop = rgb[top : top + height, left : left + width, :]
            keep_anyway = cfg.keep_full_frame and index == 0
            if not keep_anyway:
                # Per-channel .var() over 2-D views that share the reference
                # loop's memory layout — a joint var(axis=(0, 1)) groups
                # numpy's pairwise summation differently and can move a
                # region sitting exactly on the threshold by ulps.
                variance = float(
                    np.mean([crop[..., channel].var() for channel in range(3)])
                )
                if variance < cfg.variance_threshold:
                    continue
            stack = smooth_and_sample_stack(crop, cfg.resolution)
            for mirrored in (False, True) if cfg.include_mirrors else (False,):
                oriented = stack[:, ::-1, :] if mirrored else stack
                blocks = []
                failed = False
                for channel in range(3):
                    try:
                        blocks.append(
                            normalize_feature(oriented[..., channel].reshape(-1))
                        )
                    except FeatureError:
                        failed = True
                        break
                if not failed:
                    vectors.append(np.concatenate(blocks))
        if not vectors:
            raise FeatureError("no region survived RGB feature extraction")
        return np.vstack(vectors)


def extract_rgb_by_loop(
    rgb: np.ndarray, config: FeatureConfig | None = None
) -> np.ndarray:
    """The per-region/per-channel reference implementation of RGB extraction.

    Crops, measures and smooths each colour channel separately — three
    :func:`~repro.imaging.smoothing.smooth_and_sample` calls per region.
    Kept as the reference the batched
    :meth:`RgbFeatureExtractor.extract` is asserted feature-identical to
    (``tests/test_color_features.py``); production code should use the
    extractor.

    Raises:
        FeatureError: if no region survives or the input is not RGB.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise FeatureError(
            f"RGB features require an (m, n, 3) array, got shape {rgb.shape}"
        )
    cfg = config or FeatureConfig()
    vectors: list[np.ndarray] = []
    for index, region in enumerate(cfg.region_family):
        crops = [region.extract(rgb[..., channel]) for channel in range(3)]
        variance = float(np.mean([crop.var() for crop in crops]))
        keep_anyway = cfg.keep_full_frame and index == 0
        if not keep_anyway and variance < cfg.variance_threshold:
            continue
        matrices = [smooth_and_sample(crop, cfg.resolution) for crop in crops]
        for mirrored in (False, True) if cfg.include_mirrors else (False,):
            blocks = []
            failed = False
            for matrix in matrices:
                oriented = matrix[:, ::-1] if mirrored else matrix
                try:
                    blocks.append(normalize_feature(oriented.reshape(-1)))
                except FeatureError:
                    failed = True
                    break
            if not failed:
                vectors.append(np.concatenate(blocks))
    if not vectors:
        raise FeatureError("no region survived RGB feature extraction")
    return np.vstack(vectors)


class RgbRegionCorpus:
    """Corpus adapter serving tripled-RGB region bags over a database.

    Implements ``instances_for`` / ``category_of`` / ``packed`` /
    ``retrieval_candidates`` so the standard
    :class:`~repro.core.feedback.FeedbackLoop` and the vectorised
    :class:`~repro.core.retrieval.Ranker` run on colour features.
    """

    def __init__(self, database: ImageDatabase, config: FeatureConfig | None = None):
        from repro.core.retrieval import CorpusPacker

        self._database = database
        self._extractor = RgbFeatureExtractor(config)
        self._cache: dict[str, np.ndarray] = {}
        self._packer = CorpusPacker()

    @property
    def extractor(self) -> RgbFeatureExtractor:
        """The underlying extractor."""
        return self._extractor

    def instances_for(self, image_id: str) -> np.ndarray:
        """Tripled-RGB instance matrix of one image (cached)."""
        if image_id not in self._cache:
            record = self._database.record(image_id)
            rgb = record.image.rgb
            if rgb is None:
                raise DatabaseError(
                    f"image {image_id!r} has no stored RGB data; the colour "
                    "variant needs colour images"
                )
            self._cache[image_id] = self._extractor.extract(rgb)
        return self._cache[image_id]

    def category_of(self, image_id: str) -> str:
        """Ground-truth category (delegates to the database)."""
        return self._database.category_of(image_id)

    def packed(self, ids=None):
        """Columnar tripled-RGB corpus view (cached over the whole database,
        keyed on the database's mutation counter).

        Raises:
            DatabaseError: for an unknown id or a gray-only image.
        """
        return self._packer.packed(
            ids,
            all_ids=self._database.image_ids,
            category_of=self.category_of,
            instances_for=self.instances_for,
            version=self._database.version,
        )

    def retrieval_candidates(self, ids) -> "list[RetrievalCandidate]":
        """Per-image compatibility view (zero-copy over the feature cache)."""
        from repro.core.retrieval import RetrievalCandidate

        return [
            RetrievalCandidate(
                image_id=image_id,
                category=self.category_of(image_id),
                instances=self.instances_for(image_id),
            )
            for image_id in ids
        ]
