"""Command-line interface: build databases, run queries, serve, run experiments.

Seven subcommands cover the everyday workflows::

    python -m repro build-db     --kind scenes --per-category 20 --out db.npz
    python -m repro query        --db db.npz --category waterfall --top-k 10
    python -m repro batch-query  --db db.npz --categories waterfall,sunset --workers 4
    python -m repro serve        --db db.npz --port 8000
    python -m repro client-query --url http://127.0.0.1:8000 --positive id1,id2
    python -m repro experiment   --db db.npz --category waterfall --scheme inequality
    python -m repro info         --db db.npz
    python -m repro synth generate --preset cluttered --bags 100000 --out corpus/
    python -m repro synth inspect  --dir corpus/ --verify
    python -m repro synth pack     --dir corpus/ --out corpus.npz
    python -m repro index build    --db db.npz --out indexed.npz --reorder
    python -m repro index inspect  --db indexed.npz
    python -m repro --version

``build-db`` resolves ``--kind`` through the dataset registry
(:func:`repro.datasets.loader.make_dataset`), the same way queries resolve
learners.  ``synth`` drives the streamed procedural corpus generator
(:mod:`repro.datasets.synth`): ``generate`` writes checksummed npz shards
in bounded memory and resumes interrupted runs, ``inspect`` reads the
manifest back, ``pack`` folds a shard directory into one packed-corpus
archive.

``index`` manages the offline rank-acceleration tiers: ``build`` packs a
database snapshot's corpus (optionally re-packed in clustered-centroid
order), builds the sharded bound-pruned rank index and the hash-coded
coarse tier (:mod:`repro.index.ann`), and writes a format-v4 snapshot;
``inspect`` reports what a snapshot carries.

``serve`` starts an HTTP worker (``repro.serve``) over a database snapshot
— or a warm service snapshot (``--snapshot``), which restores the packed
corpora and the trained-concept cache so the first repeated query needs no
retraining, or a sharded synthetic corpus directory (``--corpus-dir``).
``client-query`` drives a running worker through the versioned wire
format.

All commands are seeded and print plain text; they are thin wrappers over
the library API (each maps to a handful of calls documented in the README),
so anything the CLI does can be scripted directly.  ``query`` and
``batch-query`` go through :class:`~repro.api.service.RetrievalService`,
so ``--learner`` accepts any name in the learner registry (``dd``,
``emdd``, ``maron-ratan``, ``random``, ``global-correlation``, plus any
learner registered by user code).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
from pathlib import Path

from repro.api.learners import available_learners, shape_learner_params
from repro.api.query import Query
from repro.api.service import RetrievalService
from repro.core.feedback import select_examples
from repro.database.persistence import load_database, save_database
from repro.datasets.loader import available_datasets, make_dataset
from repro.datasets.synth import (
    ShardedCorpusReader,
    available_presets,
    generate_corpus,
    get_preset,
    save_packed_corpus,
)
from repro.errors import ReproError
from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
from repro.eval.reporting import ascii_table
from repro.serve.app import ServiceApp
from repro.serve.http import ReproClient, ReproServer
from repro.serve.sessions import SessionStore
from repro.serve.snapshot import load_corpus_service, load_service
from repro.version import __version__

_SCHEMES = ["original", "identical", "alpha_hack", "inequality"]
_ENGINES = ["batched", "sequential"]


def _add_training_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that trains a concept."""
    parser.add_argument("--train-engine", dest="train_engine", default="batched",
                        choices=_ENGINES,
                        help="multi-start execution engine: 'batched' steps "
                        "all restarts in lockstep (one tensor pass per "
                        "step), 'sequential' runs one solver per restart")
    parser.add_argument("--restart-prune-margin", dest="restart_prune_margin",
                        type=float, default=None, metavar="MARGIN",
                        help="batched engine only: freeze restarts whose "
                        "NLL trails the incumbent best by more than MARGIN "
                        "(dynamic Section 4.3 thinning; default off)")
    parser.add_argument("--verbose", action="store_true",
                        help="print training diagnostics (wall time, pruned "
                        "restart counts, concept-cache stats)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Image retrieval with multiple-instance learning "
        "(Yang & Lozano-Perez, ICDE 2000 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-db", help="render a synthetic database")
    build.add_argument("--kind", default="scenes",
                       help=f"dataset registry name (known: "
                       f"{', '.join(available_datasets())})")
    build.add_argument("--per-category", type=int, default=20)
    build.add_argument("--size", type=int, default=80, help="image side in pixels")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="output .npz snapshot path")

    query = commands.add_parser("query", help="train on examples and rank")
    query.add_argument("--db", required=True, help="database snapshot path")
    query.add_argument("--category", required=True)
    query.add_argument("--learner", default="dd",
                       help=f"learner registry name (known: "
                       f"{', '.join(available_learners())})")
    query.add_argument("--scheme", default="inequality", choices=_SCHEMES)
    query.add_argument("--beta", type=float, default=0.5)
    query.add_argument("--positives", type=int, default=4)
    query.add_argument("--negatives", type=int, default=4)
    query.add_argument("--top-k", "--top", dest="top", type=int, default=10,
                       help="truncate the ranking to the best K matches "
                       "(server-side top-k)")
    query.add_argument("--seed", type=int, default=0)
    _add_training_flags(query)

    batch = commands.add_parser(
        "batch-query", help="run one query per category through the service"
    )
    batch.add_argument("--db", required=True, help="database snapshot path")
    batch.add_argument("--categories", required=True,
                       help="comma-separated target categories (repeat a "
                       "category to simulate more traffic)")
    batch.add_argument("--learner", default="dd",
                       help=f"learner registry name (known: "
                       f"{', '.join(available_learners())})")
    batch.add_argument("--scheme", default="inequality", choices=_SCHEMES)
    batch.add_argument("--beta", type=float, default=0.5)
    batch.add_argument("--positives", type=int, default=4)
    batch.add_argument("--negatives", type=int, default=4)
    batch.add_argument("--top-k", "--top", dest="top", type=int, default=10,
                       help="truncate each ranking to the best K matches "
                       "(server-side top-k)")
    batch.add_argument("--workers", type=int, default=1,
                       help="thread-pool size (1 = sequential)")
    batch.add_argument("--seed", type=int, default=0)
    _add_training_flags(batch)

    experiment = commands.add_parser(
        "experiment", help="run the full Section 4.1 protocol"
    )
    experiment.add_argument("--db", required=True)
    experiment.add_argument("--category", required=True)
    experiment.add_argument("--learner", default="dd",
                            choices=["dd", "emdd", "maron-ratan"])
    experiment.add_argument("--scheme", default="inequality", choices=_SCHEMES)
    experiment.add_argument("--beta", type=float, default=0.5)
    experiment.add_argument("--rounds", type=int, default=3)
    experiment.add_argument("--positives", type=int, default=5)
    experiment.add_argument("--negatives", type=int, default=5)
    experiment.add_argument("--training-fraction", type=float, default=0.4)
    experiment.add_argument("--seed", type=int, default=0)
    _add_training_flags(experiment)

    info = commands.add_parser("info", help="describe a database snapshot")
    info.add_argument("--db", required=True)

    serve = commands.add_parser(
        "serve", help="serve the retrieval API over HTTP (repro.serve worker)"
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--db", help="database snapshot path (cold worker)")
    source.add_argument("--snapshot",
                        help="warm service snapshot path (packed corpora + "
                        "trained-concept cache restored; see "
                        "repro.serve.save_service)")
    source.add_argument("--corpus-dir", dest="corpus_dir",
                        help="sharded synthetic corpus directory "
                        "(repro synth generate output)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="trained-concept cache capacity (0 disables)")
    serve.add_argument("--max-history", type=int, default=1000,
                       help="per-query timing records kept (memory bound)")
    serve.add_argument("--session-ttl", type=float, default=1800.0,
                       help="idle feedback-session lifetime in seconds")
    serve.add_argument("--max-sessions", type=int, default=1024,
                       help="concurrent feedback sessions held (LRU beyond)")
    serve.add_argument("--warm", default="dd", metavar="LEARNERS",
                       help="comma-separated learner families whose corpora "
                       "to precompute before serving ('' skips warming)")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count for the bound-pruned rank index "
                       "(default: automatic, ~one shard per 16k images)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="serve from N pre-forked worker processes sharing "
                            "one shared-memory corpus (1 = in-process)")
    serve.add_argument("--scatter", dest="min_scatter_bags", type=int,
                       default=None, metavar="BAGS",
                       help="with --workers N: scatter one rank query's "
                            "shard ranges across every worker when the "
                            "corpus holds at least BAGS bags (default: the "
                            "4096-bag auto-shard threshold; 0 disables "
                            "scatter)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="how long a SIGTERM/SIGINT shutdown waits for "
                            "in-flight requests to finish")
    serve.add_argument("--read-timeout", dest="read_timeout", type=float,
                       default=30.0, metavar="SECONDS",
                       help="per-connection socket timeout on header and "
                            "body reads (slow-client protection; a stalled "
                            "body gets HTTP 408)")
    serve.add_argument("--no-rank-index", dest="rank_index",
                       action="store_false",
                       help="rank exhaustively: never route top-k queries "
                       "through the sharded rank index (rankings are "
                       "identical either way)")
    serve.add_argument("--rank-mode", dest="rank_mode", default=None,
                       choices=["exact", "approx"],
                       help="serving rank mode: 'exact' (default) is "
                       "ordering-identical to the reference loop; 'approx' "
                       "answers top-k queries from the hash-coded coarse "
                       "tier (repro.index.ann), trading measured recall "
                       "for speed.  With --snapshot, the default keeps the "
                       "saved service's mode")
    serve.add_argument("--reorder", dest="reorder_bags", action="store_true",
                       help="re-pack the corpus in clustered-centroid order "
                       "at warm time (rankings identical; bound pruning "
                       "tightens)")

    client = commands.add_parser(
        "client-query", help="query a running repro serve worker"
    )
    client.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8000")
    client.add_argument("--positive", required=True,
                        help="comma-separated positive example image ids")
    client.add_argument("--negative", default="",
                        help="comma-separated negative example image ids")
    client.add_argument("--learner", default="dd",
                        help=f"learner registry name (known: "
                        f"{', '.join(available_learners())})")
    client.add_argument("--scheme", default="inequality", choices=_SCHEMES)
    client.add_argument("--beta", type=float, default=0.5)
    client.add_argument("--top-k", "--top", dest="top", type=int, default=10)
    client.add_argument("--seed", type=int, default=0)
    client.add_argument("--timeout", type=float, default=60.0,
                        help="per-request timeout in seconds")
    client.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                        default=None, metavar="MS",
                        help="per-request server-side deadline budget in "
                        "milliseconds (expiry returns HTTP 504 instead of "
                        "waiting on a hung worker)")

    synth = commands.add_parser(
        "synth", help="generate/inspect/pack procedural corpora at scale"
    )
    synth_commands = synth.add_subparsers(dest="synth_command", required=True)

    generate = synth_commands.add_parser(
        "generate", help="stream a scenario corpus into a sharded directory"
    )
    generate.add_argument("--preset", default="clean",
                          help=f"scenario preset (known: "
                          f"{', '.join(available_presets())})")
    generate.add_argument("--bags", type=int, default=None,
                          help="total bag target; overrides the preset's "
                          "bags-per-category (rounded up per category)")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the preset's master seed")
    generate.add_argument("--shard-size", dest="shard_size", type=int,
                          default=1024, help="bags per npz shard")
    generate.add_argument("--out", required=True, help="corpus directory")
    generate.add_argument("--fresh", action="store_true",
                          help="regenerate everything (default: resume, "
                          "adopting shards whose checksum matches)")

    inspect_cmd = synth_commands.add_parser(
        "inspect", help="describe a sharded corpus directory"
    )
    inspect_cmd.add_argument("--dir", dest="corpus_dir", required=True)
    inspect_cmd.add_argument("--verify", action="store_true",
                             help="re-checksum every shard")

    pack = synth_commands.add_parser(
        "pack", help="fold a sharded corpus into one packed .npz"
    )
    pack.add_argument("--dir", dest="corpus_dir", required=True)
    pack.add_argument("--out", required=True, help="output .npz path")

    chaos = commands.add_parser(
        "chaos",
        help="soak a worker pool under seeded fault injection and assert "
        "rankings stay bit-identical to a fault-free run",
    )
    chaos.add_argument("--db", required=True, help="database snapshot path")
    chaos.add_argument("--workers", type=int, default=2, metavar="N",
                       help="pool width for both the baseline and the "
                       "faulted run")
    chaos.add_argument("--seed", type=int, default=7,
                       help="seeds the request mix and the fault plan")
    chaos.add_argument("--requests", type=int, default=24, metavar="N",
                       help="length of the query/rank/feedback mix")
    chaos.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                       default=3000.0, metavar="MS",
                       help="per-request budget during the faulted run")
    chaos.add_argument("--faults", type=int, default=6, metavar="N",
                       help="how many faults the seeded plan injects")
    chaos.add_argument("--min-restarts", dest="min_restarts", type=int,
                       default=0, metavar="N",
                       help="fail unless the faulted run restarted at "
                       "least N workers (proves faults actually fired)")
    chaos.add_argument("--json", action="store_true",
                       help="print the report as JSON (for CI artifacts)")

    index = commands.add_parser(
        "index", help="build/inspect the offline rank-acceleration tiers"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)

    index_build = index_commands.add_parser(
        "build", help="build the rank index + coarse tier into a v4 snapshot"
    )
    index_build.add_argument("--db", required=True,
                             help="database snapshot path")
    index_build.add_argument("--out", required=True,
                             help="output .npz snapshot path (may equal --db)")
    index_build.add_argument("--reorder", action="store_true",
                             help="re-pack the corpus in clustered-centroid "
                             "order first (rankings identical; bound "
                             "pruning tightens)")
    index_build.add_argument("--shards", type=int, default=None, metavar="N",
                             help="shard count for the bound-pruned rank "
                             "index (default: automatic)")
    index_build.add_argument("--bits", type=int, default=None, metavar="B",
                             help="coarse-tier code width in bits "
                             "(default 128)")
    index_build.add_argument("--tables", type=int, default=None, metavar="T",
                             help="coarse-tier banded lookup tables "
                             "(default 4)")
    index_build.add_argument("--band-bits", dest="band_bits", type=int,
                             default=None, metavar="B",
                             help="bits per lookup band (default 16)")

    index_inspect = index_commands.add_parser(
        "inspect", help="report what a snapshot's packed corpus carries"
    )
    index_inspect.add_argument("--db", required=True,
                               help="database snapshot path")

    return parser


def _learner_params(args: argparse.Namespace) -> dict[str, object]:
    """CLI flags -> learner params, shaped per learner family."""
    return shape_learner_params(
        args.learner,
        scheme=args.scheme,
        beta=args.beta,
        start_bag_subset=2,
        seed=args.seed,
        engine=args.train_engine,
        restart_prune_margin=args.restart_prune_margin,
    )


def _cache_line(service: RetrievalService) -> str:
    """One-line concept-cache summary for ``--verbose`` output."""
    stats = service.cache_stats
    return (
        f"concept cache: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}), {stats.entries} entries"
    )


def _category_query(
    service: RetrievalService, args: argparse.Namespace, category: str, seed: int
) -> Query:
    """Build one seeded simulated-user query for a target category."""
    selection = select_examples(
        service.database,
        service.database.image_ids,
        category,
        n_positive=args.positives,
        n_negative=args.negatives,
        seed=seed,
    )
    return Query(
        positive_ids=selection.positive_ids,
        negative_ids=selection.negative_ids,
        learner=args.learner,
        params=_learner_params(args),
        top_k=args.top,
        query_id=category,
    )


def _cmd_build_db(args: argparse.Namespace) -> int:
    database = make_dataset(
        args.kind,
        images_per_category=args.per_category,
        size=(args.size, args.size),
        seed=args.seed,
    )
    path = save_database(database, Path(args.out))
    print(f"wrote {database} to {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    service = RetrievalService(database)
    result = service.query(_category_query(service, args, args.category, args.seed))
    rows = [
        [entry.rank + 1, entry.image_id, entry.category, entry.distance]
        for entry in result.top()
    ]
    print(
        ascii_table(
            ["rank", "image", "category", "distance"],
            rows,
            title=f"top {args.top} matches for {args.category!r} "
            f"({args.learner} learner)",
        )
    )
    hits = sum(1 for entry in result.top() if entry.category == args.category)
    print(f"precision@{args.top} = {hits / args.top:.2f}")
    print(
        f"ranked {result.total_candidates} candidates "
        f"(kept top {len(result.ranking)}); "
        f"timing: fit {result.timing.fit_seconds:.2f}s, "
        f"rank {result.timing.rank_seconds:.2f}s"
    )
    if args.verbose and result.training is not None:
        training = result.training
        engine = training.concept.metadata.get("engine", args.train_engine)
        print(
            f"training: engine {engine}, "
            f"wall time {training.wall_time_s:.3f}s, "
            f"{training.n_starts} starts ({training.n_starts_pruned} pruned)"
        )
        print(_cache_line(service))
    return 0


def _cmd_batch_query(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    service = RetrievalService(database)
    categories = [c.strip() for c in args.categories.split(",") if c.strip()]
    if not categories:
        print("error: --categories supplied no category names", file=sys.stderr)
        return 2
    queries = [
        _category_query(service, args, category, args.seed + index)
        for index, category in enumerate(categories)
    ]
    started_at = time.perf_counter()
    results = service.batch_query(queries, workers=args.workers)
    elapsed = time.perf_counter() - started_at
    rows = []
    for result in results:
        category = result.query.query_id
        top = result.top()
        rows.append(
            [
                category,
                result.query.learner,
                top[0].image_id if top else "-",
                f"{result.precision_at(args.top, category):.2f}" if top else "-",
                f"{result.timing.fit_seconds:.2f}",
            ]
        )
    print(
        ascii_table(
            ["category", "learner", "best match", f"p@{args.top}", "fit s"],
            rows,
            title=f"batch of {len(results)} queries ({args.workers} workers)",
        )
    )
    print(
        f"wall time {elapsed:.2f}s, "
        f"throughput {len(results) / elapsed:.2f} queries/s"
    )
    if args.verbose:
        trainings = [r.training for r in results if r.training is not None]
        pruned = sum(training.n_starts_pruned for training in trainings)
        engines = {
            training.concept.metadata.get("engine", args.train_engine)
            for training in trainings
        } or {args.train_engine}
        print(
            f"training engine {'/'.join(sorted(engines))}, "
            f"{pruned} restarts pruned"
        )
        print(_cache_line(service))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    config = ExperimentConfig(
        target_category=args.category,
        learner=args.learner,
        scheme=args.scheme,
        beta=args.beta,
        rounds=args.rounds,
        n_positive=args.positives,
        n_negative=args.negatives,
        training_fraction=args.training_fraction,
        start_bag_subset=2,
        start_instance_stride=2,
        max_iterations=60,
        seed=args.seed,
        engine=args.train_engine,
        restart_prune_margin=args.restart_prune_margin,
    )
    result = RetrievalExperiment(database, config).run()
    base_rate = result.n_relevant / len(result.relevance)
    rows = [
        [record.index, record.n_positive_bags, record.n_negative_bags,
         record.training_precision_at_10]
        for record in result.outcome.rounds
    ]
    print(
        ascii_table(
            ["round", "pos bags", "neg bags", "train p@10"],
            rows,
            title=f"experiment: {args.category!r} via {args.scheme}",
        )
    )
    print(
        f"test AP = {result.average_precision:.3f} (base rate {base_rate:.2f}); "
        f"band precision [0.3,0.4] = {result.band_precision:.3f}; "
        f"{result.elapsed_seconds:.1f}s"
    )
    if args.verbose:
        final = result.outcome.final_training
        engine = final.concept.metadata.get("engine", args.train_engine)
        print(
            f"final round: engine {engine}, "
            f"wall time {final.wall_time_s:.3f}s, "
            f"{final.n_starts} starts ({final.n_starts_pruned} pruned)"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    rows = [[category, count] for category, count in
            sorted(database.category_sizes().items())]
    print(ascii_table(["category", "images"], rows, title=repr(database)))
    config = database.feature_config
    print(
        f"features: h={config.resolution} ({config.n_dims} dims), "
        f"regions={config.region_family.name}, mirrors={config.include_mirrors}, "
        f"max {config.max_instances} instances/bag"
    )
    return 0


def build_server(args: argparse.Namespace):
    """Assemble the HTTP worker the ``serve`` command runs (test seam).

    Loads a cold database snapshot (``--db``), a warm service snapshot
    (``--snapshot``) or a sharded synthetic corpus directory
    (``--corpus-dir``), warms the requested learner corpora, and returns
    an unstarted :class:`~repro.serve.http.ReproServer`.
    """
    rank_mode = getattr(args, "rank_mode", None)
    reorder_bags = bool(getattr(args, "reorder_bags", False))
    read_timeout = getattr(args, "read_timeout", None) or 30.0
    if getattr(args, "corpus_dir", None):
        service, info = load_corpus_service(
            args.corpus_dir,
            cache_size=args.cache_size,
            max_history=args.max_history,
            rank_index=args.rank_index,
            rank_shards=args.shards,
            rank_mode=rank_mode or "exact",
            reorder_bags=reorder_bags,
        )
        print(f"opened sharded corpus {info.path}: {info.n_images} bags")
    elif args.snapshot:
        service, info = load_service(
            args.snapshot,
            cache_size=args.cache_size,
            max_history=args.max_history,
            rank_index=args.rank_index,
            rank_shards=args.shards,
            # None keeps the snapshot's saved mode.
            rank_mode=rank_mode,
        )
        print(
            f"restored warm worker from {info.path.name}: {info.n_images} images, "
            f"{len(info.corpus_keys)} corpora, {info.n_cache_entries} cached concepts"
        )
    else:
        service = RetrievalService(
            load_database(args.db),
            cache_size=args.cache_size,
            max_history=args.max_history,
            rank_index=args.rank_index,
            rank_shards=args.shards,
            rank_mode=rank_mode or "exact",
            reorder_bags=reorder_bags,
        )
    for learner in [name.strip() for name in args.warm.split(",") if name.strip()]:
        service.warm(learner)
    if service.rank_mode == "approx":
        print("approximate ranking on (hash-coded coarse tier)")
    n_workers = getattr(args, "workers", 1) or 1
    if n_workers > 1:
        from repro.serve.workers import WorkerDispatchApp, WorkerPool

        pool = WorkerPool.from_service(
            service,
            n_workers,
            session_ttl=args.session_ttl,
            max_sessions=args.max_sessions,
        )
        print(
            f"started {pool.n_workers} workers "
            f"(pids {', '.join(map(str, pool.worker_pids()))}) over one "
            f"shared-memory corpus"
        )
        app = WorkerDispatchApp(
            pool,
            service=service,
            min_scatter_bags=getattr(args, "min_scatter_bags", None),
        )
        if app.scatter is not None:
            print(
                f"scatter/gather ranking on from "
                f"{app.scatter.min_scatter_bags} bags"
            )
        return ReproServer(app, host=args.host, port=args.port,
                           read_timeout=read_timeout)
    sessions = SessionStore(
        service, ttl_seconds=args.session_ttl, max_sessions=args.max_sessions
    )
    return ReproServer(ServiceApp(service, sessions=sessions),
                       host=args.host, port=args.port,
                       read_timeout=read_timeout)


def _cmd_serve(args: argparse.Namespace) -> int:
    server = build_server(args)
    app = server.app
    if hasattr(app, "pool"):
        database_repr = f"worker pool x{app.pool.n_workers}"
    else:
        database_repr = repr(app.service.database)
    print(
        f"serving {database_repr}\n"
        f"repro API at {server.url}/v1 "
        f"(endpoints: query, batch_query, feedback, rank, health, stats)\n"
        f"press Ctrl-C or send SIGTERM to stop (drains in-flight requests)"
    )
    # serve_forever() runs on a background thread and the main thread waits
    # on an Event: calling server.stop() from inside a signal handler that
    # interrupted serve_forever's own thread would deadlock in shutdown().
    stop_event = threading.Event()

    def _request_stop(signum, frame) -> None:  # noqa: ARG001 - signal API
        stop_event.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _request_stop)
    try:
        server.start()
        stop_event.wait()
        print("\ndraining")
    except KeyboardInterrupt:  # pragma: no cover - racing a late Ctrl+C
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        drain = getattr(args, "drain_timeout", 5.0)
        server.stop(drain_timeout=drain)
        closer = getattr(app, "close", None)
        if callable(closer):
            closer()
    print("stopped")
    return 0


def _cmd_client_query(args: argparse.Namespace) -> int:
    positives = tuple(i.strip() for i in args.positive.split(",") if i.strip())
    negatives = tuple(i.strip() for i in args.negative.split(",") if i.strip())
    query = Query(
        positive_ids=positives,
        negative_ids=negatives,
        learner=args.learner,
        params=shape_learner_params(
            args.learner, scheme=args.scheme, beta=args.beta,
            start_bag_subset=2, seed=args.seed,
        ),
        top_k=args.top,
    )
    client = ReproClient(args.url, timeout=args.timeout,
                         deadline_ms=getattr(args, "deadline_ms", None))
    result = client.query(query)
    rows = [
        [entry.rank + 1, entry.image_id, entry.category, entry.distance]
        for entry in result.top()
    ]
    print(
        ascii_table(
            ["rank", "image", "category", "distance"],
            rows,
            title=f"top {args.top} matches from {args.url} "
            f"({args.learner} learner)",
        )
    )
    print(
        f"ranked {result.total_candidates} candidates remotely; "
        f"server timing: fit {result.timing.fit_seconds:.2f}s, "
        f"rank {result.timing.rank_seconds:.2f}s"
    )
    return 0


def _cmd_synth_generate(args: argparse.Namespace) -> int:
    import dataclasses

    config = get_preset(args.preset)
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    if args.bags is not None:
        config = config.with_total_bags(args.bags)
    report = generate_corpus(
        config,
        args.out,
        shard_size=args.shard_size,
        resume=not args.fresh,
    )
    generated = report.n_shards - report.n_shards_skipped
    print(
        f"corpus {report.fingerprint} ({config.name}, {config.mode} mode): "
        f"{report.n_bags} bags / {report.n_instances} instances in "
        f"{report.n_shards} shards at {report.directory}"
    )
    if report.n_shards_skipped:
        print(
            f"resumed: adopted {report.n_shards_skipped} checksum-matching "
            f"shards, generated {generated}"
        )
    if report.bags_per_second > 0:
        print(
            f"generated in {report.elapsed_seconds:.1f}s "
            f"({report.bags_per_second:.0f} bags/s)"
        )
    return 0


def _cmd_synth_inspect(args: argparse.Namespace) -> int:
    reader = ShardedCorpusReader(args.corpus_dir)
    config = reader.config
    rows = [
        ["bags", reader.n_bags],
        ["instances", reader.n_instances],
        ["dims", reader.n_dims],
        ["shards", reader.n_shards],
        ["fingerprint", reader.fingerprint or "-"],
    ]
    if config is not None:
        rows.extend(
            [
                ["scenario", config.name],
                ["mode", config.mode],
                ["categories", len(config.categories)],
                ["seed", config.seed],
            ]
        )
    print(ascii_table(["field", "value"], rows,
                      title=f"sharded corpus at {reader.directory}"))
    if args.verify:
        reader.verify()
        print(f"verified: all {reader.n_shards} shard checksums match")
    return 0


def _cmd_synth_pack(args: argparse.Namespace) -> int:
    reader = ShardedCorpusReader(args.corpus_dir)
    packed = reader.packed()
    path = save_packed_corpus(
        packed, args.out, fingerprint=reader.fingerprint, config=reader.config
    )
    print(
        f"packed {packed.n_bags} bags / {packed.n_instances} instances "
        f"from {reader.n_shards} shards into {path}"
    )
    return 0


_SYNTH_HANDLERS = {
    "generate": _cmd_synth_generate,
    "inspect": _cmd_synth_inspect,
    "pack": _cmd_synth_pack,
}


def _cmd_synth(args: argparse.Namespace) -> int:
    return _SYNTH_HANDLERS[args.synth_command](args)


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.index.ann import (
        DEFAULT_BAND_BITS,
        DEFAULT_CODE_BITS,
        DEFAULT_TABLES,
        CoarseIndex,
    )

    database = load_database(args.db)
    packed = database.packed()
    if args.reorder:
        packed, _ = packed.reordered_by_centroid()
        database.adopt_packed(packed)
        print(f"reordered {packed.n_bags} bags in clustered-centroid order")
    packed.shard_index(args.shards)
    coarse = CoarseIndex.build(
        packed,
        n_bits=args.bits if args.bits is not None else DEFAULT_CODE_BITS,
        n_tables=args.tables if args.tables is not None else DEFAULT_TABLES,
        band_bits=(
            args.band_bits if args.band_bits is not None else DEFAULT_BAND_BITS
        ),
        index=packed.cached_shard_index,
    )
    packed.adopt_coarse_index(coarse)
    path = save_database(database, Path(args.out))
    print(
        f"indexed {packed.n_bags} bags: rank index "
        f"({packed.cached_shard_index.n_shards} shards) + coarse tier "
        f"({coarse.coder.n_bits} bits, {coarse.n_tables} x "
        f"{coarse.band_bits}-bit tables) into {path}"
    )
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    packed = database.cached_packed
    if packed is None:
        print(f"{args.db}: no packed corpus (cold snapshot); nothing indexed")
        return 0
    reordered = packed.image_ids != database.image_ids
    index = packed.cached_shard_index
    coarse = packed.cached_coarse_index
    rows = [
        ["bags", packed.n_bags],
        ["instances", packed.n_instances],
        ["dims", packed.n_dims],
        ["bag order", "clustered (reordered)" if reordered else "insertion"],
        ["rank index", f"{index.n_shards} shards" if index is not None else "-"],
    ]
    if coarse is not None:
        rows.extend(
            [
                ["coarse tier", f"{coarse.coder.n_bits}-bit codes"],
                ["lookup tables", f"{coarse.n_tables} x {coarse.band_bits} bits"],
            ]
        )
        stats = coarse.stats()
        rows.extend(
            [
                ["probes", stats["probes"]],
                ["fallbacks", stats["fallbacks"]],
                ["hit rate", f"{stats['hit_rate']:.2%}"],
                ["mean candidates", f"{stats['mean_candidates']:.1f}"],
                ["mean evaluated", f"{stats['mean_evaluated']:.1f}"],
            ]
        )
    else:
        rows.append(["coarse tier", "-"])
    print(ascii_table(["field", "value"], rows,
                      title=f"index tiers of {args.db}"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from repro.testing import FaultPlan, run_chaos_soak

    service = RetrievalService(load_database(args.db))
    service.warm("dd")
    plan = FaultPlan.generate(
        args.seed,
        n_workers=args.workers,
        n_faults=args.faults,
        window=max(4, args.requests // 2),
        stall_seconds=max(10.0, 5.0 * args.deadline_ms / 1000.0),
    )
    print(
        f"chaos soak: {args.requests} requests x {args.workers} workers, "
        f"seed {args.seed}, plan {dict(plan.counts())}, "
        f"deadline {args.deadline_ms:.0f}ms"
    )
    report = run_chaos_soak(
        service,
        n_workers=args.workers,
        seed=args.seed,
        n_requests=args.requests,
        deadline_ms=args.deadline_ms,
        plan=plan,
        min_scatter_bags=1,
    )
    if args.json:
        print(_json.dumps({
            "n_requests": report.n_requests,
            "n_faults_planned": report.n_faults_planned,
            "fault_counts": report.fault_counts,
            "n_retries": report.n_retries,
            "n_failures": report.n_failures,
            "baseline_failures": report.baseline_failures,
            "mismatches": report.mismatches,
            "resilience": report.resilience,
            "n_restarts": report.n_restarts,
            "max_attempt_seconds": report.max_attempt_seconds,
            "deadline_ms": report.deadline_ms,
            "elapsed_seconds": report.elapsed_seconds,
            "ok": report.ok,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"faulted run: {report.n_retries} retries, "
            f"{report.n_restarts} worker restarts, "
            f"slowest attempt {report.max_attempt_seconds:.2f}s, "
            f"resilience {report.resilience}"
        )
        print(
            "rankings bit-identical to the fault-free run"
            if not report.mismatches
            else f"MISMATCHED requests: {report.mismatches}"
        )
    if not report.ok:
        print("error: chaos soak failed (mismatch or unanswered request)",
              file=sys.stderr)
        return 1
    if report.n_restarts < args.min_restarts:
        print(
            f"error: expected >= {args.min_restarts} worker restarts, "
            f"saw {report.n_restarts} (plan never fired?)",
            file=sys.stderr,
        )
        return 1
    return 0


_INDEX_HANDLERS = {
    "build": _cmd_index_build,
    "inspect": _cmd_index_inspect,
}


def _cmd_index(args: argparse.Namespace) -> int:
    return _INDEX_HANDLERS[args.index_command](args)


_HANDLERS = {
    "build-db": _cmd_build_db,
    "query": _cmd_query,
    "batch-query": _cmd_batch_query,
    "experiment": _cmd_experiment,
    "info": _cmd_info,
    "serve": _cmd_serve,
    "client-query": _cmd_client_query,
    "chaos": _cmd_chaos,
    "synth": _cmd_synth,
    "index": _cmd_index,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
