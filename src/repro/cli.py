"""Command-line interface: build databases, run queries, run experiments.

Four subcommands cover the everyday workflows::

    python -m repro build-db  --kind scenes --per-category 20 --out db.npz
    python -m repro query     --db db.npz --category waterfall --top 10
    python -m repro experiment --db db.npz --category waterfall --scheme inequality
    python -m repro info      --db db.npz

All commands are seeded and print plain text; they are thin wrappers over
the library API (each maps to a handful of calls documented in the README),
so anything the CLI does can be scripted directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.database.persistence import load_database, save_database
from repro.datasets.loader import build_object_database, build_scene_database
from repro.errors import ReproError
from repro.eval.experiment import ExperimentConfig, RetrievalExperiment
from repro.eval.reporting import ascii_table
from repro.session import RetrievalSession


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Image retrieval with multiple-instance learning "
        "(Yang & Lozano-Perez, ICDE 2000 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-db", help="render a synthetic database")
    build.add_argument("--kind", choices=["scenes", "objects"], default="scenes")
    build.add_argument("--per-category", type=int, default=20)
    build.add_argument("--size", type=int, default=80, help="image side in pixels")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="output .npz snapshot path")

    query = commands.add_parser("query", help="train on examples and rank")
    query.add_argument("--db", required=True, help="database snapshot path")
    query.add_argument("--category", required=True)
    query.add_argument("--scheme", default="inequality",
                       choices=["original", "identical", "alpha_hack", "inequality"])
    query.add_argument("--beta", type=float, default=0.5)
    query.add_argument("--positives", type=int, default=4)
    query.add_argument("--negatives", type=int, default=4)
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--seed", type=int, default=0)

    experiment = commands.add_parser(
        "experiment", help="run the full Section 4.1 protocol"
    )
    experiment.add_argument("--db", required=True)
    experiment.add_argument("--category", required=True)
    experiment.add_argument("--scheme", default="inequality",
                            choices=["original", "identical", "alpha_hack",
                                     "inequality"])
    experiment.add_argument("--beta", type=float, default=0.5)
    experiment.add_argument("--rounds", type=int, default=3)
    experiment.add_argument("--positives", type=int, default=5)
    experiment.add_argument("--negatives", type=int, default=5)
    experiment.add_argument("--training-fraction", type=float, default=0.4)
    experiment.add_argument("--seed", type=int, default=0)

    info = commands.add_parser("info", help="describe a database snapshot")
    info.add_argument("--db", required=True)

    return parser


def _cmd_build_db(args: argparse.Namespace) -> int:
    size = (args.size, args.size)
    if args.kind == "scenes":
        database = build_scene_database(args.per_category, size, args.seed)
    else:
        database = build_object_database(args.per_category, size, args.seed)
    path = save_database(database, Path(args.out))
    print(f"wrote {database} to {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    session = RetrievalSession(
        database,
        scheme=args.scheme,
        beta=args.beta,
        start_bag_subset=2,
        seed=args.seed,
    )
    session.add_examples(args.category, args.positives, args.negatives)
    result = session.train_and_rank()
    rows = [
        [entry.rank + 1, entry.image_id, entry.category, entry.distance]
        for entry in result.top(args.top)
    ]
    print(
        ascii_table(
            ["rank", "image", "category", "distance"],
            rows,
            title=f"top {args.top} matches for {args.category!r} "
            f"({args.scheme} scheme)",
        )
    )
    hits = sum(1 for entry in result.top(args.top) if entry.category == args.category)
    print(f"precision@{args.top} = {hits / args.top:.2f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    config = ExperimentConfig(
        target_category=args.category,
        scheme=args.scheme,
        beta=args.beta,
        rounds=args.rounds,
        n_positive=args.positives,
        n_negative=args.negatives,
        training_fraction=args.training_fraction,
        start_bag_subset=2,
        start_instance_stride=2,
        max_iterations=60,
        seed=args.seed,
    )
    result = RetrievalExperiment(database, config).run()
    base_rate = result.n_relevant / len(result.relevance)
    rows = [
        [record.index, record.n_positive_bags, record.n_negative_bags,
         record.training_precision_at_10]
        for record in result.outcome.rounds
    ]
    print(
        ascii_table(
            ["round", "pos bags", "neg bags", "train p@10"],
            rows,
            title=f"experiment: {args.category!r} via {args.scheme}",
        )
    )
    print(
        f"test AP = {result.average_precision:.3f} (base rate {base_rate:.2f}); "
        f"band precision [0.3,0.4] = {result.band_precision:.3f}; "
        f"{result.elapsed_seconds:.1f}s"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    rows = [[category, count] for category, count in
            sorted(database.category_sizes().items())]
    print(ascii_table(["category", "images"], rows, title=repr(database)))
    config = database.feature_config
    print(
        f"features: h={config.resolution} ({config.n_dims} dims), "
        f"regions={config.region_family.name}, mirrors={config.include_mirrors}, "
        f"max {config.max_instances} instances/bag"
    )
    return 0


_HANDLERS = {
    "build-db": _cmd_build_db,
    "query": _cmd_query,
    "experiment": _cmd_experiment,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
