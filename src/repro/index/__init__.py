"""Approximate indexing tiers in front of the exact rank path.

``repro.index.ann`` holds the hash-coded coarse tier: signed-random-
projection bag codes (:class:`~repro.index.ann.BagCoder`), the banded
candidate lookup (:class:`~repro.index.ann.CoarseIndex`), the
``rank_mode="approx"`` serving path
(:class:`~repro.index.ann.ApproxRanker`) and the pack-time
cluster-by-centroid bag reordering (:func:`~repro.index.ann.centroid_order`).
"""

from repro.index.ann import (
    ApproxRanker,
    BagCoder,
    CoarseIndex,
    adopt_ann_payload,
    ann_payload,
    bag_summaries,
    centroid_order,
    corpus_fingerprint,
    default_candidates,
    hamming_by_loop,
    hamming_distances,
    recall_at_k,
)

__all__ = [
    "ApproxRanker",
    "BagCoder",
    "CoarseIndex",
    "adopt_ann_payload",
    "ann_payload",
    "bag_summaries",
    "centroid_order",
    "corpus_fingerprint",
    "default_candidates",
    "hamming_by_loop",
    "hamming_distances",
    "recall_at_k",
]
