"""Hash-coded coarse tier in front of the exact ranker (``rank_mode="approx"``).

The exact rank path (:class:`~repro.core.sharding.ShardedRanker`) still pays
one bound pass over every bag envelope per query.  Following Conjeti et
al., *Learning Robust Hash Codes for Multiple Instance Image Retrieval*
(PAPERS.md), this module puts a cheap *bag-level code* in front of it:

* :class:`BagCoder` — signed-random-projection LSH over per-bag envelope
  summaries (box center, box half-extent, instance centroid).  The random
  hyperplanes are seeded deterministically from the corpus fingerprint
  (:func:`corpus_fingerprint`), so rebuilding the coder over the same
  corpus always yields the same codes.  Codes are sign bits packed into a
  ``(n_bags, n_words)`` uint64 matrix; :func:`hamming_distances` is the
  vectorised XOR+popcount kernel and :func:`hamming_by_loop` /
  :func:`pack_bits_by_loop` are the per-bit reference implementations the
  unit suite proves bit-identical.
* :class:`CoarseIndex` — the codes plus a multi-table banded lookup
  (disjoint ``band_bits``-wide slices of the code hashed into buckets).
  :meth:`CoarseIndex.probe_candidates` encodes a concept's ``(t, w)`` as a
  degenerate bag (center = centroid = ``t``, extent 0), prioritises bags
  sharing a bucket with the query in any table, and fills the remaining
  candidate budget by Hamming distance — so the candidate set has a
  *tunable* size the exact machinery then re-ranks.
* :class:`ApproxRanker` — the ``rank_mode="approx"`` serving path:
  hash-filter through :meth:`CoarseIndex.probe_candidates`, then a
  bound-pruned *exact* re-rank of the candidates (same envelope bounds,
  slack-widened cutoff and expanded-form kernel as the sharded path), so
  within the candidate set the ordering is exact; only the candidate
  selection approximates.  Queries that cannot profit (no ``top_k``, a
  candidate budget covering the surviving pool, ``top_k`` at or above the
  budget) fall back to the exact ranker and are counted
  (:meth:`CoarseIndex.stats` — the recall instrumentation serving exposes).
* :func:`centroid_order` — pack-time bag reordering: a deterministic
  median-split of the bag centroids (widest-spread coordinate first, ties
  broken by image id at every level) that clusters nearby bags into the
  same :data:`~repro.core.sharding.DEFAULT_GROUP_BAGS`-sized blocks, so
  the sharded path's group envelopes stop depending on ingestion order.
  Reordering never changes *results*: rankings order by ``(distance,
  image_id)`` only, so :meth:`PackedCorpus.reordered_by_centroid` is
  property-tested ordering-identical to ``rank_by_loop``.

:func:`recall_at_k` measures approx-vs-exact recall; the benchmark
(``benchmarks/bench_rank_ann.py``) records it in ``BENCH_ann.json``.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from typing import Iterable, Sequence

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalResult,
    build_result,
    keep_mask,
    top_order,
)
from repro.errors import DatabaseError

#: Default code width in bits (two uint64 words per bag).
DEFAULT_CODE_BITS = 128
#: Default number of banded lookup tables.
DEFAULT_TABLES = 4
#: Default bits per banded lookup table.
DEFAULT_BAND_BITS = 16
#: Default candidate budget as a fraction of the corpus.  Together with
#: the bound-pruned re-rank this keeps the exactly evaluated share well
#: under a quarter of the bags (the BENCH_ann.json acceptance bar).
DEFAULT_CANDIDATE_FRACTION = 0.15
#: Floor on the default candidate budget — tiny corpora probe everything
#: (where :class:`ApproxRanker` falls back to the exact path anyway).
MIN_PROBE_CANDIDATES = 64
#: Instance rows sampled (deterministic stride) by :func:`corpus_fingerprint`.
FINGERPRINT_SAMPLE_ROWS = 4096


def corpus_fingerprint(corpus) -> str:
    """A deterministic content fingerprint of a packed corpus (hex digest).

    Hashes the corpus shape, the bag boundaries, a deterministic stride
    sample of at least :data:`FINGERPRINT_SAMPLE_ROWS` instance rows and
    every image id — enough that two corpora differing in any bag, id or
    ordering fingerprint apart, while hashing stays O(sample) on the
    instance matrix.  :meth:`BagCoder.fit` seeds its random hyperplanes
    from this value, so codes are a pure function of the corpus content.
    """
    packed = PackedCorpus.coerce(corpus)
    digest = hashlib.sha256()
    digest.update(
        f"repro-corpus:{packed.n_bags}:{packed.n_instances}:{packed.n_dims}"
        .encode()
    )
    digest.update(np.ascontiguousarray(packed.offsets).tobytes())
    rows = packed.instances
    if rows.shape[0]:
        stride = max(1, -(-rows.shape[0] // FINGERPRINT_SAMPLE_ROWS))
        digest.update(np.ascontiguousarray(rows[::stride]).tobytes())
    digest.update("\x00".join(packed.image_ids).encode())
    return digest.hexdigest()


def bag_summaries(corpus, index=None) -> np.ndarray:
    """Per-bag summary vectors: ``[box center, box half-extent, centroid]``.

    The ``(n_bags, 3 * n_dims)`` matrix the coder projects: the envelope
    center and half-extent capture where a bag's box sits and how wide it
    is, the instance centroid where its mass sits inside the box.  Passing
    a prebuilt :class:`~repro.core.sharding.ShardIndex` reuses its
    envelopes instead of recomputing the min/max pass.

    Raises:
        DatabaseError: when ``index`` does not describe the corpus.
    """
    packed = PackedCorpus.coerce(corpus)
    if packed.n_bags == 0:
        return np.zeros((0, 3 * packed.n_dims))
    if index is not None:
        if index.n_bags != packed.n_bags or index.n_dims != packed.n_dims:
            raise DatabaseError(
                f"shard index covers {index.n_bags} bags x {index.n_dims} "
                f"dims but the corpus holds {packed.n_bags} x {packed.n_dims}"
            )
        lower, upper = index.lower, index.upper
    else:
        starts = packed.offsets[:-1]
        lower = np.minimum.reduceat(packed.instances, starts, axis=0)
        upper = np.maximum.reduceat(packed.instances, starts, axis=0)
    sums = np.add.reduceat(packed.instances, packed.offsets[:-1], axis=0)
    centroid = sums / packed.lengths[:, None]
    return np.hstack([(lower + upper) * 0.5, (upper - lower) * 0.5, centroid])


def concept_summary(concept: LearnedConcept) -> np.ndarray:
    """A concept's ``(t, w)`` as a degenerate bag summary (extent 0)."""
    t = np.asarray(concept.t, dtype=np.float64)
    return np.concatenate([t, np.zeros_like(t), t])


def pack_bits(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Pack sign bits into little-endian uint64 words, ``(M, n_words)``.

    Bit ``i`` of a row lands in word ``i // 64`` at position ``i % 64``
    (so word value = ``sum(bit_i << (i % 64))``) — the one packing
    convention shared by :func:`pack_bits_by_loop`, :func:`unpack_bits`
    and the banded lookup, asserted bit-identical by the unit suite.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2:
        raise DatabaseError(f"bit matrix must be 2-D, got shape {bits.shape}")
    if bits.shape[1] > 64 * n_words:
        raise DatabaseError(
            f"{bits.shape[1]} bits do not fit in {n_words} uint64 words"
        )
    padded = np.zeros((bits.shape[0], 64 * n_words), dtype=np.uint8)
    padded[:, : bits.shape[1]] = bits
    words = np.packbits(padded, axis=1, bitorder="little").view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - packing is LE-defined
        words = words.byteswap()
    return np.ascontiguousarray(words)


def pack_bits_by_loop(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Per-bit reference of :func:`pack_bits` (equivalence tests only)."""
    bits = np.asarray(bits, dtype=bool)
    out = np.zeros((bits.shape[0], n_words), dtype=np.uint64)
    for row, row_bits in enumerate(bits):
        for i, bit in enumerate(row_bits):
            if bit:
                out[row, i // 64] |= np.uint64(1) << np.uint64(i % 64)
    return out


def unpack_bits(codes: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert :func:`pack_bits`: ``(M, n_words)`` uint64 → ``(M, n_bits)`` bool."""
    codes = np.asarray(codes, dtype=np.uint64)
    shifts = np.arange(64, dtype=np.uint64)
    bits = (codes[:, :, None] >> shifts) & np.uint64(1)
    return bits.reshape(codes.shape[0], -1)[:, :n_bits].astype(bool)


if hasattr(np, "bitwise_count"):
    def _popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_8 = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _POPCOUNT_8[as_bytes].reshape(words.shape + (8,)).sum(
            axis=-1, dtype=np.uint64
        )


def hamming_distances(codes: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Per-row Hamming distance of packed codes to one packed query code.

    One XOR plus a popcount-sum per row — integer arithmetic, so the
    vectorised kernel is *exactly* :func:`hamming_by_loop` (asserted by
    the unit suite), not merely close.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    flat = np.asarray(query, dtype=np.uint64).reshape(-1)
    if codes.ndim != 2 or codes.shape[1] != flat.size:
        raise DatabaseError(
            f"codes of shape {codes.shape} cannot be compared to a "
            f"{flat.size}-word query code"
        )
    return _popcount(np.bitwise_xor(codes, flat[None, :])).sum(
        axis=1, dtype=np.int64
    )


def hamming_by_loop(codes: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Per-word reference of :func:`hamming_distances` (equivalence tests)."""
    flat = [int(word) for word in np.asarray(query, dtype=np.uint64).reshape(-1)]
    out = np.zeros(len(codes), dtype=np.int64)
    for row, row_words in enumerate(np.asarray(codes, dtype=np.uint64)):
        out[row] = sum(
            bin(int(word) ^ ref).count("1")
            for word, ref in zip(row_words, flat)
        )
    return out


def _plane_seed(seed) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` from a fingerprint or an int."""
    if isinstance(seed, str):
        entropy = int.from_bytes(hashlib.sha256(seed.encode()).digest(), "big")
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(int(seed))


class BagCoder:
    """Signed-random-projection LSH over bag envelope summaries.

    ``n_bits`` random hyperplanes (rows of :attr:`planes`, drawn from a
    standard normal seeded by the corpus fingerprint) project a summary
    vector; the code is the packed sign pattern of the projections.  Two
    bags whose envelopes sit close together agree on most signs, so
    Hamming distance between codes tracks summary-space proximity — the
    classic SRP-LSH guarantee.

    Attributes:
        planes: ``(n_bits, 3 * n_dims)`` float64 hyperplane normals.
    """

    __slots__ = ("planes",)

    def __init__(self, planes: np.ndarray) -> None:
        matrix = np.asarray(planes, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1 or matrix.shape[1] < 1:
            raise DatabaseError(
                f"projection planes must form a non-empty 2-D matrix, got "
                f"shape {matrix.shape}"
            )
        if matrix.shape[1] % 3 != 0:
            raise DatabaseError(
                f"plane width must be 3 * n_dims (center/extent/centroid), "
                f"got {matrix.shape[1]}"
            )
        self.planes = matrix

    @classmethod
    def fit(
        cls,
        corpus,
        *,
        n_bits: int = DEFAULT_CODE_BITS,
        seed: "str | int | None" = None,
    ) -> "BagCoder":
        """A coder for one corpus: planes seeded from its fingerprint.

        ``seed`` overrides the fingerprint-derived seed (tests, offline
        builds that must match a prior corpus revision).

        Raises:
            DatabaseError: on a non-positive ``n_bits`` or an empty corpus.
        """
        if n_bits < 1:
            raise DatabaseError(f"n_bits must be >= 1, got {n_bits}")
        packed = PackedCorpus.coerce(corpus)
        if packed.n_dims == 0:
            raise DatabaseError("cannot fit a bag coder over a 0-dim corpus")
        if seed is None:
            seed = corpus_fingerprint(packed)
        rng = np.random.default_rng(_plane_seed(seed))
        return cls(rng.standard_normal((n_bits, 3 * packed.n_dims)))

    @property
    def n_bits(self) -> int:
        """Code width in bits (one hyperplane each)."""
        return self.planes.shape[0]

    @property
    def n_words(self) -> int:
        """uint64 words per packed code."""
        return -(-self.n_bits // 64)

    @property
    def n_dims(self) -> int:
        """Feature dimensionality the summaries are built from."""
        return self.planes.shape[1] // 3

    def encode_summaries(self, summaries: np.ndarray) -> np.ndarray:
        """Packed codes for summary rows: ``(M, n_words)`` uint64."""
        matrix = np.asarray(summaries, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.planes.shape[1]:
            raise DatabaseError(
                f"summaries of shape {matrix.shape} do not match planes of "
                f"width {self.planes.shape[1]}"
            )
        return pack_bits(matrix @ self.planes.T > 0.0, self.n_words)

    def encode_corpus(self, corpus, index=None) -> np.ndarray:
        """Codes for every bag of a corpus (envelopes reused from ``index``)."""
        return self.encode_summaries(bag_summaries(corpus, index=index))

    def encode_concept(self, concept: LearnedConcept) -> np.ndarray:
        """The packed query code of a concept's ``(t, w)``: ``(n_words,)``."""
        if concept.n_dims != self.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the coder was fit "
                f"over {self.n_dims}"
            )
        return self.encode_summaries(concept_summary(concept)[None, :])[0]


def default_candidates(n_bags: int) -> int:
    """The default probe budget for a corpus size (fraction with a floor)."""
    return max(
        MIN_PROBE_CANDIDATES,
        int(np.ceil(DEFAULT_CANDIDATE_FRACTION * n_bags)),
    )


class CoarseIndex:
    """Packed bag codes plus a multi-table banded bucket lookup.

    Table ``i`` hashes bits ``[i * band_bits, (i + 1) * band_bits)`` of
    every code into buckets; a query hits a bucket when it agrees with a
    bag on *every* bit of that band.  :meth:`probe_candidates` unions the
    query's buckets across tables (bags similar enough to collide
    somewhere), then fills the remaining budget by Hamming distance over
    all codes — so the candidate set always has exactly the requested
    size and never silently degrades to empty.

    The index also owns the serving counters (probes, candidate sizes,
    bucket hit rate, fallback-to-exact count) exposed by
    ``RetrievalService.stats()["ann"]`` and ``repro index inspect`` —
    thread-safe, since one cached index serves every thread.
    """

    __slots__ = (
        "coder",
        "codes",
        "n_tables",
        "band_bits",
        "_tables",
        "_lock",
        "_probes",
        "_fallbacks",
        "_candidate_total",
        "_hit_total",
        "_evaluated_total",
        "_last",
    )

    def __init__(
        self,
        coder: BagCoder,
        codes: np.ndarray,
        *,
        n_tables: int = DEFAULT_TABLES,
        band_bits: int = DEFAULT_BAND_BITS,
    ) -> None:
        matrix = np.asarray(codes, dtype=np.uint64)
        if matrix.ndim != 2 or matrix.shape[1] != coder.n_words:
            raise DatabaseError(
                f"codes must have shape (n_bags, {coder.n_words}), got "
                f"{matrix.shape}"
            )
        if n_tables < 1:
            raise DatabaseError(f"n_tables must be >= 1, got {n_tables}")
        if not 1 <= band_bits <= 62:
            raise DatabaseError(
                f"band_bits must lie in [1, 62], got {band_bits}"
            )
        if n_tables * band_bits > coder.n_bits:
            raise DatabaseError(
                f"{n_tables} tables x {band_bits} band bits exceed the "
                f"{coder.n_bits}-bit code"
            )
        self.coder = coder
        self.codes = matrix
        self.n_tables = int(n_tables)
        self.band_bits = int(band_bits)
        self._tables = self._build_tables()
        self._lock = threading.Lock()
        self._probes = 0
        self._fallbacks = 0
        self._candidate_total = 0
        self._hit_total = 0
        self._evaluated_total = 0
        self._last: dict | None = None

    @classmethod
    def build(
        cls,
        corpus,
        *,
        n_bits: int = DEFAULT_CODE_BITS,
        n_tables: int = DEFAULT_TABLES,
        band_bits: int = DEFAULT_BAND_BITS,
        seed: "str | int | None" = None,
        index=None,
    ) -> "CoarseIndex":
        """Fit a coder and encode a corpus in one call.

        ``index`` optionally reuses a prebuilt shard index's envelopes for
        the summary pass (the service warm path passes its cached one).
        """
        packed = PackedCorpus.coerce(corpus)
        coder = BagCoder.fit(packed, n_bits=n_bits, seed=seed)
        return cls(
            coder,
            coder.encode_corpus(packed, index=index),
            n_tables=n_tables,
            band_bits=band_bits,
        )

    @property
    def n_bags(self) -> int:
        """Bags covered by the index."""
        return self.codes.shape[0]

    def _band_keys(self, bits: np.ndarray, table: int) -> np.ndarray:
        lo = table * self.band_bits
        band = bits[:, lo : lo + self.band_bits].astype(np.uint64)
        weights = np.uint64(1) << np.arange(self.band_bits, dtype=np.uint64)
        return (band * weights).sum(axis=1, dtype=np.uint64)

    def _build_tables(self) -> list[dict]:
        bits = unpack_bits(self.codes, self.coder.n_bits)
        tables: list[dict] = []
        for table in range(self.n_tables):
            keys = self._band_keys(bits, table)
            order = np.argsort(keys, kind="stable")
            unique, starts = np.unique(keys[order], return_index=True)
            bounds = np.append(starts, keys.size)
            tables.append(
                {
                    int(key): order[bounds[i] : bounds[i + 1]]
                    for i, key in enumerate(unique.tolist())
                }
            )
        return tables

    def probe_candidates(
        self,
        concept: LearnedConcept,
        *,
        n_candidates: int | None = None,
        keep: np.ndarray | None = None,
    ) -> np.ndarray:
        """Positions of the coarse-tier candidates for a concept, ascending.

        Bags sharing a banded bucket with the query in any table rank
        first (by Hamming distance, ties by position), the rest of the
        budget is filled by Hamming distance alone.  ``keep`` restricts
        the candidate pool to a boolean survivor mask (id exclusion /
        category filtering), so the budget is never wasted on bags the
        re-rank would drop anyway.

        Args:
            n_candidates: candidate budget (defaults to
                :func:`default_candidates`; clamped to the pool size).

        Raises:
            DatabaseError: on a non-positive budget, a mismatched concept
                or a ``keep`` mask of the wrong length.
        """
        budget = (
            default_candidates(self.n_bags)
            if n_candidates is None
            else int(n_candidates)
        )
        if budget < 1:
            raise DatabaseError(f"n_candidates must be >= 1, got {budget}")
        if keep is not None:
            keep = np.asarray(keep, dtype=bool).reshape(-1)
            if keep.size != self.n_bags:
                raise DatabaseError(
                    f"keep mask covers {keep.size} bags but the index holds "
                    f"{self.n_bags}"
                )
        if self.n_bags == 0:
            return np.zeros(0, dtype=np.int64)
        query = self.coder.encode_concept(concept)
        query_bits = unpack_bits(query[None, :], self.coder.n_bits)
        distances = hamming_distances(self.codes, query)
        hit = np.zeros(self.n_bags, dtype=bool)
        for table in range(self.n_tables):
            bucket = self._tables[table].get(
                int(self._band_keys(query_bits, table)[0])
            )
            if bucket is not None:
                hit[bucket] = True
        # Bucket hits sort strictly ahead of misses; within each class by
        # Hamming distance, ties by position.  Scores are tiny integers
        # (<= 2 * n_bits + 2), so folding the position into a composite
        # key makes every key unique — an O(N) argpartition then selects
        # exactly the same candidate set a stable full sort would, without
        # the N log N sort that would otherwise dominate the probe.
        score = np.where(hit, distances, distances + self.coder.n_bits + 1)
        if keep is not None:
            # Dropped bags get a sentinel strictly above any kept score
            # (not int64 max: the composite key below must not overflow).
            score = np.where(keep, score, 2 * self.coder.n_bits + 2)
            pool = int(np.count_nonzero(keep))
        else:
            pool = self.n_bags
        budget = min(budget, pool)
        if budget == 0:
            return np.zeros(0, dtype=np.int64)
        key = score.astype(np.int64) * np.int64(self.n_bags) + np.arange(
            self.n_bags, dtype=np.int64
        )
        if budget < self.n_bags:
            chosen = np.argpartition(key, budget - 1)[:budget]
        else:
            chosen = np.arange(self.n_bags, dtype=np.int64)
        candidates = np.sort(chosen)
        n_hits = int(np.count_nonzero(hit[candidates]))
        with self._lock:
            self._probes += 1
            self._candidate_total += int(candidates.size)
            self._hit_total += n_hits
            self._last = {
                "n_candidates": int(candidates.size),
                "bucket_hits": n_hits,
                "candidate_fraction": candidates.size / max(1, self.n_bags),
            }
        return candidates

    def record_fallback(self) -> None:
        """Count one approx request answered by the exact path instead."""
        with self._lock:
            self._fallbacks += 1

    def record_evaluated(self, n_evaluated: int) -> None:
        """Record how many candidates the re-rank exactly evaluated."""
        with self._lock:
            self._evaluated_total += int(n_evaluated)
            if self._last is not None:
                self._last["evaluated"] = int(n_evaluated)

    def stats(self) -> dict:
        """Serving counters: probes, hit rate, candidate sizes, fallbacks."""
        with self._lock:
            probes = self._probes
            return {
                "n_bags": self.n_bags,
                "n_bits": self.coder.n_bits,
                "n_tables": self.n_tables,
                "band_bits": self.band_bits,
                "probes": probes,
                "fallbacks": self._fallbacks,
                "hit_rate": (
                    self._hit_total / self._candidate_total
                    if self._candidate_total
                    else 0.0
                ),
                "mean_candidates": (
                    self._candidate_total / probes if probes else 0.0
                ),
                "mean_evaluated": (
                    self._evaluated_total / probes if probes else 0.0
                ),
                "last": dict(self._last) if self._last is not None else None,
            }

    def __repr__(self) -> str:
        return (
            f"CoarseIndex({self.n_bags} bags, {self.coder.n_bits} bits, "
            f"{self.n_tables} x {self.band_bits}-bit tables)"
        )


def ann_payload(coarse: CoarseIndex, prefix: str, arrays: dict) -> dict:
    """Stash a coarse index's arrays under ``prefix``; returns its manifest.

    The codes and planes are persisted; the banded tables are rederived on
    restore (they are a pure function of codes + knobs).  Database format
    v4, serve snapshots and the shared-memory layout all encode the coarse
    tier through this one helper, mirroring
    :func:`~repro.core.sharding.index_payload`.
    """
    arrays[f"{prefix}_codes"] = coarse.codes
    arrays[f"{prefix}_planes"] = coarse.coder.planes
    return {
        "codes": f"{prefix}_codes",
        "planes": f"{prefix}_planes",
        "n_bits": int(coarse.coder.n_bits),
        "n_tables": int(coarse.n_tables),
        "band_bits": int(coarse.band_bits),
    }


def adopt_ann_payload(packed: PackedCorpus, info, arrays) -> None:
    """Rebuild and adopt a persisted coarse index onto a restored corpus.

    ``info`` is an :func:`ann_payload` manifest (``None`` is a no-op, so
    callers can pass ``manifest.get(...)`` directly).

    Raises:
        DatabaseError: when the arrays are missing or do not describe the
            corpus (a corrupt snapshot must not silently mis-filter).
    """
    if info is None:
        return
    try:
        codes = arrays[info["codes"]]
        planes = arrays[info["planes"]]
    except (KeyError, TypeError) as exc:
        raise DatabaseError(
            f"snapshot manifest references missing coarse-index arrays: {exc}"
        ) from exc
    coder = BagCoder(planes)
    if int(info.get("n_bits", coder.n_bits)) != coder.n_bits:
        raise DatabaseError(
            f"coarse-index manifest claims {info['n_bits']} bits but the "
            f"planes define {coder.n_bits}"
        )
    packed.adopt_coarse_index(
        CoarseIndex(
            coder,
            codes,
            n_tables=int(info.get("n_tables", DEFAULT_TABLES)),
            band_bits=int(info.get("band_bits", DEFAULT_BAND_BITS)),
        )
    )


def centroid_order(corpus, *, group_size: int | None = None) -> np.ndarray:
    """An id-stable, spatially clustered permutation of the bag positions.

    Recursive median split over the bag centroids: at every level the set
    splits at the median of its widest-spread coordinate (max - min, which
    is summation-order independent, so shuffled ingestion cannot flip the
    choice), ties broken by image id; blocks of at most ``group_size``
    bags are emitted in id order.  Bags that are near in centroid space
    therefore land in the same :class:`~repro.core.sharding.ShardIndex`
    group, which tightens the group envelopes regardless of ingestion
    order — and because the permutation is keyed by ``(coordinate, id)``
    at every level, the *id sequence* it produces is identical for any
    ingestion order of the same bags.
    """
    packed = PackedCorpus.coerce(corpus)
    if group_size is None:
        from repro.core.sharding import DEFAULT_GROUP_BAGS

        group_size = DEFAULT_GROUP_BAGS
    if group_size < 1:
        raise DatabaseError(f"group_size must be >= 1, got {group_size}")
    if packed.n_bags == 0:
        return np.zeros(0, dtype=np.int64)
    centroids = (
        np.add.reduceat(packed.instances, packed.offsets[:-1], axis=0)
        / packed.lengths[:, None]
    )
    ids = packed.id_array
    blocks: list[np.ndarray] = []
    stack = [np.arange(packed.n_bags, dtype=np.int64)]
    while stack:
        positions = stack.pop()
        if positions.size <= group_size:
            blocks.append(positions[np.argsort(ids[positions], kind="stable")])
            continue
        points = centroids[positions]
        dim = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
        order = np.lexsort((ids[positions], points[:, dim]))
        half = positions.size // 2
        stack.append(positions[order[half:]])
        stack.append(positions[order[:half]])
    return np.concatenate(blocks)


def recall_at_k(exact: RetrievalResult, approx: RetrievalResult, k: int) -> float:
    """Fraction of the exact top-``k`` ids the approx top-``k`` recovered.

    The recall definition used by the property suite, the benchmark and
    the BENCH_ann.json acceptance bar — always computed *against the exact
    ordering*, never against another approximation.

    Raises:
        DatabaseError: for ``k < 1``.
    """
    if k < 1:
        raise DatabaseError(f"k must be >= 1, got {k}")
    reference = exact.image_ids[:k]
    if not reference:
        return 1.0
    return len(set(reference) & set(approx.image_ids[:k])) / len(reference)


class ApproxRanker:
    """Hash-filtered, bound-pruned approximate top-k ranking.

    The ``rank_mode="approx"`` path: :meth:`CoarseIndex.probe_candidates`
    selects a candidate set, then the candidates are re-ranked *exactly*
    — ascending envelope bound order, evaluated in memory-bounded chunks
    against the same slack-widened cutoff as
    :class:`~repro.core.sharding.ShardedRanker`, so within the candidate
    set no pruning or tie-break can diverge from the exhaustive kernel.
    Requests the filter cannot help (no ``top_k``, a budget covering the
    surviving pool, ``top_k`` at or above the budget) fall back to the
    exact ranker and are counted on the corpus's coarse index.

    Args:
        n_candidates: candidate budget (``None`` =
            :func:`default_candidates` of the corpus size).
        workers: thread width handed to the exact ranker on fallback.
        chunk_bags: candidates evaluated per kernel call in the re-rank.
    """

    def __init__(
        self,
        *,
        n_candidates: int | None = None,
        workers: int | None = None,
        chunk_bags: int | None = None,
    ) -> None:
        if n_candidates is not None and n_candidates < 1:
            raise DatabaseError(
                f"n_candidates must be >= 1 or None, got {n_candidates}"
            )
        if workers is not None and workers < 1:
            raise DatabaseError(f"workers must be >= 1 or None, got {workers}")
        if chunk_bags is not None and chunk_bags < 1:
            raise DatabaseError(
                f"chunk_bags must be >= 1 or None, got {chunk_bags}"
            )
        self._n_candidates = n_candidates
        self._workers = workers
        self._chunk_bags = chunk_bags

    def rank(
        self,
        concept: LearnedConcept,
        corpus,
        *,
        top_k: int | None = None,
        exclude: Iterable[str] = (),
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Rank a corpus, best match first — same contract as ``Ranker.rank``.

        ``total_candidates`` still reports the full surviving pool (how
        many bags *competed* for the filter), so result shapes match the
        exact path; only membership of the returned prefix approximates.

        Raises:
            DatabaseError: on a non-positive ``top_k`` or a mismatched
                concept.
        """
        from repro.core.sharding import (
            DEFAULT_CHUNK_BAGS,
            PRUNE_SLACK,
            envelope_bounds,
        )

        if top_k is not None and top_k < 1:
            raise DatabaseError(f"top_k must be >= 1 or None, got {top_k}")
        packed = PackedCorpus.coerce(corpus)
        if packed.n_bags == 0:
            return RetrievalResult((), total_candidates=0)
        exclude = tuple(exclude)
        keep = keep_mask(packed, exclude, category_filter)
        total = int(np.count_nonzero(keep))
        if total == 0:
            return RetrievalResult((), total_candidates=0)
        coarse = packed.coarse_index()
        budget = (
            self._n_candidates
            if self._n_candidates is not None
            else default_candidates(packed.n_bags)
        )
        if top_k is None or budget >= total or top_k >= budget:
            # The filter cannot drop anything (or would drop below k):
            # answer exactly and count the fallback.
            coarse.record_fallback()
            return Ranker(workers=self._workers, rank_mode="exact").rank(
                concept,
                packed,
                top_k=top_k,
                exclude=exclude,
                category_filter=category_filter,
            )
        candidates = coarse.probe_candidates(
            concept, n_candidates=budget, keep=keep
        )
        index = packed.shard_index()
        bounds = envelope_bounds(
            index.lower[candidates], index.upper[candidates], concept
        )
        floor = index.prune_floor(concept)
        chunk_bags = (
            self._chunk_bags if self._chunk_bags is not None else DEFAULT_CHUNK_BAGS
        )
        order = np.argsort(bounds, kind="stable")
        kept_pos: list[np.ndarray] = []
        kept_dist: list[np.ndarray] = []
        best = np.zeros(0)
        cursor = 0
        while cursor < order.size:
            if best.size >= top_k:
                threshold = float(best.max())
                cutoff = threshold + max(PRUNE_SLACK * threshold, floor)
                # Bounds ascend along ``order``: once the next bound
                # exceeds the cutoff, so does every later one.
                if bounds[order[cursor]] > cutoff:
                    break
            chunk = order[cursor : cursor + chunk_bags]
            cursor += chunk_bags
            positions = candidates[chunk]
            distances = packed.min_distances_at(concept, positions)
            kept_pos.append(positions)
            kept_dist.append(distances)
            best = np.concatenate((best, distances))
            if best.size > top_k:
                best = np.partition(best, top_k - 1)[:top_k]
        pos = np.concatenate(kept_pos)
        dist = np.concatenate(kept_dist)
        coarse.record_evaluated(int(pos.size))
        ids = packed.id_array[pos]
        categories = packed.category_array[pos]
        order_out = top_order(ids, dist, top_k)
        return build_result(ids, categories, dist, order_out, total)
