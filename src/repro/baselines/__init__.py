"""Baselines: the paper's comparator and sanity rankers.

* :mod:`repro.baselines.maron_ratan` — the "previous approach" of
  Section 4.2.4: Maron & Lakshmi Ratan's colour-feature bags driving the
  same Diverse Density core.
* :mod:`repro.baselines.rankers` — random and global-correlation (no-MIL)
  rankers that bound the problem from below.
"""

from repro.baselines.maron_ratan import ColorCorpus, single_blob_with_neighbors
from repro.baselines.rankers import GlobalCorrelationRanker, RandomRanker

__all__ = [
    "ColorCorpus",
    "single_blob_with_neighbors",
    "GlobalCorrelationRanker",
    "RandomRanker",
]
