"""The "previous approach" (Section 4.2.4): Maron & Lakshmi Ratan, ICML 1998.

Maron & Lakshmi Ratan applied Diverse Density to natural-scene retrieval
using *colour* bag generators rather than region correlation.  Their best
performer, reproduced here, is the **single blob with neighbours** (SBN)
representation: the image is smoothed to a coarse colour grid; each instance
describes one cell ("blob") by its mean RGB plus the RGB *differences* to
its four neighbours — 15 dimensions per instance, one instance per interior
grid cell.

This baseline reuses the package's DD core unchanged; only the bag
representation differs.  :class:`ColorCorpus` adapts an
:class:`~repro.database.store.ImageDatabase` to the corpus protocol so the
same :class:`~repro.core.feedback.FeedbackLoop` drives both systems — the
paper's comparison then differs in exactly one variable, the features.

As the paper notes, this approach "has been specifically tuned to retrieving
color natural scene images, and would not work with object images"; it
requires stored RGB data and raises for gray-only databases.
"""

from __future__ import annotations

import numpy as np

from repro.core.retrieval import CorpusPacker, PackedCorpus, RetrievalCandidate
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, FeatureError

#: Side length of the coarse colour grid the SBN features live on.
DEFAULT_GRID = 6


def _mean_pool_rgb(rgb: np.ndarray, grid: int) -> np.ndarray:
    """Reduce an ``(m, n, 3)`` image to a ``(grid, grid, 3)`` mean grid."""
    rows, cols = rgb.shape[0], rgb.shape[1]
    if rows < grid or cols < grid:
        raise FeatureError(f"image {rgb.shape} too small for a {grid}x{grid} colour grid")
    row_edges = np.linspace(0, rows, grid + 1).astype(int)
    col_edges = np.linspace(0, cols, grid + 1).astype(int)
    pooled = np.empty((grid, grid, 3), dtype=np.float64)
    for i in range(grid):
        for j in range(grid):
            block = rgb[row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]]
            pooled[i, j] = block.reshape(-1, 3).mean(axis=0)
    return pooled


def single_blob_with_neighbors(rgb: np.ndarray, grid: int = DEFAULT_GRID) -> np.ndarray:
    """SBN instances of one RGB image.

    Args:
        rgb: ``(m, n, 3)`` float array in [0, 1].
        grid: coarse grid side; instances come from the ``(grid-2)**2``
            interior cells.

    Returns:
        ``((grid-2)**2, 15)`` instance matrix: blob RGB plus the RGB
        differences to the up/down/left/right neighbours.

    Raises:
        FeatureError: on malformed input or a grid below 3.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise FeatureError(f"SBN requires an (m, n, 3) colour image, got shape {rgb.shape}")
    if grid < 3:
        raise FeatureError(f"SBN grid must be >= 3, got {grid}")
    pooled = _mean_pool_rgb(rgb, grid)
    instances = []
    for i in range(1, grid - 1):
        for j in range(1, grid - 1):
            blob = pooled[i, j]
            up = pooled[i - 1, j] - blob
            down = pooled[i + 1, j] - blob
            left = pooled[i, j - 1] - blob
            right = pooled[i, j + 1] - blob
            instances.append(np.concatenate([blob, up, down, left, right]))
    return np.vstack(instances)


class ColorCorpus:
    """Corpus adapter exposing SBN colour bags over an image database.

    Implements the :class:`~repro.core.feedback.Corpus` protocol
    (``instances_for`` / ``category_of`` / ``packed`` /
    ``retrieval_candidates``) so the standard feedback loop and the
    vectorised :class:`~repro.core.retrieval.Ranker` run unmodified on
    colour features — both learner families share one fast path.

    Args:
        database: must contain images stored with RGB data.
        grid: the SBN grid side.
    """

    def __init__(self, database: ImageDatabase, grid: int = DEFAULT_GRID):
        self._database = database
        self._grid = grid
        self._cache: dict[str, np.ndarray] = {}
        self._packer = CorpusPacker()

    @property
    def grid(self) -> int:
        """The SBN grid side."""
        return self._grid

    def instances_for(self, image_id: str) -> np.ndarray:
        """SBN instance matrix of one image (cached)."""
        if image_id not in self._cache:
            record = self._database.record(image_id)
            rgb = record.image.rgb
            if rgb is None:
                raise DatabaseError(
                    f"image {image_id!r} has no stored RGB data; the colour "
                    "baseline needs colour images"
                )
            self._cache[image_id] = single_blob_with_neighbors(rgb, self._grid)
        return self._cache[image_id]

    def category_of(self, image_id: str) -> str:
        """Ground-truth category (delegates to the database)."""
        return self._database.category_of(image_id)

    def packed(self, ids=None) -> PackedCorpus:
        """Columnar SBN corpus view (cached over the whole database).

        Built once from every image's SBN bag — the same packed layout the
        region-bag path uses, so both learner families share the ranking
        kernel.  ``ids`` selects a sub-corpus in the given order; a subset
        request before the cache exists packs only the requested images
        (mixed colour/gray databases stay rankable by colour subset).
        The cache is keyed on the database's mutation counter, so adding
        images is picked up on the next call.

        Raises:
            DatabaseError: for an unknown id or a gray-only image.
        """
        return self._packer.packed(
            ids,
            all_ids=self._database.image_ids,
            category_of=self.category_of,
            instances_for=self.instances_for,
            version=self._database.version,
        )

    def retrieval_candidates(self, ids) -> list[RetrievalCandidate]:
        """Per-image compatibility view (zero-copy over the SBN cache)."""
        return [
            RetrievalCandidate(
                image_id=image_id,
                category=self.category_of(image_id),
                instances=self.instances_for(image_id),
            )
            for image_id in ids
        ]
