"""Sanity-check rankers bounding the retrieval problem.

* :class:`RandomRanker` — a seeded random ordering; the paper's "completely
  random retrieval" reference (diagonal recall curve, flat PR curve at the
  base rate).
* :class:`GlobalCorrelationRanker` — whole-image correlation to the mean of
  the positive examples, with no regions, no mirrors, no negative examples
  and no learning.  The gap between this and the MIL system isolates what
  multiple-instance learning buys (the Figure 3-3 / 3-4 argument).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.retrieval import RankedImage, RetrievalResult
from repro.database.store import ImageDatabase
from repro.errors import EvaluationError
from repro.imaging.smoothing import smoothed_vector
from repro.imaging.transform import normalize_feature


class RandomRanker:
    """Uniformly random ranking, reproducible from a seed.

    ``database`` only needs ``category_of``; any object providing it works
    (the query API passes a candidate-backed view).
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def rank(self, database: ImageDatabase, ids: Sequence[str]) -> RetrievalResult:
        """Rank the given ids in random order (all distances are 0)."""
        if not ids:
            raise EvaluationError("cannot rank an empty id list")
        order = self._rng.permutation(len(ids))
        ranked = [
            RankedImage(
                rank=position,
                image_id=ids[index],
                category=database.category_of(ids[index]),
                distance=0.0,
            )
            for position, index in enumerate(order)
        ]
        return RetrievalResult(ranked)


def correlation_vector(
    database: ImageDatabase, image_id: str, resolution: int
) -> np.ndarray:
    """One image's whole-image vector: smoothed to ``h x h``, then the
    Section 3.4 normalisation (so Euclidean distance is reverse correlation)."""
    pixels = database.record(image_id).image.pixels
    return normalize_feature(smoothed_vector(pixels, resolution))


def correlation_template(
    database: ImageDatabase, positive_ids: Sequence[str], resolution: int
) -> np.ndarray:
    """The query template: mean normalised vector of the positive examples."""
    if not positive_ids:
        raise EvaluationError("global correlation ranking needs positive examples")
    return np.mean(
        [correlation_vector(database, image_id, resolution) for image_id in positive_ids],
        axis=0,
    )


def correlation_ranking(
    database: ImageDatabase,
    template: np.ndarray,
    candidate_ids: Sequence[str],
    resolution: int,
) -> RetrievalResult:
    """Rank ids by squared distance to the template (ties broken by id)."""
    scored = []
    for image_id in candidate_ids:
        vector = correlation_vector(database, image_id, resolution)
        distance = float(np.sum((vector - template) ** 2))
        scored.append((distance, image_id, database.category_of(image_id)))
    scored.sort(key=lambda item: (item[0], item[1]))
    ranked = [
        RankedImage(rank=position, image_id=image_id, category=category, distance=distance)
        for position, (distance, image_id, category) in enumerate(scored)
    ]
    return RetrievalResult(ranked)


class GlobalCorrelationRanker:
    """Rank by whole-image correlation to the mean positive example.

    Each image is smoothed to one ``h x h`` vector (no regions, no mirrors)
    and normalised per Section 3.4; the query template is the mean of the
    normalised positive-example vectors; images are ranked by Euclidean
    distance to the template, which by the Section 3.4 Claim is correlation
    ranking in reverse.
    """

    def __init__(self, resolution: int = 10):
        if resolution < 2:
            raise EvaluationError(f"resolution must be >= 2, got {resolution}")
        self._resolution = resolution

    def rank(
        self,
        database: ImageDatabase,
        positive_ids: Sequence[str],
        candidate_ids: Sequence[str],
    ) -> RetrievalResult:
        """Rank ``candidate_ids`` against the mean of ``positive_ids``."""
        if not candidate_ids:
            raise EvaluationError("cannot rank an empty candidate list")
        template = correlation_template(database, positive_ids, self._resolution)
        return correlation_ranking(database, template, candidate_ids, self._resolution)
