"""Package version, kept in a tiny module so every layer may import it freely."""

__version__ = "1.0.0"
