"""Interactive retrieval sessions — the user-facing facade.

:class:`RetrievalSession` packages the Section 3.5 workflow ("the user is
asked to select several positive and negative examples ... the system ...
retrieves images in the ranked order") into a small stateful API:

    session = RetrievalSession(db, scheme="inequality", beta=0.5)
    session.add_positive("waterfall-0003")
    session.add_negative("field-0001")
    result = session.train_and_rank()
    for entry in result.top(10):
        print(entry.image_id, entry.distance)

``add_examples`` provides the simulated-user shortcut (seeded selection by
category), and ``mark_false_positives`` implements the manual feedback step
— pick bad results, add them as negatives, train again.
"""

from __future__ import annotations

from repro.core.concept import LearnedConcept
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig, TrainingResult
from repro.core.feedback import select_examples
from repro.core.retrieval import RetrievalEngine, RetrievalResult
from repro.bags.bag import BagSet
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, TrainingError


class RetrievalSession:
    """One user's query session against an image database.

    Args:
        database: the populated image database.
        scheme: weight-control scheme name (default the paper's best
            all-rounder, the inequality constraint).
        beta: constraint level for the inequality scheme.
        alpha: damping constant for the alpha-hack scheme.
        max_iterations: per-start solver cap.
        start_bag_subset: optional Section 4.3 speed-up.
        seed: seed used by ``add_examples`` and the trainer.
    """

    def __init__(
        self,
        database: ImageDatabase,
        scheme: str = "inequality",
        beta: float = 0.5,
        alpha: float = 50.0,
        max_iterations: int = 100,
        start_bag_subset: int | None = None,
        seed: int = 0,
    ):
        self._database = database
        self._seed = seed
        self._trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme=scheme,
                beta=beta,
                alpha=alpha,
                max_iterations=max_iterations,
                start_bag_subset=start_bag_subset,
                seed=seed,
            )
        )
        self._engine = RetrievalEngine()
        self._positive_ids: list[str] = []
        self._negative_ids: list[str] = []
        self._last_training: TrainingResult | None = None

    # ------------------------------------------------------------------ #
    # Example management                                                  #
    # ------------------------------------------------------------------ #

    @property
    def positive_ids(self) -> tuple[str, ...]:
        """Current positive example ids."""
        return tuple(self._positive_ids)

    @property
    def negative_ids(self) -> tuple[str, ...]:
        """Current negative example ids."""
        return tuple(self._negative_ids)

    def add_positive(self, image_id: str) -> None:
        """Mark one database image as a positive example."""
        self._claim(image_id)
        self._positive_ids.append(image_id)

    def add_negative(self, image_id: str) -> None:
        """Mark one database image as a negative example."""
        self._claim(image_id)
        self._negative_ids.append(image_id)

    def _claim(self, image_id: str) -> None:
        if image_id not in self._database:
            raise DatabaseError(f"unknown image id {image_id!r}")
        if image_id in self._positive_ids or image_id in self._negative_ids:
            raise DatabaseError(f"image {image_id!r} is already an example")
        self._last_training = None  # examples changed; concept is stale

    def add_examples(
        self, category: str, n_positive: int = 5, n_negative: int = 5
    ) -> None:
        """Simulated-user shortcut: seeded picks for/against a category."""
        selection = select_examples(
            self._database,
            [i for i in self._database.image_ids if not self._is_example(i)],
            category,
            n_positive=n_positive,
            n_negative=n_negative,
            seed=self._seed,
        )
        self._positive_ids.extend(selection.positive_ids)
        self._negative_ids.extend(selection.negative_ids)
        self._last_training = None

    def _is_example(self, image_id: str) -> bool:
        return image_id in self._positive_ids or image_id in self._negative_ids

    def mark_false_positives(self, image_ids: tuple[str, ...] | list[str]) -> None:
        """Manual feedback: demote retrieved images to negative examples."""
        for image_id in image_ids:
            self.add_negative(image_id)

    # ------------------------------------------------------------------ #
    # Training and retrieval                                              #
    # ------------------------------------------------------------------ #

    @property
    def concept(self) -> LearnedConcept:
        """The most recently learned concept.

        Raises:
            TrainingError: if no training has run since the examples changed.
        """
        if self._last_training is None:
            raise TrainingError("no current concept; call train() first")
        return self._last_training.concept

    def train(self) -> TrainingResult:
        """Train Diverse Density on the current examples."""
        if not self._positive_ids:
            raise TrainingError("add at least one positive example before training")
        bag_set = BagSet()
        for image_id in self._positive_ids:
            bag_set.add(self._database.bag_for(image_id, label=True))
        for image_id in self._negative_ids:
            bag_set.add(self._database.bag_for(image_id, label=False))
        self._last_training = self._trainer.train(bag_set)
        return self._last_training

    def rank(self, ids: tuple[str, ...] | list[str] | None = None) -> RetrievalResult:
        """Rank database images (examples excluded) with the current concept."""
        concept = self.concept
        candidates = self._database.retrieval_candidates(ids)
        examples = set(self._positive_ids) | set(self._negative_ids)
        return self._engine.rank(concept, candidates, exclude=examples)

    def train_and_rank(
        self, ids: tuple[str, ...] | list[str] | None = None
    ) -> RetrievalResult:
        """Convenience: train, then rank in one call."""
        self.train()
        return self.rank(ids)
