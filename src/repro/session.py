"""Interactive retrieval sessions — the stateful convenience facade.

:class:`RetrievalSession` packages the Section 3.5 workflow ("the user is
asked to select several positive and negative examples ... the system ...
retrieves images in the ranked order") into a small stateful API:

    session = RetrievalSession(db, scheme="inequality", beta=0.5)
    session.add_positive("waterfall-0003")
    session.add_negative("field-0001")
    result = session.train_and_rank()
    for entry in result.top(10):
        print(entry.image_id, entry.distance)

``add_examples`` provides the simulated-user shortcut (seeded selection by
category), and ``mark_false_positives`` implements the manual feedback step
— pick bad results, add them as negatives, train again.

Since the ``repro.api`` redesign the session is a thin wrapper over
:class:`~repro.api.service.RetrievalService`: it keeps the example lists
and the last trained model, while the service resolves the learner from
the registry, caches the bag corpora and performs the actual fit/rank.
Pass ``learner="emdd"`` (or any registered name) to swap the concept
learner without changing the workflow.
"""

from __future__ import annotations

from repro.api.learners import shape_learner_params
from repro.api.service import FittedQuery, RetrievalService
from repro.core.cache import CacheStats
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import TrainingResult
from repro.core.feedback import select_examples
from repro.core.retrieval import RetrievalResult
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError, TrainingError


class RetrievalSession:
    """One user's query session against an image database.

    Args:
        database: the populated image database.
        scheme: weight-control scheme name (default the paper's best
            all-rounder, the inequality constraint).
        beta: constraint level for the inequality scheme.
        alpha: damping constant for the alpha-hack scheme.
        max_iterations: per-start solver cap.
        start_bag_subset: optional Section 4.3 speed-up.
        seed: seed used by ``add_examples`` and the trainer.
        learner: registry name of the concept learner to train with.
        engine: training engine, ``"batched"`` (lockstep multi-start, the
            default) or ``"sequential"`` (one solver per restart).
        restart_prune_margin: batched engine only — freeze restarts that
            trail the incumbent best by more than this margin.
        learner_params: explicit learner parameters; overrides the mapping
            derived from the DD-style keyword arguments above.
        service: share an existing :class:`RetrievalService` (and its bag
            and concept caches) across sessions; one is created per session
            by default.
    """

    def __init__(
        self,
        database: ImageDatabase,
        scheme: str = "inequality",
        beta: float = 0.5,
        alpha: float = 50.0,
        max_iterations: int = 100,
        start_bag_subset: int | None = None,
        seed: int = 0,
        learner: str = "dd",
        engine: str = "batched",
        restart_prune_margin: float | None = None,
        learner_params: dict[str, object] | None = None,
        service: RetrievalService | None = None,
    ) -> None:
        self._service = service or RetrievalService(database)
        if self._service.database is not database:
            raise DatabaseError("the shared service must serve the same database")
        self._database = database
        self._seed = seed
        self._learner = learner
        self._params = (
            dict(learner_params)
            if learner_params is not None
            else shape_learner_params(
                learner,
                scheme=scheme,
                beta=beta,
                alpha=alpha,
                max_iterations=max_iterations,
                start_bag_subset=start_bag_subset,
                seed=seed,
                engine=engine,
                restart_prune_margin=restart_prune_margin,
            )
        )
        self._positive_ids: list[str] = []
        self._negative_ids: list[str] = []
        self._fitted: FittedQuery | None = None

    @property
    def service(self) -> RetrievalService:
        """The retrieval service executing this session's queries."""
        return self._service

    @property
    def learner(self) -> str:
        """The registry name of the learner in use."""
        return self._learner

    @property
    def cache_stats(self) -> CacheStats:
        """Concept-cache counters of the underlying service."""
        return self._service.cache_stats

    # ------------------------------------------------------------------ #
    # Example management                                                  #
    # ------------------------------------------------------------------ #

    @property
    def positive_ids(self) -> tuple[str, ...]:
        """Current positive example ids."""
        return tuple(self._positive_ids)

    @property
    def negative_ids(self) -> tuple[str, ...]:
        """Current negative example ids."""
        return tuple(self._negative_ids)

    def add_positive(self, image_id: str) -> None:
        """Mark one database image as a positive example."""
        self._validate_new_example(image_id)
        self._positive_ids.append(image_id)
        self._fitted = None

    def add_negative(self, image_id: str) -> None:
        """Mark one database image as a negative example."""
        self._validate_new_example(image_id)
        self._negative_ids.append(image_id)
        self._fitted = None

    def _validate_new_example(self, image_id: str) -> None:
        """Check an id can become an example; raises without mutating."""
        if image_id not in self._database:
            raise DatabaseError(f"unknown image id {image_id!r}")
        if image_id in self._positive_ids or image_id in self._negative_ids:
            raise DatabaseError(f"image {image_id!r} is already an example")

    def add_examples(
        self, category: str, n_positive: int = 5, n_negative: int = 5
    ) -> None:
        """Simulated-user shortcut: seeded picks for/against a category."""
        selection = select_examples(
            self._database,
            [i for i in self._database.image_ids if not self._is_example(i)],
            category,
            n_positive=n_positive,
            n_negative=n_negative,
            seed=self._seed,
        )
        self._positive_ids.extend(selection.positive_ids)
        self._negative_ids.extend(selection.negative_ids)
        self._fitted = None

    def _is_example(self, image_id: str) -> bool:
        return image_id in self._positive_ids or image_id in self._negative_ids

    def mark_false_positives(self, image_ids: tuple[str, ...] | list[str]) -> None:
        """Manual feedback: demote retrieved images to negative examples.

        Atomic: every id is validated before any is applied, so one unknown
        or duplicate id leaves the session's examples untouched.

        Raises:
            DatabaseError: on an unknown id, an id that is already an
                example, or a duplicate within ``image_ids``.
        """
        self.apply_edits(false_positive_ids=tuple(image_ids))

    def apply_edits(
        self,
        add_positive_ids: tuple[str, ...] | list[str] = (),
        add_negative_ids: tuple[str, ...] | list[str] = (),
        false_positive_ids: tuple[str, ...] | list[str] = (),
    ) -> None:
        """Apply one round of example edits atomically.

        Every id across all three lists is validated (in the database, not
        already an example, no duplicates) before any is applied, so a
        rejected edit leaves the session untouched — the contract the
        serving layer relies on for safe client retries.  False positives
        become negative examples.

        Raises:
            DatabaseError: on an unknown id, an id that is already an
                example, or a duplicate across the lists (nothing applied).
        """
        ids = (*add_positive_ids, *add_negative_ids, *false_positive_ids)
        seen: set[str] = set()
        for image_id in ids:
            if image_id in seen:
                raise DatabaseError(
                    f"duplicate image id {image_id!r} across example edits"
                )
            self._validate_new_example(image_id)
            seen.add(image_id)
        self._positive_ids.extend(add_positive_ids)
        self._negative_ids.extend(add_negative_ids)
        self._negative_ids.extend(false_positive_ids)
        if ids:
            self._fitted = None

    # ------------------------------------------------------------------ #
    # Training and retrieval                                              #
    # ------------------------------------------------------------------ #

    @property
    def concept(self) -> LearnedConcept:
        """The most recently learned concept.

        Raises:
            TrainingError: if no training has run since the examples
                changed, or the learner does not produce a concept.
        """
        if self._fitted is None:
            raise TrainingError("no current concept; call train() first")
        concept = self._fitted.model.concept
        if concept is None:
            raise TrainingError(
                f"learner {self._learner!r} does not produce a concept"
            )
        return concept

    def peek_concept(self) -> LearnedConcept | None:
        """The current concept, or ``None`` when there is none.

        Unlike :attr:`concept` this never raises — serving endpoints use it
        to report the concept opportunistically (stale examples or a
        non-concept learner simply yield ``None``).
        """
        if self._fitted is None:
            return None
        return self._fitted.model.concept

    def _fit(self) -> None:
        if not self._positive_ids:
            raise TrainingError("add at least one positive example before training")
        self._fitted = self._service.fit(
            self._positive_ids,
            self._negative_ids,
            learner=self._learner,
            params=self._params,
        )

    def train(self) -> TrainingResult:
        """Train the configured learner on the current examples.

        Raises:
            TrainingError: without a positive example, or when the learner
                produces no training diagnostics (the sanity rankers) —
                use :meth:`train_and_rank` or :meth:`rank` with those.
        """
        self._fit()
        training = self._fitted.model.training
        if training is None:
            raise TrainingError(
                f"learner {self._learner!r} produces no training diagnostics; "
                "use train_and_rank() or rank() instead"
            )
        return training

    def rank(
        self,
        ids: tuple[str, ...] | list[str] | None = None,
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
        exclude: tuple[str, ...] | list[str] = (),
    ) -> RetrievalResult:
        """Rank database images (examples excluded) with the current model.

        Args:
            ids: which images to rank; the whole database when ``None``.
            top_k: truncate to the best ``top_k`` entries; the result still
                reports its ``total_candidates``.
            category_filter: rank only candidates of this category.
            exclude: additional image ids to leave out (the session's own
                examples are always excluded).
        """
        if self._fitted is None:
            raise TrainingError("no current concept; call train() first")
        return self._service.rank_with(
            self._fitted,
            candidate_ids=ids,
            exclude=tuple(self._positive_ids)
            + tuple(self._negative_ids)
            + tuple(exclude),
            top_k=top_k,
            category_filter=category_filter,
        )

    def train_and_rank(
        self,
        ids: tuple[str, ...] | list[str] | None = None,
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Convenience: train, then rank in one call (works for any learner)."""
        self._fit()
        return self.rank(ids, top_k=top_k, category_filter=category_filter)
