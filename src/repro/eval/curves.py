"""Recall curves and precision-recall curves (Figures 4-5 .. 4-7).

A :class:`RecallCurve` plots recall against the number of images retrieved;
"a completely random retrieval of images would result in a recall curve as a
45-degree line", and better results are more convex.  A
:class:`PrecisionRecallCurve` plots precision against recall; random
retrieval gives a flat line at the base rate.

Both wrap a relevance sequence and expose sampled points, interpolation and
comparison helpers used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import (
    average_precision,
    precision_in_recall_band,
    precision_points,
    recall_points,
)


@dataclass(frozen=True)
class CurveSummary:
    """Headline numbers of one retrieval run, used in bench reports."""

    average_precision: float
    band_precision: float
    recall_at_quarter: float
    final_recall: float


class RecallCurve:
    """Recall as a function of the number of images retrieved."""

    def __init__(self, relevance: np.ndarray, n_relevant: int | None = None):
        self._recalls = recall_points(np.asarray(relevance), n_relevant)
        self._relevance = np.asarray(relevance, dtype=bool)
        self._n_relevant = (
            int(self._relevance.sum()) if n_relevant is None else n_relevant
        )

    @property
    def n_retrieved(self) -> int:
        """Length of the ranking."""
        return self._recalls.size

    @property
    def n_relevant(self) -> int:
        """Total relevant images in the test set."""
        return self._n_relevant

    def recall_after(self, k: int) -> float:
        """Recall after ``k`` retrievals."""
        if not 1 <= k <= self._recalls.size:
            raise EvaluationError(f"k must be in [1, {self._recalls.size}], got {k}")
        return float(self._recalls[k - 1])

    @property
    def points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(retrieved_counts, recalls)`` arrays for plotting."""
        return np.arange(1, self._recalls.size + 1), self._recalls.copy()

    def area(self) -> float:
        """Normalised area under the recall curve in [0, 1].

        Random ranking gives ~0.5 (the 45-degree line); perfect ranking
        approaches 1; worst-case ranking approaches 0.
        """
        return float(self._recalls.mean())

    def convexity_gain(self) -> float:
        """Area above the random-retrieval diagonal (positive = better)."""
        diagonal = np.arange(1, self._recalls.size + 1) / self._recalls.size
        return float((self._recalls - diagonal).mean())


class PrecisionRecallCurve:
    """Precision as a function of recall."""

    def __init__(self, relevance: np.ndarray, n_relevant: int | None = None):
        relevance = np.asarray(relevance)
        self._precisions = precision_points(relevance)
        self._recalls = recall_points(relevance, n_relevant)
        self._relevance = relevance.astype(bool)
        self._n_relevant = (
            int(self._relevance.sum()) if n_relevant is None else n_relevant
        )

    @property
    def points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(recalls, precisions)`` arrays for plotting."""
        return self._recalls.copy(), self._precisions.copy()

    def precision_at_recall(self, recall: float) -> float:
        """Precision at the first retrieval reaching the given recall.

        Returns 0.0 if the ranking never reaches that recall.
        """
        if not 0.0 <= recall <= 1.0:
            raise EvaluationError(f"recall must lie in [0, 1], got {recall}")
        reached = self._recalls >= recall
        if not reached.any():
            return 0.0
        return float(self._precisions[int(np.argmax(reached))])

    def sampled(self, recall_grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The curve sampled on a recall grid (default 0.05 .. 1.0 step 0.05)."""
        grid = (
            np.linspace(0.05, 1.0, 20) if recall_grid is None else np.asarray(recall_grid)
        )
        return grid, np.array([self.precision_at_recall(r) for r in grid])

    def average_precision(self) -> float:
        """Average precision of the underlying ranking."""
        return average_precision(self._relevance, self._n_relevant)

    def band_precision(self, low: float = 0.3, high: float = 0.4) -> float:
        """The Figure 4-22 measure: mean precision for recall in a band."""
        return precision_in_recall_band(self._relevance, low, high, self._n_relevant)

    def summary(self) -> CurveSummary:
        """Headline numbers for reports."""
        quarter = max(1, self._recalls.size // 4)
        return CurveSummary(
            average_precision=self.average_precision(),
            band_precision=self.band_precision(),
            recall_at_quarter=float(self._recalls[quarter - 1]),
            final_recall=float(self._recalls[-1]),
        )


def curves_from_relevance(
    relevance: np.ndarray, n_relevant: int | None = None
) -> tuple[RecallCurve, PrecisionRecallCurve]:
    """Convenience: both curves from one relevance sequence."""
    return (
        RecallCurve(relevance, n_relevant),
        PrecisionRecallCurve(relevance, n_relevant),
    )
