"""ASCII reporting helpers for benchmark and example output.

Benchmarks print their reproduced tables and figure series as plain text;
these helpers render aligned tables and coarse character plots without any
plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width table.

    Args:
        headers: column names.
        rows: row cells; floats are formatted with ``float_format``, other
            values with ``str``.
        title: optional title line above the table.
        float_format: format spec for float cells.
    """
    if not headers:
        raise EvaluationError("ascii_table requires at least one column")

    def render_cell(value: object) -> str:
        if isinstance(value, float) or isinstance(value, np.floating):
            return float_format.format(float(value))
        return str(value)

    text_rows = [[render_cell(cell) for cell in row] for row in rows]
    for index, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise EvaluationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in text_rows)) if text_rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_curve(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_range: tuple[float, float] | None = None,
) -> str:
    """Render a coarse character plot of ``y`` against ``x``.

    Args:
        x: x values (monotone recommended).
        y: y values, same length.
        width, height: character-grid size.
        title: optional title line.
        y_range: fixed y axis range; inferred from the data when omitted.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if x.size != y.size or x.size == 0:
        raise EvaluationError(f"x and y must be equal-length non-empty, got {x.size}/{y.size}")
    if width < 10 or height < 4:
        raise EvaluationError("curve grid must be at least 10x4")

    y_low, y_high = y_range if y_range is not None else (float(y.min()), float(y.max()))
    if y_high - y_low < 1e-12:
        y_high = y_low + 1.0
    x_low, x_high = float(x.min()), float(x.max())
    if x_high - x_low < 1e-12:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((x - x_low) / (x_high - x_low) * (width - 1)).round().astype(int), 0, width - 1)
    rows = np.clip(
        ((y_high - y) / (y_high - y_low) * (height - 1)).round().astype(int), 0, height - 1
    )
    for row, col in zip(rows, cols):
        grid[row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:8.3f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_low:8.3f} +" + "".join(grid[-1]))
    lines.append(" " * 10 + f"{x_low:<10.3g}" + " " * max(0, width - 20) + f"{x_high:>10.3g}")
    return "\n".join(lines)


def format_weight_matrix(matrix: np.ndarray, precision: int = 2) -> str:
    """Render an ``h x h`` weight/concept matrix compactly (Figures 3-7..3-9)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise EvaluationError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return "\n".join(
        " ".join(f"{value:6.{precision}f}" for value in row) for row in matrix
    )
