"""Retrieval metrics (Section 4.1).

All metrics consume a boolean *relevance sequence* — entry ``k`` says whether
the ``k``-th retrieved image (0-based, best match first) is correct.  From it
we derive the paper's two curves and its summary statistics:

* precision after ``k`` retrievals = correct-so-far / k,
* recall after ``k`` retrievals = correct-so-far / total-correct-in-test-set,
* the Figure 4-22 performance measure: the mean precision over the part of
  the precision-recall curve with recall in a band (the paper uses
  [0.3, 0.4]).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError


def _as_relevance(relevance: np.ndarray) -> np.ndarray:
    mask = np.asarray(relevance)
    if mask.ndim != 1:
        raise EvaluationError(f"relevance must be 1-D, got shape {mask.shape}")
    if mask.size == 0:
        raise EvaluationError("relevance sequence is empty")
    if mask.dtype != bool:
        unique = set(np.unique(mask).tolist())
        if not unique <= {0, 1}:
            raise EvaluationError(f"relevance entries must be boolean, got values {sorted(unique)}")
        mask = mask.astype(bool)
    return mask


def precision_points(relevance: np.ndarray) -> np.ndarray:
    """Precision after each retrieval: ``cumsum / (1..n)``."""
    mask = _as_relevance(relevance)
    hits = np.cumsum(mask)
    return hits / np.arange(1, mask.size + 1)


def recall_points(relevance: np.ndarray, n_relevant: int | None = None) -> np.ndarray:
    """Recall after each retrieval.

    Args:
        relevance: the relevance sequence.
        n_relevant: total number of relevant images in the test set; defaults
            to the number of relevant entries in the sequence (i.e. the
            sequence covers the whole test set).

    Raises:
        EvaluationError: if ``n_relevant`` is smaller than the hits present.
    """
    mask = _as_relevance(relevance)
    hits = np.cumsum(mask)
    total = int(hits[-1]) if n_relevant is None else n_relevant
    if total < int(hits[-1]):
        raise EvaluationError(
            f"n_relevant={total} is less than the {int(hits[-1])} relevant entries present"
        )
    if total == 0:
        return np.zeros(mask.size)
    return hits / total


def precision_at_k(relevance: np.ndarray, k: int) -> float:
    """Precision among the first ``k`` retrievals."""
    mask = _as_relevance(relevance)
    if not 1 <= k <= mask.size:
        raise EvaluationError(f"k must be in [1, {mask.size}], got {k}")
    return float(mask[:k].mean())


def recall_at_k(relevance: np.ndarray, k: int, n_relevant: int | None = None) -> float:
    """Recall after the first ``k`` retrievals."""
    mask = _as_relevance(relevance)
    if not 1 <= k <= mask.size:
        raise EvaluationError(f"k must be in [1, {mask.size}], got {k}")
    return float(recall_points(mask, n_relevant)[k - 1])


def average_precision(relevance: np.ndarray, n_relevant: int | None = None) -> float:
    """Mean of precision values at each relevant retrieval (AP).

    A perfect ranking scores 1.0; random rankings score roughly the base
    rate of relevant images.
    """
    mask = _as_relevance(relevance)
    total = int(mask.sum()) if n_relevant is None else n_relevant
    if total == 0:
        return 0.0
    precisions = precision_points(mask)
    return float(precisions[mask].sum() / total)


def precision_in_recall_band(
    relevance: np.ndarray,
    recall_low: float = 0.3,
    recall_high: float = 0.4,
    n_relevant: int | None = None,
) -> float:
    """Mean precision where recall lies in ``[recall_low, recall_high]``.

    This is the Figure 4-22 performance measure ("the average precision
    value for recall between 0.3 and 0.4").  If the ranking never reaches
    ``recall_low``, returns 0.0.

    Raises:
        EvaluationError: on an invalid band.
    """
    if not 0.0 <= recall_low < recall_high <= 1.0:
        raise EvaluationError(f"invalid recall band [{recall_low}, {recall_high}]")
    mask = _as_relevance(relevance)
    precisions = precision_points(mask)
    recalls = recall_points(mask, n_relevant)
    in_band = (recalls >= recall_low) & (recalls <= recall_high)
    if not in_band.any():
        reached = recalls >= recall_low
        if not reached.any():
            return 0.0
        # The curve jumped over the band between two retrievals; use the
        # precision at the first point past the band's lower edge.
        return float(precisions[int(np.argmax(reached))])
    return float(precisions[in_band].mean())


def random_baseline_precision(n_relevant: int, n_total: int) -> float:
    """Expected precision of a random ranking — the paper's flat PR line.

    For the 500-image scene database with 100 relevant images this is 0.2,
    matching "for our natural scene database, it would be a flat line at
    0.2".
    """
    if n_total < 1 or not 0 <= n_relevant <= n_total:
        raise EvaluationError(
            f"invalid counts: n_relevant={n_relevant}, n_total={n_total}"
        )
    return n_relevant / n_total
