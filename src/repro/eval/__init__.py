"""Evaluation: metrics, curves, the experiment runner and ASCII reporting.

* :mod:`repro.eval.metrics` — precision/recall points, average precision and
  the Figure 4-22 recall-band precision.
* :mod:`repro.eval.curves` — :class:`~repro.eval.curves.RecallCurve` and
  :class:`~repro.eval.curves.PrecisionRecallCurve` (Figures 4-5 .. 4-7).
* :mod:`repro.eval.experiment` — the end-to-end retrieval experiment of
  Section 4.1 (split, select examples, feedback rounds, final curves).
* :mod:`repro.eval.reporting` — ASCII tables and curve sketches for bench
  output.
"""

from repro.eval.curves import PrecisionRecallCurve, RecallCurve
from repro.eval.experiment import ExperimentConfig, ExperimentResult, RetrievalExperiment
from repro.eval.metrics import (
    average_precision,
    precision_at_k,
    precision_in_recall_band,
    recall_at_k,
)
from repro.eval.reporting import ascii_curve, ascii_table

__all__ = [
    "PrecisionRecallCurve",
    "RecallCurve",
    "ExperimentConfig",
    "ExperimentResult",
    "RetrievalExperiment",
    "average_precision",
    "precision_at_k",
    "precision_in_recall_band",
    "recall_at_k",
    "ascii_curve",
    "ascii_table",
]
