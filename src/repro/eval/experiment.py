"""The end-to-end retrieval experiment of Section 4.1.

One :class:`RetrievalExperiment` is the paper's canonical evaluation unit:

1. split the database into a potential training set and a test set
   (stratified 20% by default),
2. pick seeded positive/negative example images (the simulated user),
3. run the relevance-feedback loop (3 training rounds, 5 false positives
   promoted per round by default),
4. rank the test set with the final concept and compute the recall and
   precision-recall curves.

Every figure-reproducing benchmark builds on this class, varying the scheme,
its parameters, the feature configuration or the dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.learners import ConceptLearner, make_learner, shape_learner_params
from repro.core.feedback import FeedbackLoop, FeedbackOutcome, select_examples
from repro.database.splits import DatabaseSplit, split_database
from repro.database.store import ImageDatabase
from repro.errors import EvaluationError
from repro.eval.curves import CurveSummary, PrecisionRecallCurve, RecallCurve


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one retrieval experiment.

    Attributes:
        target_category: the concept the simulated user searches for.
        learner: registry name of the concept learner driving the feedback
            loop (``dd`` by default; ``emdd`` runs the extension trainer).
        scheme: weight scheme name (``original`` / ``identical`` /
            ``alpha_hack`` / ``inequality``).
        beta: inequality-constraint level.
        alpha: alpha-hack damping constant.
        n_positive / n_negative: initial example counts (paper: 5 / 5).
        rounds: training rounds (paper: 3).
        false_positives_per_round: negatives promoted per non-final round
            (paper: 5).
        training_fraction: share of each category in the potential training
            set (paper: 0.2).
        start_bag_subset: positive-bag subset for restarts (Section 4.3);
            ``None`` = all bags.
        start_instance_stride: restart thinning within each start bag.
        max_iterations: per-start solver iteration cap.
        seed: master seed for split, example selection and subset choice.
        engine: training engine, ``"batched"`` (lockstep multi-start) or
            ``"sequential"`` (one solver per restart).
        restart_prune_margin: batched engine only — freeze restarts that
            trail the incumbent best by more than this margin.
        warm_start: seed each feedback round after the first with an extra
            restart at the previous round's concept.
    """

    target_category: str
    learner: str = "dd"
    scheme: str = "inequality"
    beta: float = 0.5
    alpha: float = 50.0
    n_positive: int = 5
    n_negative: int = 5
    rounds: int = 3
    false_positives_per_round: int = 5
    training_fraction: float = 0.2
    start_bag_subset: int | None = None
    start_instance_stride: int = 1
    max_iterations: int = 100
    seed: int = 0
    engine: str = "batched"
    restart_prune_margin: float | None = None
    warm_start: bool = False

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        config: the configuration that ran.
        outcome: the feedback-loop record (rounds, final ranking).
        relevance: boolean relevance of the final test ranking.
        n_relevant: relevant images present in the test set.
        recall_curve / pr_curve: the paper's two evaluation curves.
        summary: headline numbers of the PR curve.
        elapsed_seconds: wall-clock time of the whole experiment.
    """

    config: ExperimentConfig
    outcome: FeedbackOutcome
    relevance: np.ndarray
    n_relevant: int
    recall_curve: RecallCurve
    pr_curve: PrecisionRecallCurve
    summary: CurveSummary
    elapsed_seconds: float

    @property
    def average_precision(self) -> float:
        """Average precision of the final test ranking."""
        return self.summary.average_precision

    @property
    def band_precision(self) -> float:
        """Mean precision for recall in [0.3, 0.4] (the Fig 4-22 measure)."""
        return self.summary.band_precision


class RetrievalExperiment:
    """Runs the Section 4.1 protocol on a database.

    Args:
        database: a populated :class:`ImageDatabase`.
        config: the experiment parameters.
        split: reuse an existing split instead of creating one — lets a suite
            of experiments share identical train/test partitions.
    """

    def __init__(
        self,
        database: ImageDatabase,
        config: ExperimentConfig,
        split: DatabaseSplit | None = None,
    ):
        if config.target_category not in database.categories():
            raise EvaluationError(
                f"target category {config.target_category!r} not in database "
                f"categories {database.categories()}"
            )
        self._database = database
        self._config = config
        self._split = split or split_database(
            database, training_fraction=config.training_fraction, seed=config.seed
        )

    @property
    def split(self) -> DatabaseSplit:
        """The potential-training / test split in use."""
        return self._split

    @property
    def config(self) -> ExperimentConfig:
        """The experiment configuration."""
        return self._config

    def build_trainer(self) -> ConceptLearner:
        """The learner implied by the configuration, resolved via the registry.

        Raises:
            EvaluationError: if the configured learner cannot drive the
                feedback loop (it must produce a concept).
        """
        cfg = self._config
        params = shape_learner_params(
            cfg.learner,
            scheme=cfg.scheme,
            beta=cfg.beta,
            alpha=cfg.alpha,
            max_iterations=cfg.max_iterations,
            start_bag_subset=cfg.start_bag_subset,
            start_instance_stride=cfg.start_instance_stride,
            seed=cfg.seed,
            engine=cfg.engine,
            restart_prune_margin=cfg.restart_prune_margin,
        )
        learner = make_learner(cfg.learner, **params)
        if not isinstance(learner, ConceptLearner):
            raise EvaluationError(
                f"learner {cfg.learner!r} does not learn a concept and cannot "
                "drive the feedback-loop experiment"
            )
        return learner

    def run(self) -> ExperimentResult:
        """Execute the experiment end to end."""
        started_at = time.perf_counter()
        cfg = self._config
        selection = select_examples(
            self._database,
            self._split.potential_ids,
            cfg.target_category,
            n_positive=cfg.n_positive,
            n_negative=cfg.n_negative,
            seed=cfg.seed,
        )
        learner = self.build_trainer()
        learner.bind(self._database)
        loop = FeedbackLoop(
            # The learner chooses the corpus it trains and ranks on — the
            # colour baseline swaps in SBN bags here; everything else uses
            # the database's region bags.
            corpus=learner.corpus(self._database),
            trainer=learner,
            target_category=cfg.target_category,
            potential_ids=self._split.potential_ids,
            test_ids=self._split.test_ids,
            rounds=cfg.rounds,
            false_positives_per_round=cfg.false_positives_per_round,
            warm_start=cfg.warm_start,
        )
        outcome = loop.run(selection)

        relevance = outcome.test_ranking.relevance(cfg.target_category)
        n_relevant = sum(
            1
            for image_id in self._split.test_ids
            if self._database.category_of(image_id) == cfg.target_category
        )
        recall_curve = RecallCurve(relevance, n_relevant)
        pr_curve = PrecisionRecallCurve(relevance, n_relevant)
        elapsed = time.perf_counter() - started_at
        return ExperimentResult(
            config=cfg,
            outcome=outcome,
            relevance=relevance,
            n_relevant=n_relevant,
            recall_curve=recall_curve,
            pr_curve=pr_curve,
            summary=pr_curve.summary(),
            elapsed_seconds=elapsed,
        )


@dataclass(frozen=True)
class ComparisonRow:
    """One labelled experiment result inside a comparison suite."""

    label: str
    result: ExperimentResult = field(repr=False)

    @property
    def average_precision(self) -> float:
        """Shortcut to the result's average precision."""
        return self.result.average_precision


def run_comparison(
    database: ImageDatabase,
    configs: dict[str, ExperimentConfig],
    share_split: bool = True,
) -> list[ComparisonRow]:
    """Run several labelled experiments, optionally on one shared split.

    Args:
        database: the populated database.
        configs: mapping of label to configuration.
        share_split: compute the split once from the first config so every
            variant ranks the same test images (the paper's protocol for its
            scheme comparisons).
    """
    if not configs:
        raise EvaluationError("run_comparison needs at least one configuration")
    shared: DatabaseSplit | None = None
    rows: list[ComparisonRow] = []
    for label, config in configs.items():
        experiment = RetrievalExperiment(database, config, split=shared)
        if share_split and shared is None:
            shared = experiment.split
        rows.append(ComparisonRow(label=label, result=experiment.run()))
    return rows
