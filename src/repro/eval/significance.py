"""Statistical comparison of retrieval rankings.

The paper summarises comparisons qualitatively ("very close", "best or close
to best").  For a repository meant to be extended, those verdicts should be
checkable: this module provides a paired bootstrap over the *test set* that
turns two relevance sequences into a confidence interval on their average
precision difference, plus a seed-resampling utility for comparing whole
experiment configurations.

The bootstrap resamples test images (not ranks): each replicate draws images
with replacement, re-derives each system's induced ranking restricted to the
drawn images, and recomputes AP.  This respects the paired structure — both
systems are evaluated on the same resampled image set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import average_precision


@dataclass(frozen=True)
class PairedComparison:
    """The outcome of a paired bootstrap AP comparison.

    Attributes:
        mean_difference: mean AP(first) - AP(second) over replicates.
        ci_low, ci_high: bootstrap percentile confidence interval.
        p_value: two-sided bootstrap p-value for "no difference".
        n_replicates: replicates drawn.
    """

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float
    n_replicates: int

    @property
    def significant(self) -> bool:
        """Whether the 95% interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def verdict(self) -> str:
        """A human-readable one-liner for reports."""
        direction = "first better" if self.mean_difference > 0 else "second better"
        if self.significant:
            return (
                f"significant ({direction}): dAP={self.mean_difference:+.3f} "
                f"95% CI [{self.ci_low:+.3f}, {self.ci_high:+.3f}]"
            )
        return (
            f"not significant (very close): dAP={self.mean_difference:+.3f} "
            f"95% CI [{self.ci_low:+.3f}, {self.ci_high:+.3f}]"
        )


def _check_alignment(
    first_ids: tuple[str, ...], second_ids: tuple[str, ...]
) -> None:
    if set(first_ids) != set(second_ids):
        missing = set(first_ids) ^ set(second_ids)
        raise EvaluationError(
            "paired comparison requires both rankings to cover the same "
            f"images; {len(missing)} ids differ"
        )


def paired_bootstrap(
    first_ranking,
    second_ranking,
    target_category: str,
    n_replicates: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap comparison of two rankings of the same test set.

    Args:
        first_ranking / second_ranking:
            :class:`~repro.core.retrieval.RetrievalResult` objects over the
            same image ids (order may differ — that is the comparison).
        target_category: the relevance criterion.
        n_replicates: bootstrap replicates (2000 gives ~0.01 CI resolution).
        seed: RNG seed.

    Raises:
        EvaluationError: if the rankings cover different image sets or the
            test set has no relevant images.
    """
    if n_replicates < 100:
        raise EvaluationError(f"n_replicates must be >= 100, got {n_replicates}")
    _check_alignment(first_ranking.image_ids, second_ranking.image_ids)

    # Represent each system by its image order; a replicate keeps each
    # system's internal order restricted to the sampled multiset.
    ids = list(first_ranking.image_ids)
    n = len(ids)
    id_to_position_second = {
        image_id: position for position, image_id in enumerate(second_ranking.image_ids)
    }
    relevant = {
        entry.image_id for entry in first_ranking if entry.category == target_category
    }
    if not relevant:
        raise EvaluationError(
            f"no {target_category!r} images in the rankings; nothing to compare"
        )

    first_positions = np.arange(n)
    second_positions = np.array([id_to_position_second[i] for i in ids])
    relevance_flags = np.array([i in relevant for i in ids])

    rng = np.random.default_rng(seed)
    differences = np.empty(n_replicates)
    for replicate in range(n_replicates):
        sample = rng.integers(0, n, size=n)
        flags = relevance_flags[sample]
        if not flags.any():
            differences[replicate] = 0.0
            continue
        order_first = np.argsort(first_positions[sample], kind="stable")
        order_second = np.argsort(second_positions[sample], kind="stable")
        ap_first = average_precision(flags[order_first])
        ap_second = average_precision(flags[order_second])
        differences[replicate] = ap_first - ap_second

    ci_low, ci_high = np.percentile(differences, [2.5, 97.5])
    # Two-sided bootstrap p-value: how often the difference crosses zero.
    tail = min(
        float(np.mean(differences <= 0)), float(np.mean(differences >= 0))
    )
    return PairedComparison(
        mean_difference=float(differences.mean()),
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=min(1.0, 2.0 * tail),
        n_replicates=n_replicates,
    )


def seed_resampled_aps(
    run_experiment,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> np.ndarray:
    """Average precisions of one experiment configuration across seeds.

    Args:
        run_experiment: callable mapping a seed to an object with an
            ``average_precision`` attribute (e.g. a closure over
            :class:`~repro.eval.experiment.RetrievalExperiment`).
        seeds: the seeds to sweep.

    Returns:
        Array of AP values, one per seed — feed two of these into a paired
        t-test or report mean +/- std.
    """
    if not seeds:
        raise EvaluationError("seed_resampled_aps needs at least one seed")
    return np.array([run_experiment(seed).average_precision for seed in seeds])
