"""Batch retrieval index: rank a whole database in one vectorised pass.

:class:`~repro.core.retrieval.RetrievalEngine` scores candidates one bag at
a time — clear, but each query pays a Python-loop cost per image.  For
interactive use over larger databases, :class:`StackedIndex` pre-stacks
every image's instances into a single matrix once, and answers a query with
one matrix product plus a segmented minimum:

    distances = ((X - t)^2) @ w          # all instances at once
    per_image = segment_min(distances)   # min over each image's rows

The index is immutable with respect to the feature configuration it was
built from; rebuilding after :meth:`ImageDatabase.reconfigure` is the
caller's responsibility (a stale index raises on dimension mismatch).

The result is identical to the per-bag engine (a test asserts ranking
equality), just faster — the speedup is measured in
``benchmarks/bench_core_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import RankedImage, RetrievalResult
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError


class StackedIndex:
    """A flat instance matrix over (a subset of) a database.

    Args:
        database: the featurised image database.
        ids: which images to index; all images when omitted.

    Raises:
        DatabaseError: on an empty id list.
    """

    def __init__(self, database: ImageDatabase, ids=None):
        chosen = tuple(database.image_ids if ids is None else ids)
        if not chosen:
            raise DatabaseError("cannot build an index over zero images")
        matrices = [database.instances_for(image_id) for image_id in chosen]
        counts = np.array([m.shape[0] for m in matrices], dtype=np.int64)
        self._ids = chosen
        self._categories = tuple(database.category_of(i) for i in chosen)
        self._matrix = np.vstack(matrices)
        self._starts = np.concatenate([[0], np.cumsum(counts)])[:-1]
        self._n_dims = self._matrix.shape[1]

    @property
    def n_images(self) -> int:
        """Number of indexed images."""
        return len(self._ids)

    @property
    def n_instances(self) -> int:
        """Total instances across all indexed images."""
        return self._matrix.shape[0]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality of the index."""
        return self._n_dims

    @property
    def image_ids(self) -> tuple[str, ...]:
        """Indexed image ids, in index order."""
        return self._ids

    def distances(self, concept: LearnedConcept) -> np.ndarray:
        """Per-image min weighted squared distance to the concept.

        Raises:
            DatabaseError: if the concept's dimensionality does not match
                the index (stale index after a reconfigure).
        """
        if concept.n_dims != self._n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the index holds "
                f"{self._n_dims}; rebuild the index after reconfiguring"
            )
        diff = self._matrix - concept.t
        instance_distances = (diff * diff) @ concept.w
        return np.minimum.reduceat(instance_distances, self._starts)

    def rank(
        self, concept: LearnedConcept, exclude=()
    ) -> RetrievalResult:
        """Full ranking, identical to the per-bag engine's but vectorised."""
        excluded = set(exclude)
        per_image = self.distances(concept)
        scored = [
            (float(per_image[i]), self._ids[i], self._categories[i])
            for i in range(len(self._ids))
            if self._ids[i] not in excluded
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        ranked = [
            RankedImage(rank=position, image_id=image_id, category=category,
                        distance=distance)
            for position, (distance, image_id, category) in enumerate(scored)
        ]
        return RetrievalResult(ranked)

    def __repr__(self) -> str:
        return (
            f"StackedIndex({self.n_images} images, {self.n_instances} instances, "
            f"{self._n_dims} dims)"
        )
