"""Batch retrieval index: rank a whole database in one vectorised pass.

:class:`StackedIndex` predates the :class:`~repro.core.retrieval.PackedCorpus`
redesign and survives as a thin view over it: construction grabs the
database's cached packed corpus (building it on first use), and ranking
delegates to the vectorised :class:`~repro.core.retrieval.Ranker`:

    distances = ((X - t)^2) @ w          # all instances at once
    per_image = segment_min(distances)   # min over each image's rows

The index is immutable with respect to the feature configuration it was
built from; rebuilding after :meth:`ImageDatabase.reconfigure` is the
caller's responsibility (a stale index raises on dimension mismatch).

The result is identical to the per-bag reference loop (a test asserts
ranking equality), just faster — the speedup is measured in
``benchmarks/bench_rank_corpus.py`` and ``benchmarks/bench_core_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.concept import LearnedConcept
from repro.core.retrieval import PackedCorpus, Ranker, RetrievalResult
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError


class StackedIndex:
    """A flat instance matrix over (a subset of) a database.

    Args:
        database: the featurised image database.
        ids: which images to index; all images when omitted.

    Raises:
        DatabaseError: on an empty id list.
    """

    def __init__(self, database: ImageDatabase, ids=None):
        # ids=None passes through so the full index shares (and populates)
        # the database's cached packed view instead of copying it.
        packed = database.packed(None if ids is None else tuple(ids))
        if packed.n_bags == 0:
            raise DatabaseError("cannot build an index over zero images")
        self._packed = packed
        self._ranker = Ranker()

    def packed(self, ids=None) -> PackedCorpus:
        """The underlying columnar corpus view (a sub-view for ``ids``).

        A method, not a property, so the index itself satisfies the corpus
        protocol and can be handed to :class:`Ranker` or ``packed_view``.
        """
        return self._packed if ids is None else self._packed.select(tuple(ids))

    @property
    def n_images(self) -> int:
        """Number of indexed images."""
        return self._packed.n_bags

    @property
    def n_instances(self) -> int:
        """Total instances across all indexed images."""
        return self._packed.n_instances

    @property
    def n_dims(self) -> int:
        """Feature dimensionality of the index."""
        return self._packed.n_dims

    @property
    def image_ids(self) -> tuple[str, ...]:
        """Indexed image ids, in index order."""
        return self._packed.image_ids

    def _check_dims(self, concept: LearnedConcept) -> None:
        if concept.n_dims != self._packed.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the index holds "
                f"{self._packed.n_dims}; rebuild the index after reconfiguring"
            )

    def distances(self, concept: LearnedConcept) -> np.ndarray:
        """Per-image min weighted squared distance to the concept.

        Raises:
            DatabaseError: if the concept's dimensionality does not match
                the index (stale index after a reconfigure).
        """
        self._check_dims(concept)
        return self._packed.min_distances(concept)

    def rank(
        self,
        concept: LearnedConcept,
        exclude=(),
        *,
        top_k: int | None = None,
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Ranking identical to the per-bag reference loop, but vectorised."""
        self._check_dims(concept)
        return self._ranker.rank(
            concept,
            self._packed,
            top_k=top_k,
            exclude=exclude,
            category_filter=category_filter,
        )

    def __repr__(self) -> str:
        return (
            f"StackedIndex({self.n_images} images, {self.n_instances} instances, "
            f"{self.n_dims} dims)"
        )
