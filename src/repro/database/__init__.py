"""The image database: records, store, splits and persistence.

* :mod:`repro.database.records` — :class:`~repro.database.records.ImageRecord`
  (image + category + cached feature set).
* :mod:`repro.database.store` — :class:`~repro.database.store.ImageDatabase`,
  the in-memory store with the corpus views the learner consumes.
* :mod:`repro.database.splits` — stratified potential-training/test splits.
* :mod:`repro.database.persistence` — ``.npz`` snapshot save/load.
"""

from repro.database.persistence import load_database, save_database
from repro.database.records import ImageRecord
from repro.database.splits import DatabaseSplit, split_database
from repro.database.store import ImageDatabase

__all__ = [
    "ImageDatabase",
    "ImageRecord",
    "DatabaseSplit",
    "split_database",
    "save_database",
    "load_database",
]
