"""Potential-training / test splits (Section 4.1).

"The entire image database is split into a small potential training set and
a large test set. ... For most experiments in this chapter, 20% of images
from each category are placed in the potential training set."  Splits are
stratified per category and seeded so experiments are repeatable (the thesis
likewise uses "a random seed [that] allows the experiments to be
repeatable").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.database.store import ImageDatabase
from repro.errors import SplitError


@dataclass(frozen=True)
class DatabaseSplit:
    """A disjoint potential-training / test partition of image ids."""

    potential_ids: tuple[str, ...]
    test_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = set(self.potential_ids) & set(self.test_ids)
        if overlap:
            raise SplitError(f"split is not disjoint; shared ids: {sorted(overlap)[:5]}")

    @property
    def n_potential(self) -> int:
        """Size of the potential training set."""
        return len(self.potential_ids)

    @property
    def n_test(self) -> int:
        """Size of the test set."""
        return len(self.test_ids)


def split_database(
    database: ImageDatabase,
    training_fraction: float = 0.2,
    seed: int = 0,
    min_training_per_category: int = 1,
) -> DatabaseSplit:
    """Stratified random split of a database.

    Args:
        database: the populated image database.
        training_fraction: share of each category placed in the potential
            training set (paper default 0.2).
        seed: RNG seed; identical seeds give identical splits.
        min_training_per_category: floor on per-category training images, so
            tiny categories still contribute examples.

    Raises:
        SplitError: on an empty database, a fraction outside ``(0, 1)`` or a
            category too small to satisfy the floor while keeping at least
            one test image.
    """
    if len(database) == 0:
        raise SplitError("cannot split an empty database")
    if not 0.0 < training_fraction < 1.0:
        raise SplitError(f"training_fraction must be in (0, 1), got {training_fraction}")
    if min_training_per_category < 0:
        raise SplitError(
            f"min_training_per_category must be >= 0, got {min_training_per_category}"
        )

    rng = np.random.default_rng(seed)
    potential: list[str] = []
    test: list[str] = []
    for category in database.categories():
        ids = list(database.ids_in_category(category))
        n_train = max(min_training_per_category, int(round(training_fraction * len(ids))))
        if n_train >= len(ids):
            raise SplitError(
                f"category {category!r} has {len(ids)} images; cannot place "
                f"{n_train} in training and keep a test image"
            )
        order = rng.permutation(len(ids))
        potential.extend(ids[i] for i in order[:n_train])
        test.extend(ids[i] for i in order[n_train:])
    return DatabaseSplit(potential_ids=tuple(sorted(potential)), test_ids=tuple(sorted(test)))


def split_ids(
    ids: Sequence[str],
    categories: Sequence[str],
    training_fraction: float = 0.2,
    seed: int = 0,
) -> DatabaseSplit:
    """Stratified split of bare id/category sequences (no database needed).

    Args:
        ids: image ids.
        categories: parallel ground-truth labels.
        training_fraction: share per category for the potential training set.
        seed: RNG seed.

    Raises:
        SplitError: on length mismatch or unsatisfiable split.
    """
    if len(ids) != len(categories):
        raise SplitError(f"{len(ids)} ids but {len(categories)} categories")
    if not ids:
        raise SplitError("cannot split an empty id list")
    if not 0.0 < training_fraction < 1.0:
        raise SplitError(f"training_fraction must be in (0, 1), got {training_fraction}")

    by_category: dict[str, list[str]] = {}
    for image_id, category in zip(ids, categories):
        by_category.setdefault(category, []).append(image_id)

    rng = np.random.default_rng(seed)
    potential: list[str] = []
    test: list[str] = []
    for category in sorted(by_category):
        members = by_category[category]
        n_train = max(1, int(round(training_fraction * len(members))))
        if n_train >= len(members):
            raise SplitError(
                f"category {category!r} has {len(members)} images; too few to split"
            )
        order = rng.permutation(len(members))
        potential.extend(members[i] for i in order[:n_train])
        test.extend(members[i] for i in order[n_train:])
    return DatabaseSplit(potential_ids=tuple(sorted(potential)), test_ids=tuple(sorted(test)))
