"""Database snapshots: save/load an :class:`ImageDatabase` as ``.npz``.

A snapshot stores every image's pixels (gray plane and, when present, the
RGB plane), its id and category, plus the feature configuration fingerprint.
Features themselves are *not* stored — they are cheap to recompute relative
to their size and depend on the configuration anyway — with one exception:
when the database carries a cached :class:`~repro.core.retrieval.PackedCorpus`
(the columnar view every ranking touches), format version 2 snapshots carry
it along and restore it on load, so a restored serving worker answers its
first query without re-featurising the whole corpus.  Format version 3
additionally persists the packed view's bound-pruned rank index
(:class:`~repro.core.sharding.ShardIndex`) when one was built, so a cold
worker — or every worker of a ``repro serve --workers N`` pool — skips the
O(N·d) envelope build too.  Format version 4 adds the approximate tier:
the packed view's hash-coded coarse index (codes + projection planes,
:mod:`repro.index.ann`) when one was built, and the packed view's own bag
order — a view re-packed in clustered-centroid order
(:meth:`~repro.core.retrieval.PackedCorpus.reordered_by_centroid`) round-
trips as-is instead of being silently un-reordered on load.  Versions 1–3
still load (they simply start with a cold packed cache / cold index / no
coarse tier).

The module-level :func:`save_database` / :func:`load_database` pair writes a
standalone ``.npz``; :func:`database_payload` / :func:`database_from_payload`
expose the same encoding as (manifest, arrays) pieces so other snapshot
formats (``repro.serve.snapshot``) can embed a database in a larger archive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.retrieval import PackedCorpus
from repro.core.sharding import adopt_index_payload, index_payload
from repro.index.ann import adopt_ann_payload, ann_payload
from repro.database.store import ImageDatabase
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family

_FORMAT_VERSION = 4
#: Snapshot versions :func:`load_database` understands.  Version 1 predates
#: the packed-corpus round-trip; version 2 predates the persisted rank
#: index; version 3 predates the coarse tier and the persisted bag order.
#: All load fine (and simply start with a cold packed cache / cold index /
#: no coarse tier).
SUPPORTED_VERSIONS = (1, 2, 3, 4)


def database_payload(
    database: ImageDatabase, key_prefix: str = ""
) -> tuple[dict, dict[str, np.ndarray]]:
    """Encode a database as a JSON manifest plus named arrays.

    Args:
        database: the database to encode.
        key_prefix: prepended to every array key, so several payloads can
            share one ``.npz`` namespace.

    Returns:
        ``(manifest, arrays)``.  The manifest references arrays by key; the
        cached packed corpus rides along (under ``manifest["packed"]``) when
        the database has one.
    """
    config = database.feature_config
    manifest: dict = {
        "version": _FORMAT_VERSION,
        "name": database.name,
        "images": [],
        "config": {
            "resolution": config.resolution,
            "region_family": config.region_family.name,
            "include_mirrors": config.include_mirrors,
            "variance_threshold": config.variance_threshold,
            "keep_full_frame": config.keep_full_frame,
        },
    }
    arrays: dict[str, np.ndarray] = {}
    for index, record in enumerate(database):
        gray_key = f"{key_prefix}gray_{index:06d}"
        arrays[gray_key] = record.image.pixels
        entry = {"id": record.image_id, "category": record.category, "gray": gray_key}
        if record.image.rgb is not None:
            rgb_key = f"{key_prefix}rgb_{index:06d}"
            arrays[rgb_key] = record.image.rgb
            entry["rgb"] = rgb_key
        manifest["images"].append(entry)
    packed = database.cached_packed
    if packed is not None:
        instances_key = f"{key_prefix}packed_instances"
        offsets_key = f"{key_prefix}packed_offsets"
        arrays[instances_key] = packed.instances
        arrays[offsets_key] = packed.offsets
        manifest["packed"] = {"instances": instances_key, "offsets": offsets_key}
        image_order = [entry["id"] for entry in manifest["images"]]
        if list(packed.image_ids) != image_order:
            # A view adopted after centroid reordering: persist the bag
            # order as positions into the manifest's image list, so the
            # load rebuilds the same (reordered) view.
            position_of = {
                image_id: index for index, image_id in enumerate(image_order)
            }
            order_key = f"{key_prefix}packed_order"
            arrays[order_key] = np.asarray(
                [position_of[image_id] for image_id in packed.image_ids],
                dtype=np.int64,
            )
            manifest["packed"]["order"] = order_key
        if packed.cached_shard_index is not None:
            manifest["packed"]["index"] = index_payload(
                packed.cached_shard_index, f"{key_prefix}packed_index", arrays
            )
        if packed.cached_coarse_index is not None:
            manifest["packed"]["ann"] = ann_payload(
                packed.cached_coarse_index, f"{key_prefix}packed_ann", arrays
            )
    return manifest, arrays


def database_from_payload(
    manifest: Mapping, arrays: Mapping[str, np.ndarray]
) -> ImageDatabase:
    """Inverse of :func:`database_payload`.

    Restores the cached packed corpus when the manifest carries one,
    verifying it against the restored images (id coverage, bag structure,
    feature dimensionality) — a snapshot whose packed view does not match
    its own images raises instead of silently serving wrong rankings.

    Raises:
        DatabaseError: on a malformed manifest or an inconsistent packed view.
    """
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise DatabaseError(
            f"snapshot has version {version}, "
            f"expected one of {SUPPORTED_VERSIONS}"
        )
    try:
        config_info = manifest["config"]
        config = FeatureConfig(
            resolution=int(config_info["resolution"]),
            region_family=region_family(config_info["region_family"]),
            include_mirrors=bool(config_info["include_mirrors"]),
            variance_threshold=float(config_info["variance_threshold"]),
            keep_full_frame=bool(config_info["keep_full_frame"]),
        )
        database = ImageDatabase(feature_config=config, name=manifest.get("name", ""))
        for entry in manifest["images"]:
            gray = arrays[entry["gray"]]
            if "rgb" in entry:
                image = GrayImage(
                    pixels=gray,
                    image_id=entry["id"],
                    category=entry["category"],
                    _rgb=arrays[entry["rgb"]],
                )
                database.add_image(image, entry["category"], image_id=entry["id"])
            else:
                database.add_image(gray, entry["category"], image_id=entry["id"])
        packed_info = manifest.get("packed")
        if packed_info is not None:
            entries = manifest["images"]
            order_key = packed_info.get("order")
            if order_key is not None:
                order = np.asarray(arrays[order_key], dtype=np.int64)
                if (
                    order.shape != (len(entries),)
                    or len(np.unique(order)) != len(entries)
                    or (len(entries) and not 0 <= order.min() <= order.max() < len(entries))
                ):
                    raise DatabaseError(
                        "snapshot packed corpus bag order is not a "
                        "permutation of the image list"
                    )
                entries = [entries[int(position)] for position in order]
            packed = PackedCorpus(
                instances=arrays[packed_info["instances"]],
                offsets=arrays[packed_info["offsets"]],
                image_ids=[entry["id"] for entry in entries],
                categories=[entry["category"] for entry in entries],
            )
            if packed.n_dims != config.n_dims:
                raise DatabaseError(
                    f"snapshot packed corpus has {packed.n_dims}-dim instances "
                    f"but the feature configuration produces {config.n_dims}"
                )
            adopt_index_payload(packed, packed_info.get("index"), arrays)
            adopt_ann_payload(packed, packed_info.get("ann"), arrays)
            database.adopt_packed(packed)
    except KeyError as exc:
        raise DatabaseError(f"snapshot manifest is missing key {exc}") from exc
    except (TypeError, ValueError) as exc:
        # e.g. "resolution": null, or "images" holding the wrong shape —
        # the loader's contract is DatabaseError, not a raw traceback.
        raise DatabaseError(f"snapshot manifest is malformed: {exc}") from exc
    return database


def save_database(database: ImageDatabase, path: str | Path) -> Path:
    """Write a snapshot; returns the path written.

    The snapshot is a single ``.npz`` with one gray array per image plus a
    JSON manifest entry (ids, categories, configuration).  When the database
    holds a cached packed corpus (it served at least one full ranking), the
    packed arrays are included so :func:`load_database` restores a warm view.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    manifest, arrays = database_payload(database)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_database(path: str | Path) -> ImageDatabase:
    """Read a snapshot back into a fresh :class:`ImageDatabase`.

    Raises:
        DatabaseError: on a missing file, malformed snapshot or unsupported
            format version.
    """
    path = Path(path)
    if not path.exists():
        raise DatabaseError(f"snapshot {path} does not exist")
    try:
        archive = np.load(path)
    except (OSError, EOFError, ValueError) as exc:
        raise DatabaseError(f"snapshot {path} is not a readable .npz archive: {exc}") from exc
    with archive as payload:
        try:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"snapshot {path} has no valid manifest: {exc}") from exc
        return database_from_payload(manifest, payload)
