"""Database snapshots: save/load an :class:`ImageDatabase` as ``.npz``.

A snapshot stores every image's pixels (gray plane and, when present, the
RGB plane), its id and category, plus the feature configuration fingerprint.
Features themselves are *not* stored — they are cheap to recompute relative
to their size and depend on the configuration anyway.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.database.store import ImageDatabase
from repro.errors import DatabaseError
from repro.imaging.features import FeatureConfig
from repro.imaging.image import GrayImage
from repro.imaging.regions import region_family

_FORMAT_VERSION = 1


def save_database(database: ImageDatabase, path: str | Path) -> Path:
    """Write a snapshot; returns the path written.

    The snapshot is a single ``.npz`` with one gray array per image plus a
    JSON manifest entry (ids, categories, configuration).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    config = database.feature_config
    manifest = {
        "version": _FORMAT_VERSION,
        "name": database.name,
        "images": [],
        "config": {
            "resolution": config.resolution,
            "region_family": config.region_family.name,
            "include_mirrors": config.include_mirrors,
            "variance_threshold": config.variance_threshold,
            "keep_full_frame": config.keep_full_frame,
        },
    }
    arrays: dict[str, np.ndarray] = {}
    for index, record in enumerate(database):
        gray_key = f"gray_{index:06d}"
        arrays[gray_key] = record.image.pixels
        entry = {"id": record.image_id, "category": record.category, "gray": gray_key}
        if record.image.rgb is not None:
            rgb_key = f"rgb_{index:06d}"
            arrays[rgb_key] = record.image.rgb
            entry["rgb"] = rgb_key
        manifest["images"].append(entry)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_database(path: str | Path) -> ImageDatabase:
    """Read a snapshot back into a fresh :class:`ImageDatabase`.

    Raises:
        DatabaseError: on a missing file or malformed snapshot.
    """
    path = Path(path)
    if not path.exists():
        raise DatabaseError(f"snapshot {path} does not exist")
    try:
        archive = np.load(path)
    except (OSError, EOFError, ValueError) as exc:
        raise DatabaseError(f"snapshot {path} is not a readable .npz archive: {exc}") from exc
    with archive as payload:
        try:
            manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"snapshot {path} has no valid manifest: {exc}") from exc
        if manifest.get("version") != _FORMAT_VERSION:
            raise DatabaseError(
                f"snapshot {path} has version {manifest.get('version')}, "
                f"expected {_FORMAT_VERSION}"
            )
        config_info = manifest["config"]
        config = FeatureConfig(
            resolution=int(config_info["resolution"]),
            region_family=region_family(config_info["region_family"]),
            include_mirrors=bool(config_info["include_mirrors"]),
            variance_threshold=float(config_info["variance_threshold"]),
            keep_full_frame=bool(config_info["keep_full_frame"]),
        )
        database = ImageDatabase(feature_config=config, name=manifest.get("name", ""))
        for entry in manifest["images"]:
            gray = payload[entry["gray"]]
            if "rgb" in entry:
                image = GrayImage(
                    pixels=gray,
                    image_id=entry["id"],
                    category=entry["category"],
                    _rgb=payload[entry["rgb"]],
                )
                database.add_image(image, entry["category"], image_id=entry["id"])
            else:
                database.add_image(gray, entry["category"], image_id=entry["id"])
    return database
