"""Image records: one stored image plus its lazily computed feature set.

A record owns the gray image, its ground-truth category and — once the store
has run bag generation — the cached :class:`~repro.imaging.features.FeatureSet`
whose instance matrix every query reuses.  Feature extraction is by far the
most expensive per-image step, so records memoise it per configuration
fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bags.generation import BagGenerator
from repro.errors import DatabaseError
from repro.imaging.features import FeatureSet
from repro.imaging.image import GrayImage


def config_fingerprint(generator: BagGenerator) -> tuple:
    """A hashable identity for a feature configuration.

    Two generators with the same fingerprint produce identical features, so
    cached feature sets can be reused across generator instances.
    """
    config = generator.config
    return (
        config.resolution,
        config.region_family.name,
        len(config.region_family),
        config.include_mirrors,
        round(config.variance_threshold, 12),
        config.keep_full_frame,
    )


@dataclass
class ImageRecord:
    """One image in the database.

    Attributes:
        image_id: unique id assigned by the store.
        image: the validated gray image (with optional RGB payload).
        category: ground-truth label.
    """

    image_id: str
    image: GrayImage
    category: str
    _features: FeatureSet | None = field(default=None, repr=False)
    _features_key: tuple | None = field(default=None, repr=False)

    def features(self, generator: BagGenerator) -> FeatureSet:
        """The record's feature set under ``generator``, computed once.

        Raises:
            DatabaseError: if extraction fails for this image.
        """
        key = config_fingerprint(generator)
        if self._features is None or self._features_key != key:
            try:
                self._features = generator.features_for(self.image)
            except Exception as exc:
                raise DatabaseError(
                    f"feature extraction failed for image {self.image_id!r}: {exc}"
                ) from exc
            self._features_key = key
        return self._features

    def instances(self, generator: BagGenerator) -> np.ndarray:
        """The instance matrix (rows = instances) under ``generator``."""
        return self.features(generator).vectors

    def invalidate_features(self) -> None:
        """Drop the cached feature set (e.g. after a config change)."""
        self._features = None
        self._features_key = None
