"""The batched multi-start training engine.

Multi-restart Diverse Density training hill-climbs from every instance of
every positive bag (Sections 2.2.2 and 4.3).  The sequential path runs one
solver per restart; this module instead steps *all* restarts in lockstep —
each descent step evaluates the batched objective once, producing one
``(R, n_instances)`` distance tensor for the whole restart population —
with three per-restart masks:

* **active** — restarts still descending;
* **converged** — restarts whose stopping criterion fired (they keep their
  final point and drop out of subsequent evaluations);
* **pruned** — restarts frozen early because their current value is
  dominated by the incumbent best by more than a configurable margin
  (``prune_margin``).  This implements the Section 4.3 restart thinning
  *dynamically*: instead of choosing a start subset up front, hopeless
  restarts are abandoned as soon as the evidence arrives.

Two solvers mirror the sequential ones step for step:

* :class:`BatchedArmijoDescent` — lockstep
  :class:`~repro.core.optimizer.ArmijoGradientDescent` (the unconstrained
  schemes: original / identical / alpha-hack);
* :class:`BatchedProjectedDescent` — lockstep
  :class:`~repro.core.projection.ProjectedGradientDescent` (the inequality
  scheme).

Because the shared objective and all scalar reductions are restart-slice
stable (see :mod:`repro.core.objective`), a batched run is **bit-identical**
per restart to running the same solver on each start alone — batching is a
pure execution-strategy change, which the engine equivalence suite asserts.
:func:`run_batched_scheme` maps each paper weight scheme onto its batched
solver; schemes this module cannot batch without changing their results
(custom ``WeightScheme`` subclasses, and schemes configured with
quasi-Newton backends such as L-BFGS or SLSQP) return ``None`` and the
trainer falls back to the sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.objective import BatchedDiverseDensityObjective
from repro.core.optimizer import row_dots
from repro.core.projection import project_weights_batch
from repro.core.schemes import (
    AlphaHackScheme,
    IdenticalWeightsScheme,
    InequalityScheme,
    OriginalDDScheme,
    WeightScheme,
)
from repro.errors import OptimizationError

#: Batched ``value_and_grad`` over ``(K, m)`` row subsets of the restarts.
BatchedValueAndGrad = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]
#: Batched ``value_and_grad`` over split ``(t, w)`` blocks.
BatchedStackedValueAndGrad = Callable[
    [np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]
]


@dataclass(frozen=True)
class BatchedOutcome:
    """Per-restart results of one lockstep minimisation.

    Attributes:
        t: ``(R, d)`` final concept points.
        w: ``(R, d)`` final effective weights.
        values: ``(R,)`` objective values at the final points.
        n_iterations: ``(R,)`` iterations each restart consumed.
        converged: ``(R,)`` whether each restart met its stopping criterion.
        pruned: ``(R,)`` whether each restart was frozen by the prune margin
            before finishing (pruned restarts report ``converged = False``).
    """

    t: np.ndarray
    w: np.ndarray
    values: np.ndarray
    n_iterations: np.ndarray
    converged: np.ndarray
    pruned: np.ndarray


class RestartMasks:
    """Bookkeeping shared by both lockstep solvers."""

    def __init__(self, n_restarts: int, max_iterations: int) -> None:
        self.active = np.ones(n_restarts, dtype=bool)
        self.converged = np.zeros(n_restarts, dtype=bool)
        self.pruned = np.zeros(n_restarts, dtype=bool)
        self.n_iterations = np.full(n_restarts, max_iterations, dtype=np.int64)

    def finish(self, rows: np.ndarray, iteration: int, converged: bool) -> None:
        """Retire ``rows`` at ``iteration`` with the given convergence flag."""
        self.converged[rows] = converged
        self.n_iterations[rows] = iteration
        self.active[rows] = False

    def prune(self, values: np.ndarray, iteration: int, margin: float | None) -> None:
        """Freeze active restarts dominated by the incumbent best.

        The incumbent is the best value over *all* restarts — finished ones
        included — so a restart that converged early still thins the rest
        of the population.
        """
        if margin is None or not self.active.any():
            return
        incumbent = values.min()
        doomed = self.active & (values > incumbent + margin)
        if doomed.any():
            rows = np.flatnonzero(doomed)
            self.pruned[rows] = True
            self.finish(rows, iteration, converged=False)


def _check_start_values(values: np.ndarray) -> None:
    if not np.all(np.isfinite(values)):
        bad = int(np.flatnonzero(~np.isfinite(values))[0])
        raise OptimizationError(
            f"objective is non-finite at the starting point (restart {bad})"
        )


class BatchedArmijoDescent:
    """Lockstep steepest descent with backtracking line search.

    Mirrors :class:`~repro.core.optimizer.ArmijoGradientDescent` exactly per
    restart — same per-restart step-size memory, same acceptance tests in
    the same order — while evaluating all still-searching restarts through
    one batched objective call per backtrack level.

    Args:
        max_iterations: hard cap on outer iterations.
        gradient_tolerance: stop a restart when ``||grad||_inf`` falls below
            this.
        initial_step: first step size tried at each iteration.
        backtrack_factor: multiplicative step reduction on rejection.
        armijo_c: sufficient-decrease constant in ``(0, 1)``.
        max_backtracks: line-search evaluations per iteration before a
            restart gives up on its direction (treated as convergence).
    """

    def __init__(
        self,
        max_iterations: int = 200,
        gradient_tolerance: float = 1e-5,
        initial_step: float = 1.0,
        backtrack_factor: float = 0.5,
        armijo_c: float = 1e-4,
        max_backtracks: int = 40,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 < backtrack_factor < 1:
            raise OptimizationError(f"backtrack_factor must be in (0, 1), got {backtrack_factor}")
        if not 0 < armijo_c < 1:
            raise OptimizationError(f"armijo_c must be in (0, 1), got {armijo_c}")
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance
        self._step0 = initial_step
        self._rho = backtrack_factor
        self._c = armijo_c
        self._max_backtracks = max_backtracks

    def minimize(
        self,
        fun: BatchedValueAndGrad,
        z0: np.ndarray,
        prune_margin: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, RestartMasks]:
        """Minimise all rows of ``z0``; returns ``(z, values, masks)``.

        Raises:
            OptimizationError: if any restart's objective is non-finite at
                its starting point.
        """
        z = np.array(z0, dtype=np.float64)
        n_restarts = z.shape[0]
        values, grads = fun(z)
        _check_start_values(values)
        step = np.full(n_restarts, self._step0)
        masks = RestartMasks(n_restarts, self._max_iterations)

        for iteration in range(self._max_iterations):
            if not masks.active.any():
                break
            masks.prune(values, iteration, prune_margin)
            rows = np.flatnonzero(masks.active)
            if rows.size == 0:
                break
            grad_norm = np.abs(grads[rows]).max(axis=1)
            done = grad_norm <= self._gtol
            if done.any():
                masks.finish(rows[done], iteration, converged=True)
                rows = rows[~done]
                if rows.size == 0:
                    continue
            direction = -grads[rows]
            slope = row_dots(grads[rows], direction)  # = -||grad||^2 < 0
            trial = step[rows].copy()
            pending = np.arange(rows.size)
            for _ in range(self._max_backtracks):
                subset = rows[pending]
                candidate = z[subset] + trial[pending, None] * direction[pending]
                cand_values, cand_grads = fun(candidate)
                accept = np.isfinite(cand_values) & (
                    cand_values
                    <= values[subset] + self._c * trial[pending] * slope[pending]
                )
                if accept.any():
                    hit = subset[accept]
                    z[hit] = candidate[accept]
                    values[hit] = cand_values[accept]
                    grads[hit] = cand_grads[accept]
                    # Allow the step to grow back so a single hard iteration
                    # does not permanently shrink progress.
                    step[hit] = np.minimum(
                        self._step0, trial[pending[accept]] / self._rho
                    )
                pending = pending[~accept]
                if pending.size == 0:
                    break
                trial[pending] *= self._rho
            if pending.size:
                # No representable step improves these restarts: local optima
                # to machine precision for this method.
                masks.finish(rows[pending], iteration, converged=True)
        return z, values, masks


class BatchedProjectedDescent:
    """Lockstep projected gradient over ``(t, w)`` with ``w`` in ``C(beta)``.

    Mirrors :class:`~repro.core.projection.ProjectedGradientDescent` exactly
    per restart: each iteration resets the step, backtracks on the
    projection arc, and stops a restart when its projected step no longer
    moves.

    Args:
        beta: the weight-sum constraint level in ``[0, 1]``.
        max_iterations: hard cap on outer iterations.
        gradient_tolerance: a restart stops once its projected move has norm
            at most this.
        initial_step: step size restored at each iteration.
        backtrack_factor: multiplicative step reduction on rejection.
        max_backtracks: candidate evaluations per iteration before a restart
            is declared stationary.
    """

    def __init__(
        self,
        beta: float,
        max_iterations: int = 200,
        gradient_tolerance: float = 1e-5,
        initial_step: float = 0.5,
        backtrack_factor: float = 0.5,
        max_backtracks: int = 40,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise OptimizationError(f"beta must lie in [0, 1], got {beta}")
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        self._beta = beta
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance
        self._step0 = initial_step
        self._rho = backtrack_factor
        self._max_backtracks = max_backtracks

    def minimize(
        self,
        fun: BatchedStackedValueAndGrad,
        t0: np.ndarray,
        w0: np.ndarray,
        prune_margin: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, RestartMasks]:
        """Minimise all restarts; returns ``(t, w, values, masks)``.

        ``w0`` rows are projected to feasibility first.

        Raises:
            OptimizationError: if any restart's objective is non-finite at
                its (projected) starting point.
        """
        t = np.array(t0, dtype=np.float64)
        w = project_weights_batch(np.asarray(w0, dtype=np.float64), self._beta)
        n_restarts = t.shape[0]
        values, grad_t, grad_w = fun(t, w)
        _check_start_values(values)
        masks = RestartMasks(n_restarts, self._max_iterations)

        for iteration in range(self._max_iterations):
            if not masks.active.any():
                break
            masks.prune(values, iteration, prune_margin)
            rows = np.flatnonzero(masks.active)
            if rows.size == 0:
                break
            step = np.full(rows.size, self._step0)
            pending = np.arange(rows.size)
            for _ in range(self._max_backtracks):
                subset = rows[pending]
                cand_t = t[subset] - step[pending, None] * grad_t[subset]
                cand_w = project_weights_batch(
                    w[subset] - step[pending, None] * grad_w[subset], self._beta
                )
                move_t = cand_t - t[subset]
                move_w = cand_w - w[subset]
                move_norm2 = row_dots(move_t, move_t) + row_dots(move_w, move_w)
                still = move_norm2 <= self._gtol**2
                if still.any():
                    # The projected step no longer moves: stationary points
                    # of the projected dynamics.
                    masks.finish(subset[still], iteration, converged=True)
                    keep = ~still
                    pending = pending[keep]
                    cand_t, cand_w = cand_t[keep], cand_w[keep]
                    move_norm2 = move_norm2[keep]
                    if pending.size == 0:
                        break
                    subset = rows[pending]
                cand_values, cand_gt, cand_gw = fun(cand_t, cand_w)
                # Armijo on the projection arc: require decrease proportional
                # to the squared move length.
                accept = np.isfinite(cand_values) & (
                    cand_values
                    <= values[subset] - 1e-4 / step[pending] * move_norm2
                )
                if accept.any():
                    hit = subset[accept]
                    t[hit] = cand_t[accept]
                    w[hit] = cand_w[accept]
                    values[hit] = cand_values[accept]
                    grad_t[hit] = cand_gt[accept]
                    grad_w[hit] = cand_gw[accept]
                pending = pending[~accept]
                if pending.size == 0:
                    break
                step[pending] *= self._rho
            if pending.size:
                masks.finish(rows[pending], iteration, converged=True)
        return t, w, values, masks


def run_batched_scheme(
    objective: BatchedDiverseDensityObjective,
    scheme: WeightScheme,
    t0: np.ndarray,
    w0: np.ndarray,
    prune_margin: float | None = None,
) -> BatchedOutcome | None:
    """Optimise all restarts under ``scheme`` with the matching lockstep solver.

    Args:
        objective: the shared batched objective.
        scheme: one of the four paper weight schemes, on an Armijo-family
            solver backend (``armijo`` for the unconstrained schemes,
            ``projected`` for the inequality scheme) — exactly the solvers
            the lockstep engine replicates bit for bit.
        t0: ``(R, d)`` restart concept points.
        w0: ``(R, d)`` starting effective weights (ones unless warm-started).
        prune_margin: freeze restarts whose value trails the incumbent best
            by more than this; ``None`` disables pruning.

    Returns:
        A :class:`BatchedOutcome`, or ``None`` for a scheme this engine
        cannot batch *without changing its results* — custom schemes, and
        schemes configured with quasi-Newton backends (L-BFGS / SLSQP),
        whose trajectories the Armijo-family solvers would silently
        replace.  The trainer then falls back to the sequential per-start
        path, so an engine switch never changes training outcomes.
    """
    t0 = np.atleast_2d(np.asarray(t0, dtype=np.float64))
    w0 = np.atleast_2d(np.asarray(w0, dtype=np.float64))
    n_dims = objective.n_dims

    if isinstance(scheme, InequalityScheme):
        if scheme.backend != "projected":
            return None
        solver = BatchedProjectedDescent(
            scheme.beta, scheme.max_iterations, scheme.gradient_tolerance
        )
        t, w, values, masks = solver.minimize(
            objective.value_and_grad, t0, w0, prune_margin
        )
        return BatchedOutcome(
            t=t,
            w=w,
            values=values,
            n_iterations=masks.n_iterations,
            converged=masks.converged,
            pruned=masks.pruned,
        )

    if isinstance(scheme, IdenticalWeightsScheme):
        if scheme.backend != "armijo":
            return None

        def fun_identical(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            values, grad_t, _ = objective.value_and_grad(z, np.ones_like(z))
            return values, grad_t

        solver = BatchedArmijoDescent(scheme.max_iterations, scheme.gradient_tolerance)
        z, values, masks = solver.minimize(fun_identical, t0, prune_margin)
        return BatchedOutcome(
            t=z,
            w=np.ones_like(z),
            values=values,
            n_iterations=masks.n_iterations,
            converged=masks.converged,
            pruned=masks.pruned,
        )

    if isinstance(scheme, (OriginalDDScheme, AlphaHackScheme)):
        if scheme.backend != "armijo":
            return None
        alpha = scheme.alpha if isinstance(scheme, AlphaHackScheme) else 1.0

        def fun_squared(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            values, grad_t, grad_s = objective.value_and_grad_squared(
                z[:, :n_dims], z[:, n_dims:], alpha=alpha
            )
            return values, np.concatenate([grad_t, grad_s], axis=1)

        z0 = np.concatenate([t0, np.sqrt(w0)], axis=1)
        solver = BatchedArmijoDescent(scheme.max_iterations, scheme.gradient_tolerance)
        z, values, masks = solver.minimize(fun_squared, z0, prune_margin)
        s = z[:, n_dims:]
        return BatchedOutcome(
            t=z[:, :n_dims],
            w=s * s,
            values=values,
            n_iterations=masks.n_iterations,
            converged=masks.converged,
            pruned=masks.pruned,
        )

    return None
