"""The Diverse Density core: objective, optimisers, schemes, retrieval.

* :mod:`repro.core.objective` — noisy-or negative log Diverse Density and its
  analytic gradients (Section 2.2).
* :mod:`repro.core.optimizer` — unconstrained minimisers (bespoke Armijo
  gradient descent and an L-BFGS backend).
* :mod:`repro.core.projection` — exact projection onto the weight constraint
  set and projected-gradient / SLSQP constrained minimisers (Section 3.6.3).
* :mod:`repro.core.schemes` — the four weight-control schemes of Section 3.6.
* :mod:`repro.core.engine` — the lockstep batched multi-start engine with
  per-restart convergence masks and dynamic restart pruning.
* :mod:`repro.core.diverse_density` — multi-restart training facade with the
  subset-of-positive-bags speed-up of Section 4.3 and the
  batched/sequential engine switch.
* :mod:`repro.core.cache` — the fingerprint-keyed trained-concept cache.
* :mod:`repro.core.concept` — the learned concept ``(t, w)`` and bag scoring.
* :mod:`repro.core.retrieval` — min-distance ranking over an image database.
* :mod:`repro.core.sharding` — the sharded bound-pruned exact top-k rank
  index (per-bag envelopes, pruning threshold, thread fan-out).
* :mod:`repro.core.feedback` — the simulated relevance-feedback loop of
  Section 4.1.
"""

from repro.core.cache import CacheStats, ConceptCache
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import (
    DiverseDensityTrainer,
    ExtraStart,
    StartRecord,
    TrainerConfig,
    TrainingResult,
)
from repro.core.engine import BatchedArmijoDescent, BatchedProjectedDescent
from repro.core.feedback import FeedbackLoop, FeedbackRound
from repro.core.objective import BatchedDiverseDensityObjective, DiverseDensityObjective
from repro.core.retrieval import (
    AUTO_SHARD_MIN_BAGS,
    PackedCorpus,
    RankedImage,
    Ranker,
    RetrievalEngine,
    RetrievalResult,
    packed_view,
    rank_by_loop,
)
from repro.core.schemes import WeightScheme, make_scheme
from repro.core.sharding import ShardIndex, ShardedRanker

__all__ = [
    "CacheStats",
    "ConceptCache",
    "LearnedConcept",
    "DiverseDensityTrainer",
    "ExtraStart",
    "StartRecord",
    "TrainerConfig",
    "TrainingResult",
    "BatchedArmijoDescent",
    "BatchedProjectedDescent",
    "FeedbackLoop",
    "FeedbackRound",
    "BatchedDiverseDensityObjective",
    "DiverseDensityObjective",
    "AUTO_SHARD_MIN_BAGS",
    "PackedCorpus",
    "RankedImage",
    "Ranker",
    "RetrievalEngine",
    "RetrievalResult",
    "ShardIndex",
    "ShardedRanker",
    "packed_view",
    "rank_by_loop",
    "WeightScheme",
    "make_scheme",
]
