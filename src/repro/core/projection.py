"""Constrained weight optimisation (Section 3.6.3).

The inequality-constraint scheme restricts the weights to the set

    C(beta) = { w in R^n : 0 <= w_k <= 1,  sum_k w_k >= beta * n }.

The thesis solved this with CFSQP, a proprietary feasible-SQP C solver.  We
substitute two open equivalents (see DESIGN.md):

* :class:`ProjectedGradientDescent` — projected gradient with backtracking on
  the projection arc.  The Euclidean projection onto ``C(beta)`` is computed
  *exactly*: clip to the box; if the sum constraint is violated the optimum
  has the form ``w = clip(y + lam, 0, 1)`` for the unique ``lam >= 0`` with
  ``sum(w) = beta * n`` (KKT), found by bisection on the monotone sum.
* :class:`SLSQPBackend` — scipy's sequential least-squares QP, the closest
  published relative of CFSQP.

Both optimise jointly over ``(t, w)`` where ``t`` is unconstrained and ``w``
lives in ``C(beta)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize as scipy_optimize

from repro.core.optimizer import row_dots
from repro.errors import OptimizationError

#: ``value_and_grad`` over the stacked vector ``z = [t, w]``.
StackedValueAndGrad = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray, np.ndarray]]

_BISECT_ITERATIONS = 64


def project_weights_batch(weights: np.ndarray, beta: float) -> np.ndarray:
    """Row-wise exact Euclidean projection of ``(R, n)`` weights onto ``C(beta)``.

    Every row is projected independently with the same clip-then-bisect
    scheme as :func:`project_weights`; the arithmetic per row is identical
    regardless of which other rows share the batch (elementwise ops plus
    per-row sums only), which the batched training engine relies on.

    Args:
        weights: ``(R, n)`` matrix of arbitrary real rows.
        beta: the constraint level in ``[0, 1]``; each projected row sums to
            at least ``beta * n``.

    Returns:
        ``(R, n)`` matrix whose rows are the unique closest points of
        ``C(beta)``.

    Raises:
        OptimizationError: if ``beta`` is outside ``[0, 1]`` or the rows are
            empty.
    """
    if not 0.0 <= beta <= 1.0:
        raise OptimizationError(f"beta must lie in [0, 1], got {beta}")
    y = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    n = y.shape[1]
    if n == 0:
        raise OptimizationError("cannot project an empty weight vector")
    target = beta * n
    clipped = np.clip(y, 0.0, 1.0)
    # Sum constraint active: w = clip(y + lam, 0, 1), sum(w) = target.
    # sum(clip(y + lam)) is continuous and non-decreasing in lam, reaching n
    # once lam >= 1 - min(y); bisect on [0, 1 - min(y)] per needy row.
    needy = clipped.sum(axis=1) < target - 1e-12
    if not needy.any():
        return clipped
    rows = y[needy]
    low = np.zeros(rows.shape[0])
    high = 1.0 - rows.min(axis=1)
    for _ in range(_BISECT_ITERATIONS):
        mid = 0.5 * (low + high)
        below = np.clip(rows + mid[:, None], 0.0, 1.0).sum(axis=1) < target
        low = np.where(below, mid, low)
        high = np.where(below, high, mid)
    clipped[needy] = np.clip(rows + high[:, None], 0.0, 1.0)
    return clipped


def project_weights(weights: np.ndarray, beta: float) -> np.ndarray:
    """Exact Euclidean projection of ``weights`` onto ``C(beta)``.

    Args:
        weights: arbitrary real vector.
        beta: the constraint level in ``[0, 1]``; the sum of the projected
            weights is at least ``beta * n``.

    Returns:
        The unique closest point of ``C(beta)``.

    Raises:
        OptimizationError: if ``beta`` is outside ``[0, 1]``.
    """
    y = np.asarray(weights, dtype=np.float64).reshape(-1)
    if y.size == 0:
        raise OptimizationError("cannot project an empty weight vector")
    return project_weights_batch(y.reshape(1, -1), beta)[0]


def is_feasible(weights: np.ndarray, beta: float, tolerance: float = 1e-9) -> bool:
    """Whether ``weights`` lies in ``C(beta)`` up to ``tolerance``."""
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.size == 0:
        return False
    inside_box = bool(np.all(w >= -tolerance) and np.all(w <= 1.0 + tolerance))
    return inside_box and float(w.sum()) >= beta * w.size - tolerance


@dataclass(frozen=True)
class ConstrainedOutcome:
    """Result of one constrained minimisation over ``(t, w)``."""

    t: np.ndarray
    w: np.ndarray
    value: float
    n_iterations: int
    converged: bool


class ProjectedGradientDescent:
    """Projected gradient over ``(t, w)`` with ``w`` confined to ``C(beta)``.

    Each iteration takes a gradient step on the stacked vector and projects
    the weight block back onto the constraint set; the step size backtracks
    until the projected point satisfies an Armijo-style decrease.
    """

    def __init__(
        self,
        beta: float,
        max_iterations: int = 200,
        gradient_tolerance: float = 1e-5,
        initial_step: float = 0.5,
        backtrack_factor: float = 0.5,
        max_backtracks: int = 40,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise OptimizationError(f"beta must lie in [0, 1], got {beta}")
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        self._beta = beta
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance
        self._step0 = initial_step
        self._rho = backtrack_factor
        self._max_backtracks = max_backtracks

    @property
    def beta(self) -> float:
        """The constraint level."""
        return self._beta

    def minimize(
        self, fun: StackedValueAndGrad, t0: np.ndarray, w0: np.ndarray
    ) -> ConstrainedOutcome:
        """Minimise from ``(t0, w0)``; ``w0`` is projected to feasibility first."""
        t = np.asarray(t0, dtype=np.float64).copy()
        w = project_weights(np.asarray(w0, dtype=np.float64), self._beta)
        value, grad_t, grad_w = fun(t, w)
        if not np.isfinite(value):
            raise OptimizationError("objective is non-finite at the starting point")

        for iteration in range(self._max_iterations):
            step = self._step0
            accepted = False
            for _ in range(self._max_backtracks):
                cand_t = t - step * grad_t
                cand_w = project_weights(w - step * grad_w, self._beta)
                move_t = (cand_t - t).reshape(1, -1)
                move_w = (cand_w - w).reshape(1, -1)
                move_norm2 = float(
                    row_dots(move_t, move_t)[0] + row_dots(move_w, move_w)[0]
                )
                if move_norm2 <= self._gtol**2:
                    # The projected step no longer moves: stationary point of
                    # the projected dynamics.
                    return ConstrainedOutcome(t, w, value, iteration, converged=True)
                cand_value, cand_gt, cand_gw = fun(cand_t, cand_w)
                # Armijo on the projection arc: require decrease proportional
                # to the squared move length.
                if np.isfinite(cand_value) and cand_value <= value - 1e-4 / step * move_norm2:
                    accepted = True
                    break
                step *= self._rho
            if not accepted:
                return ConstrainedOutcome(t, w, value, iteration, converged=True)
            t, w, value = cand_t, cand_w, cand_value
            grad_t, grad_w = cand_gt, cand_gw
        return ConstrainedOutcome(t, w, value, self._max_iterations, converged=False)


class SLSQPBackend:
    """Constrained minimisation with scipy SLSQP (the CFSQP stand-in).

    Optimises the stacked vector ``z = [t, w]`` with bounds ``(-inf, inf)``
    on the ``t`` block, ``[0, 1]`` on the ``w`` block and the linear
    inequality ``sum(w) >= beta * n``.
    """

    def __init__(self, beta: float, max_iterations: int = 150) -> None:
        if not 0.0 <= beta <= 1.0:
            raise OptimizationError(f"beta must lie in [0, 1], got {beta}")
        self._beta = beta
        self._max_iterations = max_iterations

    @property
    def beta(self) -> float:
        """The constraint level."""
        return self._beta

    def minimize(
        self, fun: StackedValueAndGrad, t0: np.ndarray, w0: np.ndarray
    ) -> ConstrainedOutcome:
        """Minimise from ``(t0, w0)``; see :class:`ConstrainedOutcome`."""
        t0 = np.asarray(t0, dtype=np.float64).reshape(-1)
        w0 = project_weights(np.asarray(w0, dtype=np.float64), self._beta)
        n_t, n_w = t0.size, w0.size
        target = self._beta * n_w

        def stacked(z: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad_t, grad_w = fun(z[:n_t], z[n_t:])
            return value, np.concatenate([grad_t, grad_w])

        sum_jacobian = np.concatenate([np.zeros(n_t), np.ones(n_w)])
        result = scipy_optimize.minimize(
            stacked,
            np.concatenate([t0, w0]),
            jac=True,
            method="SLSQP",
            bounds=[(None, None)] * n_t + [(0.0, 1.0)] * n_w,
            constraints=[
                {
                    "type": "ineq",
                    "fun": lambda z: float(z[n_t:].sum() - target),
                    "jac": lambda z: sum_jacobian,
                }
            ],
            options={"maxiter": self._max_iterations, "ftol": 1e-9},
        )
        t = np.asarray(result.x[:n_t], dtype=np.float64)
        w = project_weights(np.asarray(result.x[n_t:], dtype=np.float64), self._beta)
        if not (np.all(np.isfinite(t)) and np.all(np.isfinite(w))):
            raise OptimizationError("SLSQP returned a non-finite point")
        value, _, _ = fun(t, w)
        return ConstrainedOutcome(
            t=t,
            w=w,
            value=float(value),
            n_iterations=int(result.nit),
            converged=bool(result.success),
        )
