"""Multi-restart Diverse Density training (Sections 2.2.2 and 4.3).

Finding the global maximum of Diverse Density is hard, so the original
algorithm hill-climbs from *every instance of every positive bag* and keeps
the best local optimum.  Section 4.3 shows that starting from the instances
of only a subset of the positive bags (2 or 3 out of 5) loses little
performance while cutting training time; :class:`TrainerConfig` exposes both
that subset size and an optional per-bag instance stride for further
thinning.

Two execution engines run the restart population:

* ``engine="batched"`` (default) — the lockstep engine of
  :mod:`repro.core.engine`: all restarts descend together, one batched
  objective evaluation per step, with converged restarts masked out and —
  when ``restart_prune_margin`` is set — hopeless restarts frozen as soon
  as they trail the incumbent best by more than the margin (the Section
  4.3 thinning applied dynamically rather than only by start subset).
* ``engine="sequential"`` — one solver per restart, the historical
  per-start path; kept as the equivalence reference (on Armijo-family
  scheme backends the two engines are bit-identical per restart) and as
  the fallback for schemes the batched engine cannot drive without
  changing their results: custom schemes and quasi-Newton backends
  (L-BFGS / SLSQP).  An engine switch therefore never changes training
  outcomes; ``concept.metadata["engine"]`` records which engine actually
  ran.

:class:`DiverseDensityTrainer` wires together the objective, a weight scheme
and the restart strategy, and returns a :class:`TrainingResult` carrying the
best :class:`~repro.core.concept.LearnedConcept` plus per-start diagnostics
(including each restart's pruning status).  :meth:`DiverseDensityTrainer.train`
also accepts *extra starts* — arbitrary ``(t, w)`` seeds appended to the
restart population, used by the feedback loop to warm-start each round at
the previous round's concept.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bags.bag import BagSet
from repro.core.concept import LearnedConcept
from repro.core.engine import run_batched_scheme
from repro.core.objective import DiverseDensityObjective
from repro.core.schemes import SchemeResult, WeightScheme, make_scheme
from repro.errors import TrainingError

#: Valid :attr:`TrainerConfig.engine` values.
ENGINES = ("batched", "sequential")


@dataclass(frozen=True)
class TrainerConfig:
    """Configuration of the multi-restart trainer.

    Attributes:
        scheme: a :class:`WeightScheme` instance or a scheme name for
            :func:`~repro.core.schemes.make_scheme`.
        beta: constraint level (used when ``scheme`` is ``"inequality"``).
        alpha: damping constant (used when ``scheme`` is ``"alpha_hack"``).
        max_iterations: per-start solver iteration cap.
        start_bag_subset: number of positive bags whose instances seed
            restarts; ``None`` uses all (the original algorithm).  The
            Section 4.3 speed-up corresponds to 2 or 3 out of 5.
        start_instance_stride: take every ``k``-th instance of each chosen
            start bag (1 keeps all).
        seed: RNG seed for the start-bag subset choice.
        engine: ``"batched"`` (lockstep multi-start engine, the default) or
            ``"sequential"`` (one solver per restart).
        restart_prune_margin: batched engine only — freeze a restart as soon
            as its current value trails the incumbent best by more than this
            margin; ``None`` disables pruning (and is required for exact
            engine equivalence).
    """

    scheme: WeightScheme | str = "inequality"
    beta: float = 0.5
    alpha: float = 50.0
    max_iterations: int = 100
    start_bag_subset: int | None = None
    start_instance_stride: int = 1
    seed: int = 0
    engine: str = "batched"
    restart_prune_margin: float | None = None

    def __post_init__(self) -> None:
        if self.start_bag_subset is not None and self.start_bag_subset < 1:
            raise TrainingError(
                f"start_bag_subset must be >= 1 or None, got {self.start_bag_subset}"
            )
        if self.start_instance_stride < 1:
            raise TrainingError(
                f"start_instance_stride must be >= 1, got {self.start_instance_stride}"
            )
        if self.engine not in ENGINES:
            raise TrainingError(
                f"unknown training engine {self.engine!r}; known: {', '.join(ENGINES)}"
            )
        if self.restart_prune_margin is not None and self.restart_prune_margin < 0:
            raise TrainingError(
                f"restart_prune_margin must be >= 0 or None, got {self.restart_prune_margin}"
            )

    def resolve_scheme(self) -> WeightScheme:
        """Return the configured scheme object (building it if named)."""
        if isinstance(self.scheme, WeightScheme):
            return self.scheme
        return make_scheme(
            self.scheme,
            beta=self.beta,
            alpha=self.alpha,
            max_iterations=self.max_iterations,
        )

    def fingerprint(self) -> str:
        """Stable identity string covering everything that shapes a concept.

        Two configurations with equal fingerprints produce bit-identical
        training results on equal bag sets, which is what the
        :class:`~repro.core.cache.ConceptCache` keys on.
        """
        scheme = self.resolve_scheme()
        return "|".join(
            [
                "dd",
                f"scheme={scheme.fingerprint()}",
                f"subset={self.start_bag_subset}",
                f"stride={self.start_instance_stride}",
                f"seed={self.seed}",
                f"engine={self.engine}",
                f"prune={self.restart_prune_margin}",
            ]
        )


@dataclass(frozen=True)
class ExtraStart:
    """One additional restart seed appended to the positive-instance starts.

    Attributes:
        t: the starting concept point.
        w: optional starting effective weights (all ones when ``None``).
        label: recorded as the start's ``bag_id`` in the diagnostics.
    """

    t: np.ndarray
    w: np.ndarray | None = None
    label: str = "warm-start"


@dataclass(frozen=True)
class StartRecord:
    """Diagnostics for one restart.

    Attributes:
        bag_id: the positive bag (or extra-start label) that seeded it.
        instance_index: index of the seeding instance (-1 for extra starts).
        value: final NLL reached (the value at freeze time when pruned).
        n_iterations: solver iterations consumed.
        converged: whether the solver's stopping criterion was met.
        pruned: whether the batched engine froze this restart early because
            it trailed the incumbent best by more than the prune margin.
    """

    bag_id: str
    instance_index: int
    value: float
    n_iterations: int
    converged: bool
    pruned: bool = False


@dataclass(frozen=True)
class TrainingResult:
    """Everything the trainer learned.

    Attributes:
        concept: the best ``(t, w)`` found across restarts.
        starts: per-restart diagnostics, in execution order.
        n_starts: number of restarts executed.
        elapsed_seconds: wall-clock training time.
        n_starts_pruned: restarts frozen early by the prune margin.
    """

    concept: LearnedConcept
    starts: tuple[StartRecord, ...] = field(default=())
    n_starts: int = 0
    elapsed_seconds: float = 0.0
    n_starts_pruned: int = 0

    @property
    def wall_time_s(self) -> float:
        """Wall-clock training time in seconds (alias of ``elapsed_seconds``)."""
        return self.elapsed_seconds

    @property
    def best_start(self) -> StartRecord:
        """The restart that produced the best (lowest-NLL) concept."""
        if not self.starts:
            raise TrainingError("training result carries no start records")
        return min(self.starts, key=lambda record: record.value)


class DiverseDensityTrainer:
    """Multi-restart Diverse Density maximiser.

    Usage::

        trainer = DiverseDensityTrainer(TrainerConfig(scheme="inequality", beta=0.5))
        result = trainer.train(bag_set)
        concept = result.concept
    """

    def __init__(self, config: TrainerConfig | None = None) -> None:
        self._config = config or TrainerConfig()
        self._scheme = self._config.resolve_scheme()

    @property
    def config(self) -> TrainerConfig:
        """The trainer configuration."""
        return self._config

    @property
    def scheme(self) -> WeightScheme:
        """The resolved weight scheme."""
        return self._scheme

    @property
    def fingerprint(self) -> str:
        """Concept-cache identity of this trainer (see ``TrainerConfig``)."""
        return self._config.fingerprint()

    def train(
        self, bag_set: BagSet, extra_starts: Sequence[ExtraStart] = ()
    ) -> TrainingResult:
        """Run all restarts on ``bag_set`` and keep the best concept.

        Args:
            bag_set: the labelled example bags.
            extra_starts: additional ``(t, w)`` seeds appended after the
                positive-instance restarts (e.g. a previous round's concept
                for warm-starting).

        Raises:
            BagError: if the set has no positive bag.
            TrainingError: if no restart produced a finite optimum.
        """
        started_at = time.perf_counter()
        objective = DiverseDensityObjective(bag_set)
        starts = self._select_starts(bag_set, extra_starts)

        records: list[StartRecord] | None = None
        best: SchemeResult | None = None
        engine_used = "sequential"
        if self._config.engine == "batched":
            records, best = self._train_batched(objective, starts)
            if records is not None:
                engine_used = "batched"
        if records is None:
            # Sequential engine, or a scheme the batched engine cannot
            # drive without changing its results (custom schemes,
            # quasi-Newton backends).
            records, best = self._train_sequential(objective, starts)

        if best is None:
            raise TrainingError("no restart produced a finite Diverse Density optimum")

        n_pruned = sum(1 for record in records if record.pruned)
        elapsed = time.perf_counter() - started_at
        concept = LearnedConcept(
            t=best.t,
            w=best.w,
            nll=best.value,
            scheme=self._scheme.describe(),
            metadata={
                "n_starts": len(records),
                "n_starts_pruned": n_pruned,
                "engine": engine_used,
                "elapsed_seconds": elapsed,
                "n_positive_bags": bag_set.n_positive,
                "n_negative_bags": bag_set.n_negative,
            },
        )
        return TrainingResult(
            concept=concept,
            starts=tuple(records),
            n_starts=len(records),
            elapsed_seconds=elapsed,
            n_starts_pruned=n_pruned,
        )

    # ------------------------------------------------------------------ #
    # Engines                                                             #
    # ------------------------------------------------------------------ #

    def _train_batched(
        self,
        objective: DiverseDensityObjective,
        starts: list[tuple[str, int, np.ndarray, np.ndarray | None]],
    ) -> tuple[list[StartRecord] | None, SchemeResult | None]:
        """All restarts in lockstep; ``(None, None)`` for unbatchable schemes."""
        n_dims = objective.n_dims
        t0 = np.vstack([t for _, _, t, _ in starts])
        w0 = np.ones((len(starts), n_dims))
        for row, (_, _, _, w_start) in enumerate(starts):
            if w_start is not None:
                w0[row] = self._check_start_weights(w_start, n_dims)

        outcome = run_batched_scheme(
            objective.batched,
            self._scheme,
            t0,
            w0,
            prune_margin=self._config.restart_prune_margin,
        )
        if outcome is None:
            return None, None

        records: list[StartRecord] = []
        best: SchemeResult | None = None
        for row, (bag_id, instance_index, _, _) in enumerate(starts):
            value = float(outcome.values[row])
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=value,
                    n_iterations=int(outcome.n_iterations[row]),
                    converged=bool(outcome.converged[row]),
                    pruned=bool(outcome.pruned[row]),
                )
            )
            if np.isfinite(value) and (best is None or value < best.value):
                best = SchemeResult(
                    t=outcome.t[row],
                    w=outcome.w[row],
                    value=value,
                    n_iterations=int(outcome.n_iterations[row]),
                    converged=bool(outcome.converged[row]),
                )
        return records, best

    def _train_sequential(
        self,
        objective: DiverseDensityObjective,
        starts: list[tuple[str, int, np.ndarray, np.ndarray | None]],
    ) -> tuple[list[StartRecord], SchemeResult | None]:
        """One scheme solver per restart (the historical path)."""
        best: SchemeResult | None = None
        records: list[StartRecord] = []
        for bag_id, instance_index, t0, w_start in starts:
            result = self._scheme.optimize(objective, t0, w0=w_start)
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=result.value,
                    n_iterations=result.n_iterations,
                    converged=result.converged,
                )
            )
            if np.isfinite(result.value) and (best is None or result.value < best.value):
                best = result
        return records, best

    # ------------------------------------------------------------------ #
    # Restart selection                                                   #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_start_weights(weights: np.ndarray, n_dims: int) -> np.ndarray:
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        if w.size != n_dims:
            raise TrainingError(
                f"extra start weights must have {n_dims} entries, got {w.size}"
            )
        if np.any(w < 0):
            raise TrainingError("extra start weights must be non-negative")
        return w

    def _select_starts(
        self, bag_set: BagSet, extra_starts: Sequence[ExtraStart] = ()
    ) -> list[tuple[str, int, np.ndarray, np.ndarray | None]]:
        """Choose the restart points: instances of (a subset of) positive bags."""
        return select_restart_points(
            bag_set,
            subset=self._config.start_bag_subset,
            stride=self._config.start_instance_stride,
            seed=self._config.seed,
            extra_starts=extra_starts,
        )


def select_restart_points(
    bag_set: BagSet,
    subset: int | None,
    stride: int,
    seed: int,
    extra_starts: Sequence[ExtraStart] = (),
) -> list[tuple[str, int, np.ndarray, np.ndarray | None]]:
    """The shared restart-selection policy of the DD and EM-DD trainers.

    Returns ``(bag_id, instance_index, t0, w0)`` tuples: every ``stride``-th
    instance of (a seeded ``subset`` of) the positive bags, followed by the
    ``extra_starts`` (index -1), each carrying its own optional starting
    weights.

    Raises:
        TrainingError: if the set holds no positive bag.
    """
    positive = list(bag_set.positive_bags)
    if not positive:
        raise TrainingError("Diverse Density training requires at least one positive bag")
    if subset is not None and subset < len(positive):
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(positive), size=subset, replace=False)
        positive = [positive[i] for i in sorted(chosen)]
    starts: list[tuple[str, int, np.ndarray, np.ndarray | None]] = []
    for bag in positive:
        for index in range(0, bag.n_instances, stride):
            starts.append((bag.bag_id, index, bag.instances[index].copy(), None))
    for extra in extra_starts:
        t = np.asarray(extra.t, dtype=np.float64).reshape(-1).copy()
        w = None if extra.w is None else np.asarray(extra.w, dtype=np.float64)
        starts.append((extra.label, -1, t, w))
    return starts
