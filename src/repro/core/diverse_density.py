"""Multi-restart Diverse Density training (Sections 2.2.2 and 4.3).

Finding the global maximum of Diverse Density is hard, so the original
algorithm hill-climbs from *every instance of every positive bag* and keeps
the best local optimum.  Section 4.3 shows that starting from the instances
of only a subset of the positive bags (2 or 3 out of 5) loses little
performance while cutting training time; :class:`TrainerConfig` exposes both
that subset size and an optional per-bag instance stride for further
thinning.

:class:`DiverseDensityTrainer` wires together the objective, a weight scheme
and the restart strategy, and returns a :class:`TrainingResult` carrying the
best :class:`~repro.core.concept.LearnedConcept` plus per-start diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bags.bag import BagSet
from repro.core.concept import LearnedConcept
from repro.core.objective import DiverseDensityObjective
from repro.core.schemes import SchemeResult, WeightScheme, make_scheme
from repro.errors import TrainingError


@dataclass(frozen=True)
class TrainerConfig:
    """Configuration of the multi-restart trainer.

    Attributes:
        scheme: a :class:`WeightScheme` instance or a scheme name for
            :func:`~repro.core.schemes.make_scheme`.
        beta: constraint level (used when ``scheme`` is ``"inequality"``).
        alpha: damping constant (used when ``scheme`` is ``"alpha_hack"``).
        max_iterations: per-start solver iteration cap.
        start_bag_subset: number of positive bags whose instances seed
            restarts; ``None`` uses all (the original algorithm).  The
            Section 4.3 speed-up corresponds to 2 or 3 out of 5.
        start_instance_stride: take every ``k``-th instance of each chosen
            start bag (1 keeps all).
        seed: RNG seed for the start-bag subset choice.
    """

    scheme: WeightScheme | str = "inequality"
    beta: float = 0.5
    alpha: float = 50.0
    max_iterations: int = 100
    start_bag_subset: int | None = None
    start_instance_stride: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start_bag_subset is not None and self.start_bag_subset < 1:
            raise TrainingError(
                f"start_bag_subset must be >= 1 or None, got {self.start_bag_subset}"
            )
        if self.start_instance_stride < 1:
            raise TrainingError(
                f"start_instance_stride must be >= 1, got {self.start_instance_stride}"
            )

    def resolve_scheme(self) -> WeightScheme:
        """Return the configured scheme object (building it if named)."""
        if isinstance(self.scheme, WeightScheme):
            return self.scheme
        return make_scheme(
            self.scheme,
            beta=self.beta,
            alpha=self.alpha,
            max_iterations=self.max_iterations,
        )


@dataclass(frozen=True)
class StartRecord:
    """Diagnostics for one restart."""

    bag_id: str
    instance_index: int
    value: float
    n_iterations: int
    converged: bool


@dataclass(frozen=True)
class TrainingResult:
    """Everything the trainer learned.

    Attributes:
        concept: the best ``(t, w)`` found across restarts.
        starts: per-restart diagnostics, in execution order.
        n_starts: number of restarts executed.
        elapsed_seconds: wall-clock training time.
    """

    concept: LearnedConcept
    starts: tuple[StartRecord, ...] = field(default=())
    n_starts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def best_start(self) -> StartRecord:
        """The restart that produced the best (lowest-NLL) concept."""
        if not self.starts:
            raise TrainingError("training result carries no start records")
        return min(self.starts, key=lambda record: record.value)


class DiverseDensityTrainer:
    """Multi-restart Diverse Density maximiser.

    Usage::

        trainer = DiverseDensityTrainer(TrainerConfig(scheme="inequality", beta=0.5))
        result = trainer.train(bag_set)
        concept = result.concept
    """

    def __init__(self, config: TrainerConfig | None = None):
        self._config = config or TrainerConfig()
        self._scheme = self._config.resolve_scheme()

    @property
    def config(self) -> TrainerConfig:
        """The trainer configuration."""
        return self._config

    @property
    def scheme(self) -> WeightScheme:
        """The resolved weight scheme."""
        return self._scheme

    def train(self, bag_set: BagSet) -> TrainingResult:
        """Run all restarts on ``bag_set`` and keep the best concept.

        Raises:
            BagError: if the set has no positive bag.
            TrainingError: if no restart produced a finite optimum.
        """
        started_at = time.perf_counter()
        objective = DiverseDensityObjective(bag_set)
        starts = self._select_starts(bag_set)

        best: SchemeResult | None = None
        records: list[StartRecord] = []
        for bag_id, instance_index, t0 in starts:
            result = self._scheme.optimize(objective, t0)
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=result.value,
                    n_iterations=result.n_iterations,
                    converged=result.converged,
                )
            )
            if np.isfinite(result.value) and (best is None or result.value < best.value):
                best = result

        if best is None:
            raise TrainingError("no restart produced a finite Diverse Density optimum")

        elapsed = time.perf_counter() - started_at
        concept = LearnedConcept(
            t=best.t,
            w=best.w,
            nll=best.value,
            scheme=self._scheme.describe(),
            metadata={
                "n_starts": len(records),
                "elapsed_seconds": elapsed,
                "n_positive_bags": bag_set.n_positive,
                "n_negative_bags": bag_set.n_negative,
            },
        )
        return TrainingResult(
            concept=concept,
            starts=tuple(records),
            n_starts=len(records),
            elapsed_seconds=elapsed,
        )

    def _select_starts(self, bag_set: BagSet) -> list[tuple[str, int, np.ndarray]]:
        """Choose the restart points: instances of (a subset of) positive bags."""
        positive = list(bag_set.positive_bags)
        if not positive:
            raise TrainingError("Diverse Density training requires at least one positive bag")
        subset = self._config.start_bag_subset
        if subset is not None and subset < len(positive):
            rng = np.random.default_rng(self._config.seed)
            chosen = rng.choice(len(positive), size=subset, replace=False)
            positive = [positive[i] for i in sorted(chosen)]
        stride = self._config.start_instance_stride
        starts: list[tuple[str, int, np.ndarray]] = []
        for bag in positive:
            for index in range(0, bag.n_instances, stride):
                starts.append((bag.bag_id, index, bag.instances[index].copy()))
        return starts
