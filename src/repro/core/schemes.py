"""Weight-control schemes (Section 3.6).

The original Diverse Density algorithm maximises over both the concept point
``t`` and the per-dimension weights ``w``, and with little training data it
drives most weights to zero — a few-pixel concept that fits the examples but
generalises poorly.  The paper studies four treatments:

* ``original`` — free weights, optimised through ``w = s**2``
  (:class:`OriginalDDScheme`).
* ``identical`` — all weights pinned to 1; only ``t`` is optimised
  (:class:`IdenticalWeightsScheme`, Section 3.6.1).
* ``alpha_hack`` — the Section 3.6.2 modification: the ``w``-block of the
  gradient is divided by ``alpha`` during gradient ascent, damping weight
  movement.  The resulting vector field is not the gradient of any function,
  so this scheme always runs on plain (Armijo) gradient descent
  (:class:`AlphaHackScheme`).
* ``inequality`` — weights confined to ``{0 <= w <= 1, sum(w) >= beta * n}``
  and optimised with a constrained solver (:class:`InequalityScheme`,
  Section 3.6.3; ``beta = 0`` recovers free box-bounded weights and
  ``beta = 1`` pins every weight to 1).

All schemes share one entry point, :meth:`WeightScheme.optimize`, taking the
objective and a start ``(t0, w0)`` and returning effective weights.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.objective import DiverseDensityObjective
from repro.core.optimizer import ArmijoGradientDescent, make_minimizer
from repro.core.projection import ProjectedGradientDescent, SLSQPBackend
from repro.errors import TrainingError


@dataclass(frozen=True)
class SchemeResult:
    """Outcome of optimising one start under one scheme.

    Attributes:
        t: the concept point found.
        w: the *effective* (non-negative) weights found.
        value: NLL at ``(t, w)``; lower means higher Diverse Density.
        n_iterations: iterations spent by the underlying solver.
        converged: whether the solver met its stopping criterion.
    """

    t: np.ndarray
    w: np.ndarray
    value: float
    n_iterations: int
    converged: bool


class WeightScheme(ABC):
    """Interface shared by the four weight-control schemes."""

    #: Short identifier used in reports and experiment configs.
    name: str = ""

    def __init__(self, max_iterations: int = 150, gradient_tolerance: float = 1e-6) -> None:
        if max_iterations < 1:
            raise TrainingError(f"max_iterations must be >= 1, got {max_iterations}")
        self._max_iterations = max_iterations
        self._gtol = gradient_tolerance
        #: Solver backend name, recorded by subclasses that offer a choice.
        self._backend: str = ""

    @property
    def max_iterations(self) -> int:
        """Per-start solver iteration cap."""
        return self._max_iterations

    @property
    def gradient_tolerance(self) -> float:
        """Solver stopping tolerance."""
        return self._gtol

    @property
    def backend(self) -> str:
        """Solver backend name ('' when the scheme has a fixed solver)."""
        return self._backend

    @abstractmethod
    def optimize(
        self,
        objective: DiverseDensityObjective,
        t0: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> SchemeResult:
        """Minimise the NLL from a start point under this scheme's rules.

        Args:
            objective: the bag-set objective.
            t0: starting concept point (usually a positive instance).
            w0: starting effective weights; defaults to all ones.
        """

    def _initial_weights(
        self, objective: DiverseDensityObjective, w0: np.ndarray | None
    ) -> np.ndarray:
        if w0 is None:
            return np.ones(objective.n_dims)
        w = np.asarray(w0, dtype=np.float64).reshape(-1)
        if w.size != objective.n_dims:
            raise TrainingError(f"w0 must have {objective.n_dims} entries, got {w.size}")
        if np.any(w < 0):
            raise TrainingError("w0 must be non-negative")
        return w

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name

    def fingerprint(self) -> str:
        """Stable identity string for concept-cache keys.

        Covers everything that changes the optimisation outcome: the scheme
        class, its report description (which embeds beta/alpha), the solver
        backend, the iteration cap and the stopping tolerance.
        """
        return (
            f"{type(self).__name__}:{self.describe()}"
            f"|backend={self._backend}|it={self._max_iterations}|tol={self._gtol:g}"
        )


class OriginalDDScheme(WeightScheme):
    """Free weights via the ``w = s**2`` substitution (the original algorithm).

    Args:
        backend: unconstrained minimiser name, ``"lbfgs"`` or ``"armijo"``.
    """

    name = "original"

    def __init__(
        self,
        max_iterations: int = 150,
        gradient_tolerance: float = 1e-6,
        backend: str = "lbfgs",
    ) -> None:
        super().__init__(max_iterations, gradient_tolerance)
        self._backend = backend
        self._minimizer = make_minimizer(backend, max_iterations, gradient_tolerance)

    def optimize(
        self,
        objective: DiverseDensityObjective,
        t0: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> SchemeResult:
        n = objective.n_dims
        s0 = np.sqrt(self._initial_weights(objective, w0))
        z0 = np.concatenate([np.asarray(t0, dtype=np.float64).reshape(-1), s0])

        def fun(z: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad_t, grad_s = objective.value_and_grad_squared(z[:n], z[n:])
            return value, np.concatenate([grad_t, grad_s])

        outcome = self._minimizer.minimize(fun, z0)
        s = outcome.x[n:]
        return SchemeResult(
            t=outcome.x[:n],
            w=s * s,
            value=outcome.value,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
        )


class IdenticalWeightsScheme(WeightScheme):
    """All weights pinned to 1; optimise ``t`` only (Section 3.6.1)."""

    name = "identical"

    def __init__(
        self,
        max_iterations: int = 150,
        gradient_tolerance: float = 1e-6,
        backend: str = "lbfgs",
    ) -> None:
        super().__init__(max_iterations, gradient_tolerance)
        self._backend = backend
        self._minimizer = make_minimizer(backend, max_iterations, gradient_tolerance)

    def optimize(
        self,
        objective: DiverseDensityObjective,
        t0: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> SchemeResult:
        ones = np.ones(objective.n_dims)

        def fun(t: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad_t, _ = objective.value_and_grad(t, ones)
            return value, grad_t

        outcome = self._minimizer.minimize(fun, np.asarray(t0, dtype=np.float64).reshape(-1))
        return SchemeResult(
            t=outcome.x,
            w=ones,
            value=outcome.value,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
        )


class AlphaHackScheme(WeightScheme):
    """Weight-gradient damping by ``1/alpha`` (Section 3.6.2).

    ``alpha = 1`` reproduces the original scheme; ``alpha -> inf`` freezes
    the weights (identical-weights behaviour).  The damped vector field is
    not a gradient, so this scheme runs on Armijo gradient descent where a
    non-gradient descent direction is still sound.
    """

    name = "alpha_hack"

    def __init__(
        self,
        alpha: float = 50.0,
        max_iterations: int = 150,
        gradient_tolerance: float = 1e-6,
    ) -> None:
        super().__init__(max_iterations, gradient_tolerance)
        if alpha <= 0:
            raise TrainingError(f"alpha must be positive, got {alpha}")
        self._alpha = alpha
        self._backend = "armijo"
        self._minimizer = ArmijoGradientDescent(max_iterations, gradient_tolerance)

    @property
    def alpha(self) -> float:
        """The damping constant."""
        return self._alpha

    def optimize(
        self,
        objective: DiverseDensityObjective,
        t0: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> SchemeResult:
        n = objective.n_dims
        s0 = np.sqrt(self._initial_weights(objective, w0))
        z0 = np.concatenate([np.asarray(t0, dtype=np.float64).reshape(-1), s0])

        def fun(z: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad_t, grad_s = objective.value_and_grad_squared(
                z[:n], z[n:], alpha=self._alpha
            )
            return value, np.concatenate([grad_t, grad_s])

        outcome = self._minimizer.minimize(fun, z0)
        s = outcome.x[n:]
        return SchemeResult(
            t=outcome.x[:n],
            w=s * s,
            value=outcome.value,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
        )

    def describe(self) -> str:
        return f"{self.name}(alpha={self._alpha:g})"


class InequalityScheme(WeightScheme):
    """Box-bounded weights with a sum floor (Section 3.6.3).

    Args:
        beta: constraint level; ``sum(w) >= beta * n`` with ``0 <= w <= 1``.
        backend: ``"projected"`` (projected gradient, default) or ``"slsqp"``
            (scipy SQP, the closest relative of the thesis's CFSQP).
    """

    name = "inequality"

    def __init__(
        self,
        beta: float = 0.5,
        max_iterations: int = 150,
        gradient_tolerance: float = 1e-6,
        backend: str = "projected",
    ) -> None:
        super().__init__(max_iterations, gradient_tolerance)
        if not 0.0 <= beta <= 1.0:
            raise TrainingError(f"beta must lie in [0, 1], got {beta}")
        self._beta = beta
        self._backend = backend
        if backend == "projected":
            self._solver: ProjectedGradientDescent | SLSQPBackend = ProjectedGradientDescent(
                beta, max_iterations, gradient_tolerance
            )
        elif backend == "slsqp":
            self._solver = SLSQPBackend(beta, max_iterations)
        else:
            raise TrainingError(
                f"unknown inequality backend {backend!r}; known: 'projected', 'slsqp'"
            )

    @property
    def beta(self) -> float:
        """The constraint level."""
        return self._beta

    def optimize(
        self,
        objective: DiverseDensityObjective,
        t0: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> SchemeResult:
        w_start = self._initial_weights(objective, w0)
        outcome = self._solver.minimize(
            objective.value_and_grad, np.asarray(t0, dtype=np.float64).reshape(-1), w_start
        )
        return SchemeResult(
            t=outcome.t,
            w=outcome.w,
            value=outcome.value,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
        )

    def describe(self) -> str:
        return f"{self.name}(beta={self._beta:g})"


def make_scheme(
    name: str,
    beta: float = 0.5,
    alpha: float = 50.0,
    max_iterations: int = 150,
    gradient_tolerance: float = 1e-6,
    backend: str | None = None,
) -> WeightScheme:
    """Factory for the four schemes by name.

    Args:
        name: ``"original"``, ``"identical"``, ``"alpha_hack"`` or
            ``"inequality"``.
        beta: constraint level, only used by ``"inequality"``.
        alpha: damping constant, only used by ``"alpha_hack"``.
        max_iterations: solver iteration cap.
        gradient_tolerance: solver stopping tolerance.
        backend: optional solver backend override (scheme-specific).

    Raises:
        TrainingError: for an unknown scheme name.
    """
    if name == "original":
        return OriginalDDScheme(max_iterations, gradient_tolerance, backend or "lbfgs")
    if name == "identical":
        return IdenticalWeightsScheme(max_iterations, gradient_tolerance, backend or "lbfgs")
    if name == "alpha_hack":
        return AlphaHackScheme(alpha, max_iterations, gradient_tolerance)
    if name == "inequality":
        return InequalityScheme(beta, max_iterations, gradient_tolerance, backend or "projected")
    raise TrainingError(
        f"unknown weight scheme {name!r}; known: 'original', 'identical', "
        "'alpha_hack', 'inequality'"
    )
