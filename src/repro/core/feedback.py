"""Simulated relevance feedback (Section 4.1).

The paper's evaluation protocol: split the database into a small *potential
training set* (whose labels the system may consult, simulating the user) and
a large *test set*.  After each training round the system ranks the potential
training set, picks the top false positives, adds them as new negative
examples and retrains — "it effectively simulates what a user might do to
obtain better performance".  Most experiments run three rounds with 5 false
positives added after each of the first two.

:class:`FeedbackLoop` drives that protocol against any *corpus* object
offering::

    instances_for(image_id) -> np.ndarray      # the image's bag instances
    category_of(image_id) -> str               # ground-truth label
    packed(ids) -> PackedCorpus                # columnar rankable view
    retrieval_candidates(ids) -> Iterable[RetrievalCandidate]   # compat

which :class:`~repro.database.store.ImageDatabase` implements.  The packed
view is the canonical one — rankings run through the vectorised
:class:`~repro.core.retrieval.Ranker`; legacy corpora offering only
``retrieval_candidates`` are packed on the fly by
:func:`~repro.core.retrieval.packed_view`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.bags.bag import Bag, BagSet
from repro.core.cache import ConceptCache
from repro.core.diverse_density import DiverseDensityTrainer, ExtraStart, TrainingResult
from repro.core.retrieval import (
    PackedCorpus,
    Ranker,
    RetrievalCandidate,
    RetrievalResult,
    packed_view,
)
from repro.errors import TrainingError


class Corpus(Protocol):
    """What the feedback loop needs from the storage layer."""

    def instances_for(self, image_id: str) -> np.ndarray:
        """Instance matrix of one image."""
        ...  # pragma: no cover - protocol

    def category_of(self, image_id: str) -> str:
        """Ground-truth category of one image."""
        ...  # pragma: no cover - protocol

    def packed(self, ids: Sequence[str] | None = None) -> PackedCorpus:
        """Columnar corpus view of the given images (all when ``None``)."""
        ...  # pragma: no cover - protocol

    def retrieval_candidates(self, ids: Sequence[str]) -> list[RetrievalCandidate]:
        """Per-image compatibility view of the given images."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ExampleSelection:
    """The initial positive/negative example images of a query."""

    positive_ids: tuple[str, ...]
    negative_ids: tuple[str, ...]


def select_examples(
    corpus: Corpus,
    candidate_ids: Sequence[str],
    target_category: str,
    n_positive: int = 5,
    n_negative: int = 5,
    seed: int = 0,
) -> ExampleSelection:
    """Seeded stand-in for the user's initial example picks.

    Args:
        corpus: the storage layer.
        candidate_ids: ids eligible as examples (the potential training set).
        target_category: what the simulated user is looking for.
        n_positive: number of positive examples to pick.
        n_negative: number of negative examples to pick.
        seed: RNG seed; the same seed always picks the same examples.

    Raises:
        TrainingError: if the pool cannot supply the requested counts.
    """
    positives = [i for i in candidate_ids if corpus.category_of(i) == target_category]
    negatives = [i for i in candidate_ids if corpus.category_of(i) != target_category]
    if len(positives) < n_positive:
        raise TrainingError(
            f"only {len(positives)} {target_category!r} images available, "
            f"need {n_positive} positive examples"
        )
    if len(negatives) < n_negative:
        raise TrainingError(
            f"only {len(negatives)} non-{target_category!r} images available, "
            f"need {n_negative} negative examples"
        )
    rng = np.random.default_rng(seed)
    chosen_pos = rng.choice(len(positives), size=n_positive, replace=False)
    chosen_neg = rng.choice(len(negatives), size=n_negative, replace=False)
    return ExampleSelection(
        positive_ids=tuple(positives[i] for i in sorted(chosen_pos)),
        negative_ids=tuple(negatives[i] for i in sorted(chosen_neg)),
    )


@dataclass(frozen=True)
class FeedbackRound:
    """Diagnostics for one training round.

    Attributes:
        index: 1-based round number.
        n_positive_bags: positive examples used this round.
        n_negative_bags: negative examples used this round.
        nll: best NLL achieved by the trainer.
        added_negative_ids: false positives promoted to negatives *after*
            this round (empty for the final round).
        training_precision_at_10: precision among the 10 best-ranked
            potential-training-set images, a cheap progress signal.
    """

    index: int
    n_positive_bags: int
    n_negative_bags: int
    nll: float
    added_negative_ids: tuple[str, ...]
    training_precision_at_10: float


@dataclass(frozen=True)
class FeedbackOutcome:
    """Everything a feedback run produced.

    Attributes:
        rounds: per-round diagnostics, in order.
        final_training: the last round's full training result.
        test_ranking: final ranking of the test set.
        example_ids: every image id used as an example (initial + promoted).
    """

    rounds: tuple[FeedbackRound, ...]
    final_training: TrainingResult
    test_ranking: RetrievalResult
    example_ids: tuple[str, ...]


class FeedbackLoop:
    """Drives the train / rank / promote-false-positives cycle.

    Args:
        corpus: storage layer (see :class:`Corpus`).
        trainer: configured Diverse Density trainer.
        target_category: the simulated user's concept.
        potential_ids: the potential-training-set image ids.
        test_ids: the held-out test-set image ids.
        rounds: total training rounds (paper default 3).
        false_positives_per_round: negatives promoted after each
            non-final round (paper default 5).
        cache: optional trained-concept cache — rounds whose (trainer, bag
            set, warm start) fingerprints were seen before reuse the cached
            :class:`TrainingResult` instead of retraining.  Cache hits are
            bit-identical to retraining, so sharing one cache across
            repeated loops is safe.
        warm_start: seed every round after the first with one extra restart
            at the previous round's concept ``(t, w)``.  The restart
            population only grows, so the per-round NLL can only improve.
    """

    def __init__(
        self,
        corpus: Corpus,
        trainer: DiverseDensityTrainer,
        target_category: str,
        potential_ids: Sequence[str],
        test_ids: Sequence[str],
        rounds: int = 3,
        false_positives_per_round: int = 5,
        cache: ConceptCache | None = None,
        warm_start: bool = False,
    ) -> None:
        if rounds < 1:
            raise TrainingError(f"rounds must be >= 1, got {rounds}")
        if false_positives_per_round < 0:
            raise TrainingError(
                f"false_positives_per_round must be >= 0, got {false_positives_per_round}"
            )
        self._corpus = corpus
        self._trainer = trainer
        self._target = target_category
        self._potential_ids = tuple(potential_ids)
        self._test_ids = tuple(test_ids)
        self._rounds = rounds
        self._fp_per_round = false_positives_per_round
        self._cache = cache
        self._warm_start = warm_start
        self._ranker = Ranker()

    def run(self, selection: ExampleSelection) -> FeedbackOutcome:
        """Execute the full protocol from an initial example selection."""
        positive_ids = list(selection.positive_ids)
        negative_ids = list(selection.negative_ids)
        round_records: list[FeedbackRound] = []
        training: TrainingResult | None = None
        # The potential-set view is loop-invariant; pack it once for all rounds.
        potential_packed = packed_view(self._corpus, self._potential_ids)

        for round_index in range(1, self._rounds + 1):
            bag_set = self._build_bag_set(positive_ids, negative_ids)
            extra_starts: tuple[ExtraStart, ...] = ()
            if self._warm_start and training is not None:
                previous = training.concept
                extra_starts = (ExtraStart(t=previous.t, w=previous.w),)
            training = self._train(bag_set, extra_starts)
            concept = training.concept

            example_ids = set(positive_ids) | set(negative_ids)
            training_ranking = self._ranker.rank(
                concept, potential_packed, exclude=example_ids
            )
            added: tuple[str, ...] = ()
            if round_index < self._rounds and self._fp_per_round:
                promoted = training_ranking.false_positives(
                    self._target, self._fp_per_round, exclude=example_ids
                )
                added = tuple(entry.image_id for entry in promoted)
                negative_ids.extend(added)

            precision = (
                training_ranking.precision_at(min(10, len(training_ranking)), self._target)
                if len(training_ranking)
                else 0.0
            )
            round_records.append(
                FeedbackRound(
                    index=round_index,
                    n_positive_bags=len(positive_ids),
                    n_negative_bags=len(negative_ids) - len(added),
                    nll=concept.nll,
                    added_negative_ids=added,
                    training_precision_at_10=precision,
                )
            )

        assert training is not None  # rounds >= 1
        all_examples = set(positive_ids) | set(negative_ids)
        test_ranking = self._ranker.rank(
            training.concept,
            packed_view(self._corpus, self._test_ids),
            exclude=all_examples,
        )
        return FeedbackOutcome(
            rounds=tuple(round_records),
            final_training=training,
            test_ranking=test_ranking,
            example_ids=tuple(sorted(all_examples)),
        )

    def _train(
        self, bag_set: BagSet, extra_starts: tuple[ExtraStart, ...]
    ) -> TrainingResult:
        """Train one round, through the concept cache when one is attached."""
        if self._cache is not None:
            result, _ = self._cache.fetch_or_train(self._trainer, bag_set, extra_starts)
            return result
        if extra_starts:
            return self._trainer.train(bag_set, extra_starts=extra_starts)
        return self._trainer.train(bag_set)

    def _build_bag_set(
        self, positive_ids: Sequence[str], negative_ids: Sequence[str]
    ) -> BagSet:
        bag_set = BagSet()
        for image_id in positive_ids:
            bag_set.add(
                Bag(
                    instances=self._corpus.instances_for(image_id),
                    label=True,
                    bag_id=image_id,
                )
            )
        for image_id in negative_ids:
            bag_set.add(
                Bag(
                    instances=self._corpus.instances_for(image_id),
                    label=False,
                    bag_id=image_id,
                )
            )
        return bag_set
