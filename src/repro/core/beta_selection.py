"""Automatic beta selection (Chapter 5 future work).

The thesis: "the beta value in the inequality constraint affects performance
very much ... one might want to study how to choose beta automatically to
get optimal performance."  This module implements the natural protocol the
paper's own evaluation design suggests: the potential training set's labels
are known to the system (that is what simulates the user), so candidate
beta values can be *validated* on it — train with each beta, rank the
held-in potential set, and keep the beta with the best validation metric.
Only the winning beta is then used for the real test-set retrieval.

This uses no test-set information; it is exactly the model-selection move
the relevance-feedback protocol already licenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bags.bag import Bag, BagSet
from repro.core.cache import ConceptCache
from repro.core.diverse_density import DiverseDensityTrainer, TrainerConfig
from repro.core.feedback import Corpus, ExampleSelection
from repro.core.retrieval import Ranker, packed_view
from repro.errors import TrainingError
from repro.eval.metrics import average_precision

#: Default beta grid, matching the coarse sweep of Figures 4-15..4-17.
DEFAULT_BETA_GRID: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class BetaCandidate:
    """Validation outcome for one beta value."""

    beta: float
    validation_ap: float
    nll: float


@dataclass(frozen=True)
class BetaSelection:
    """The chosen beta plus the full candidate record."""

    best_beta: float
    candidates: tuple[BetaCandidate, ...]

    @property
    def best(self) -> BetaCandidate:
        """The winning candidate."""
        for candidate in self.candidates:
            if candidate.beta == self.best_beta:
                return candidate
        raise TrainingError("selection lost its own winner")  # pragma: no cover


def select_beta(
    corpus: Corpus,
    selection: ExampleSelection,
    target_category: str,
    validation_ids: Sequence[str],
    betas: Sequence[float] = DEFAULT_BETA_GRID,
    max_iterations: int = 60,
    start_bag_subset: int | None = 2,
    start_instance_stride: int = 2,
    seed: int = 0,
    engine: str = "batched",
    restart_prune_margin: float | None = None,
    cache: ConceptCache | None = None,
) -> BetaSelection:
    """Validate candidate betas on the potential training set.

    Args:
        corpus: the storage layer (database or feature adapter).
        selection: the initial positive/negative example images.
        target_category: the user's concept.
        validation_ids: ids whose labels may be consulted (the potential
            training set), used for ranking-quality validation.
        betas: candidate constraint levels.
        max_iterations / start_bag_subset / start_instance_stride / seed:
            trainer knobs (validation can afford the Section 4.3 speed-up).
        engine: training engine for the per-beta sweeps; the batched engine
            turns each candidate's restart population into one tensor pass.
        restart_prune_margin: optional dynamic restart thinning (the sweep
            only needs a winner, so aggressive pruning is usually safe).
        cache: optional trained-concept cache shared with other sweeps — a
            beta already validated on identical bags is never retrained.

    Returns:
        The best beta (ties break toward the larger, i.e. more constrained,
        value — the safer default per the paper's overfitting analysis) and
        all candidate records.

    Raises:
        TrainingError: on an empty beta grid or no usable validation images.
    """
    if not betas:
        raise TrainingError("select_beta needs at least one candidate beta")
    example_ids = set(selection.positive_ids) | set(selection.negative_ids)
    held_in = [i for i in validation_ids if i not in example_ids]
    if not held_in:
        raise TrainingError("no validation images left after removing the examples")

    bag_set = BagSet()
    for image_id in selection.positive_ids:
        bag_set.add(
            Bag(instances=corpus.instances_for(image_id), label=True, bag_id=image_id)
        )
    for image_id in selection.negative_ids:
        bag_set.add(
            Bag(instances=corpus.instances_for(image_id), label=False, bag_id=image_id)
        )

    ranker = Ranker()
    held_in_packed = packed_view(corpus, held_in)
    candidates = []
    for beta in betas:
        trainer = DiverseDensityTrainer(
            TrainerConfig(
                scheme="inequality",
                beta=float(beta),
                max_iterations=max_iterations,
                start_bag_subset=start_bag_subset,
                start_instance_stride=start_instance_stride,
                seed=seed,
                engine=engine,
                restart_prune_margin=restart_prune_margin,
            )
        )
        if cache is not None:
            training, _ = cache.fetch_or_train(trainer, bag_set)
        else:
            training = trainer.train(bag_set)
        concept = training.concept
        ranking = ranker.rank(concept, held_in_packed, exclude=example_ids)
        relevance = ranking.relevance(target_category)
        validation_ap = average_precision(relevance) if relevance.any() else 0.0
        candidates.append(
            BetaCandidate(beta=float(beta), validation_ap=validation_ap, nll=concept.nll)
        )

    best = max(candidates, key=lambda c: (c.validation_ap, c.beta))
    return BetaSelection(best_beta=best.beta, candidates=tuple(candidates))
