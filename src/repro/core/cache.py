"""The trained-concept cache.

Multi-restart training is the dominant latency of every learner, and the
serving workloads repeat themselves: a user re-issues the same query, a
``batch_query`` carries duplicate requests, a feedback loop retrains on a
bag set it has seen before.  :class:`ConceptCache` closes that loop — a
bounded, thread-safe LRU keyed on *content fingerprints*:

    key = (kind, trainer fingerprint, BagSet fingerprint, extra starts)

where the trainer fingerprint covers the full training configuration
(scheme, solver backend, engine, restart policy, seeds — see
``TrainerConfig.fingerprint``) and the :meth:`~repro.bags.bag.BagSet.fingerprint`
is a content hash of the stacked instances, labels and bag ids.  Equal keys
therefore guarantee bit-identical training results, so a cache hit is
indistinguishable from retraining — except for the wall-clock time.

The cache is owned by :class:`~repro.api.service.RetrievalService` (which
caches fitted models across queries) and optionally by
:class:`~repro.core.feedback.FeedbackLoop` (which caches per-round
``TrainingResult`` objects); both consume the same class with different
``kind`` namespaces.  :attr:`ConceptCache.stats` exposes hit/miss counters
for monitoring.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.bags.bag import BagSet
from repro.core.diverse_density import ExtraStart, TrainingResult
from repro.errors import TrainingError


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that fell through to training.
        entries: entries currently held.
        max_entries: the configured capacity.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ConceptCache:
    """Bounded, thread-safe LRU of trained artefacts keyed by fingerprints.

    Args:
        max_entries: capacity; the least-recently-used entry is evicted
            when a store would exceed it.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise TrainingError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._key_locks: dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0

    # Internal helpers; callers hold self._lock.

    def _get_locked(self, key: str) -> Any | None:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def _store_locked(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    @staticmethod
    def key_for(
        kind: str,
        trainer_fingerprint: str,
        bag_set: BagSet,
        extra_starts: Sequence[ExtraStart] = (),
    ) -> str:
        """Build a cache key from a trainer identity and a bag-set content hash.

        Args:
            kind: namespace for the cached value type (``"training"`` for
                ``TrainingResult`` entries, ``"model"`` for fitted models),
                so different consumers sharing one cache cannot collide.
            trainer_fingerprint: the trainer's configuration fingerprint.
            bag_set: the training bags.
            extra_starts: warm-start seeds, hashed by value — a round warm-
                started from a different concept must miss.
        """
        digest = hashlib.sha256()
        digest.update(trainer_fingerprint.encode())
        digest.update(b"\x00")
        digest.update(bag_set.fingerprint().encode())
        for extra in extra_starts:
            digest.update(b"\x00t")
            digest.update(np.ascontiguousarray(extra.t, dtype=np.float64).tobytes())
            if extra.w is not None:
                digest.update(b"w")
                digest.update(np.ascontiguousarray(extra.w, dtype=np.float64).tobytes())
        return f"{kind}:{digest.hexdigest()}"

    def lookup(self, key: str) -> Any | None:
        """The cached value for ``key`` (recording a hit), or ``None`` (a miss)."""
        with self._lock:
            value = self._get_locked(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            return value

    def store(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail past capacity."""
        with self._lock:
            self._store_locked(key, value)

    def compute_if_absent(self, key: str, factory: Callable[[], Any]) -> tuple[Any, bool]:
        """Return the cached value, computing and storing it on a miss.

        Concurrent callers with the same key are deduplicated: one runs
        ``factory`` while the rest block on a per-key lock and are then
        served the freshly stored value — so a ``batch_query`` burst of
        identical requests trains exactly once.  Exactly one hit or miss
        is recorded per call.  Returns ``(value, was_hit)``.
        """
        with self._lock:
            value = self._get_locked(key)
            if value is not None:
                self._hits += 1
                return value, True
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                value = self._get_locked(key)
                if value is not None:
                    # Another caller computed it while we waited.
                    self._hits += 1
                    self._key_locks.pop(key, None)
                    return value, True
                # Count the miss up front so a raising factory still leaves
                # hits + misses equal to the number of lookups.
                self._misses += 1
            try:
                value = factory()
                with self._lock:
                    self._store_locked(key, value)
            finally:
                with self._lock:
                    self._key_locks.pop(key, None)
        return value, False

    def clear(self) -> None:
        """Drop every entry (the counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def export_entries(self) -> tuple[tuple[str, Any], ...]:
        """Every ``(key, value)`` pair, least-recently-used first.

        The order is chosen so that feeding the pairs back through
        :meth:`import_entries` reproduces the exact LRU state — the snapshot
        layer uses this to persist a warmed cache and restart workers hot.
        Values are returned as-is; serialising them is the caller's job.
        """
        with self._lock:
            return tuple(self._entries.items())

    def import_entries(self, entries: Iterable[tuple[str, Any]]) -> int:
        """Insert ``(key, value)`` pairs in order; returns how many were written.

        Pairs are stored through the normal LRU path, so importing more
        entries than ``max_entries`` keeps only the most recent tail (the
        cache may retain fewer than the returned count).  Counters are not
        touched — imported entries count as neither hits nor misses until
        they are looked up.
        """
        written = 0
        with self._lock:
            for key, value in entries:
                self._store_locked(str(key), value)
                written += 1
        return written

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/occupancy counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                max_entries=self._max_entries,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Train-through helper                                                #
    # ------------------------------------------------------------------ #

    def fetch_or_train(
        self,
        trainer: Any,
        bag_set: BagSet,
        extra_starts: Sequence[ExtraStart] = (),
    ) -> tuple[TrainingResult, bool]:
        """Train through the cache; returns ``(result, was_hit)``.

        Trainers without a string ``fingerprint`` attribute (custom
        strategies the cache cannot identify) are trained directly and do
        not touch the counters.
        """
        fingerprint = getattr(trainer, "fingerprint", None)
        if not isinstance(fingerprint, str):
            return self._train(trainer, bag_set, extra_starts), False
        key = self.key_for("training", fingerprint, bag_set, extra_starts)
        return self.compute_if_absent(
            key, lambda: self._train(trainer, bag_set, extra_starts)
        )

    @staticmethod
    def _train(
        trainer: Any, bag_set: BagSet, extra_starts: Sequence[ExtraStart]
    ) -> TrainingResult:
        # Only pass the keyword when needed so custom trainers with a plain
        # train(bag_set) signature keep working without warm starts.
        if extra_starts:
            return trainer.train(bag_set, extra_starts=tuple(extra_starts))
        return trainer.train(bag_set)
