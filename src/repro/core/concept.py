"""The learned concept: an ``(t, w)`` pair plus scoring utilities.

The Diverse Density trainer returns a :class:`LearnedConcept` — the "ideal"
feature point ``t`` and the per-dimension weights ``w`` that maximise Diverse
Density.  Retrieval (Section 3.5) scores an image by the *minimum* weighted
Euclidean distance of its instances to ``t``; smaller distance means a
closer match to the user's concept.

The concept also exposes the weight-distribution statistics used in the
Figure 3-7/3-8/3-9 discussion (how concentrated the learned weights are) and
round-trip serialisation for persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bags.bag import Bag
from repro.errors import TrainingError


@dataclass(frozen=True)
class WeightProfile:
    """Summary of how a weight vector distributes its mass.

    Attributes:
        total: sum of the weights.
        mean: average weight.
        max: largest weight.
        fraction_near_zero: share of weights below 5% of the maximum — the
            paper's qualitative "most weights pushed to zero" measure.
        entropy: Shannon entropy (nats) of the weight distribution,
            normalised to ``[0, 1]`` by ``log(n)``; 1 means perfectly even.
    """

    total: float
    mean: float
    max: float
    fraction_near_zero: float
    entropy: float


@dataclass(frozen=True)
class LearnedConcept:
    """An immutable learned concept.

    Attributes:
        t: the concept point in feature space.
        w: non-negative per-dimension weights.
        nll: negative log Diverse Density achieved at ``(t, w)``.
        scheme: name of the weight scheme that produced the concept.
        metadata: free-form extras (training time, start counts, ...).
    """

    t: np.ndarray
    w: np.ndarray
    nll: float
    scheme: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        t = np.asarray(self.t, dtype=np.float64).reshape(-1)
        w = np.asarray(self.w, dtype=np.float64).reshape(-1)
        if t.size == 0 or t.size != w.size:
            raise TrainingError(
                f"concept requires matching non-empty t and w, got {t.size} and {w.size}"
            )
        if not (np.all(np.isfinite(t)) and np.all(np.isfinite(w))):
            raise TrainingError("concept contains non-finite values")
        if np.any(w < 0):
            raise TrainingError("concept weights must be non-negative")
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "w", w)

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self.t.size

    # ------------------------------------------------------------------ #
    # Scoring                                                             #
    # ------------------------------------------------------------------ #

    def instance_distances(self, instances: np.ndarray) -> np.ndarray:
        """Weighted squared distances of instance rows to the concept point."""
        matrix = np.asarray(instances, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self.n_dims:
            raise TrainingError(
                f"instances have {matrix.shape[1]} dims, concept has {self.n_dims}"
            )
        diff = matrix - self.t
        return (diff * diff) @ self.w

    def bag_distance(self, bag: Bag | np.ndarray) -> float:
        """Image-to-concept distance: the minimum over instance distances.

        This is exactly the ranking score of Section 3.5 ("computes the
        distances of all of its instances to the point, and then picks the
        smallest one").
        """
        instances = bag.instances if isinstance(bag, Bag) else bag
        return float(self.instance_distances(instances).min())

    def best_instance(self, bag: Bag | np.ndarray) -> int:
        """Index of the instance closest to the concept (the "right" region)."""
        instances = bag.instances if isinstance(bag, Bag) else bag
        return int(self.instance_distances(instances).argmin())

    def bag_probability(self, bag: Bag | np.ndarray) -> float:
        """Noisy-or probability that the bag matches the concept."""
        instances = bag.instances if isinstance(bag, Bag) else bag
        distances = self.instance_distances(instances)
        log_q = float(np.log1p(-np.clip(np.exp(-distances), 0.0, 1.0 - 1e-12)).sum())
        return float(-np.expm1(log_q))

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def weight_profile(self, near_zero_fraction: float = 0.05) -> WeightProfile:
        """Summarise the weight distribution (Figures 3-7 .. 3-9).

        Args:
            near_zero_fraction: weights below this fraction of the maximum
                count as "near zero".
        """
        w = self.w
        total = float(w.sum())
        w_max = float(w.max())
        if w_max <= 0.0:
            return WeightProfile(
                total=0.0, mean=0.0, max=0.0, fraction_near_zero=1.0, entropy=0.0
            )
        near_zero = float(np.mean(w < near_zero_fraction * w_max))
        probabilities = w / total
        nonzero = probabilities[probabilities > 0]
        raw_entropy = float(-(nonzero * np.log(nonzero)).sum())
        normalizer = np.log(w.size) if w.size > 1 else 1.0
        return WeightProfile(
            total=total,
            mean=total / w.size,
            max=w_max,
            fraction_near_zero=near_zero,
            entropy=raw_entropy / normalizer,
        )

    def as_matrices(self, resolution: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Reshape ``t`` and ``w`` to ``h x h`` matrices for display.

        Args:
            resolution: the ``h``; inferred as ``sqrt(n_dims)`` when omitted.

        Raises:
            TrainingError: if ``n_dims`` is not a perfect square and no
                resolution was supplied, or the resolution does not match.
        """
        if resolution is None:
            resolution = int(round(np.sqrt(self.n_dims)))
        if resolution * resolution != self.n_dims:
            raise TrainingError(
                f"cannot reshape {self.n_dims}-dim concept to {resolution}x{resolution}"
            )
        shape = (resolution, resolution)
        return self.t.reshape(shape), self.w.reshape(shape)

    # ------------------------------------------------------------------ #
    # Serialisation                                                       #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-Python representation (JSON-compatible)."""
        return {
            "t": self.t.tolist(),
            "w": self.w.tolist(),
            "nll": self.nll,
            "scheme": self.scheme,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LearnedConcept":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                t=np.asarray(payload["t"], dtype=np.float64),
                w=np.asarray(payload["w"], dtype=np.float64),
                nll=float(payload["nll"]),
                scheme=str(payload.get("scheme", "")),
                metadata=dict(payload.get("metadata", {})),
            )
        except KeyError as exc:
            raise TrainingError(f"concept payload missing key {exc}") from exc
