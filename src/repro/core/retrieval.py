"""Ranking an image database against a learned concept (Section 3.5).

After training, the system "goes to the image database and ranks all images
based on their weighted Euclidean distances to the ideal point", where an
image's distance is the minimum over its instances.  This module implements
that ranking over a *corpus* in columnar form:

* :class:`PackedCorpus` — the canonical corpus representation: one stacked
  ``(N, d)`` instance matrix for all images, bag-boundary offsets, and
  parallel id/category arrays.  Storage layers
  (:class:`~repro.database.store.ImageDatabase`, the colour corpora) build
  and cache packed views; anything yielding
  :class:`RetrievalCandidate` items can be packed with
  :meth:`PackedCorpus.from_candidates`.
* :class:`Ranker` — the vectorised ranking kernel: one broadcast weighted
  distance over the whole matrix, a segmented minimum per bag
  (``np.minimum.reduceat``) and an id-tie-broken argsort, with ``top_k``
  truncation, id exclusion and category filtering.
* :func:`rank_by_loop` — the legacy per-bag reference implementation, kept
  for equivalence tests and the loop-vs-vectorised benchmark
  (``benchmarks/bench_rank_corpus.py``).

:class:`RetrievalEngine` survives as a thin compatibility wrapper that
delegates to :class:`Ranker`, so older call sites get the fast path for
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.concept import LearnedConcept
from repro.errors import DatabaseError

#: Distinguishes "argument omitted" from an explicit ``None`` in
#: :meth:`PackedCorpus.configure_rank_index`.
_UNSET = object()

#: The serving rank modes a corpus view can carry: ``"exact"`` ranks
#: through the bound-pruned (ordering-identical) machinery, ``"approx"``
#: routes ``top_k`` queries through the hash-coded coarse tier
#: (:class:`repro.index.ann.ApproxRanker`) before the exact re-rank.
RANK_MODES = ("exact", "approx")


@dataclass(frozen=True)
class RetrievalCandidate:
    """One rankable image: its id, ground-truth category and instances."""

    image_id: str
    category: str
    instances: np.ndarray


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` integer ranges.

    The gather idiom behind every fancy-index row collection in the rank
    path (bag sub-selection, chunked evaluation, group sweeps): one
    ``arange`` offset by per-range start/cursor differences — no Python
    loop over ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    total = int(offsets[-1])
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], lengths)
        + np.repeat(starts, lengths)
    )


def _expanded_min_kernel(
    rows: np.ndarray, squares: np.ndarray, concept, reduce_offsets: np.ndarray
) -> np.ndarray:
    """Per-bag min of the expanded weighted-distance quadratic form.

    The single definition of the exact scoring kernel::

        sum_j w_j (x_j - t_j)^2  =  (X^2) @ w  -  2 X @ (w t)  +  w . t^2

    shared by :meth:`PackedCorpus.min_distances` (full corpus) and
    :meth:`PackedCorpus.min_distances_at` (gathered subset).  Sharing one
    formula is load-bearing: the sharded rank path's ordering-identical
    guarantee relies on both paths computing bit-identical distances, so
    any change to the term order here changes both together.
    """
    weighted_t = concept.w * concept.t
    per_instance = squares @ concept.w
    per_instance -= 2.0 * (rows @ weighted_t)
    per_instance += float(weighted_t @ concept.t)
    np.maximum(per_instance, 0.0, out=per_instance)
    return np.minimum.reduceat(per_instance, reduce_offsets)


class PackedCorpus:
    """A corpus in columnar form: stacked instances plus parallel metadata.

    Attributes:
        instances: ``(N, d)`` float64 matrix — every image's instances,
            stacked in bag order.
        offsets: ``(n_bags + 1,)`` int64 bag boundaries; bag ``i`` owns the
            rows ``instances[offsets[i]:offsets[i + 1]]``.
        image_ids: image ids, parallel to the bags.
        categories: ground-truth categories, parallel to the bags.

    The arrays are validated on construction (monotone offsets covering the
    matrix exactly, unique ids, matching lengths, at least one instance per
    bag) and should be treated as immutable.
    """

    __slots__ = (
        "instances",
        "offsets",
        "image_ids",
        "categories",
        "_id_array",
        "_category_array",
        "_position",
        "_squared",
        "_shard_index",
        "_coarse_index",
        "_rank_index_enabled",
        "_rank_index_shards",
        "_rank_mode",
    )

    def __init__(
        self,
        instances: np.ndarray,
        offsets: np.ndarray,
        image_ids: Sequence[str],
        categories: Sequence[str],
    ) -> None:
        matrix = np.asarray(instances, dtype=np.float64)
        if matrix.ndim != 2:
            raise DatabaseError(
                f"packed instances must form a 2-D matrix, got shape {matrix.shape}"
            )
        bounds = np.asarray(offsets, dtype=np.int64).reshape(-1)
        ids = tuple(image_ids)
        labels = tuple(categories)
        if len(labels) != len(ids):
            raise DatabaseError(
                f"{len(ids)} image ids but {len(labels)} categories"
            )
        if len(set(ids)) != len(ids):
            raise DatabaseError("packed corpus contains duplicate image ids")
        if bounds.size != len(ids) + 1:
            raise DatabaseError(
                f"offsets must hold n_bags + 1 entries, got {bounds.size} "
                f"for {len(ids)} bags"
            )
        if bounds[0] != 0 or bounds[-1] != matrix.shape[0]:
            raise DatabaseError(
                f"offsets must span the instance matrix exactly "
                f"(got [{bounds[0]}, {bounds[-1]}] over {matrix.shape[0]} rows)"
            )
        if np.any(np.diff(bounds) < 1):
            raise DatabaseError("every packed bag needs at least one instance")
        object.__setattr__(self, "instances", matrix)
        object.__setattr__(self, "offsets", bounds)
        object.__setattr__(self, "image_ids", ids)
        object.__setattr__(self, "categories", labels)
        object.__setattr__(self, "_id_array", np.array(ids, dtype=np.str_))
        object.__setattr__(self, "_category_array", np.array(labels, dtype=np.str_))
        object.__setattr__(self, "_position", {i: p for p, i in enumerate(ids)})
        object.__setattr__(self, "_squared", None)
        object.__setattr__(self, "_shard_index", None)
        object.__setattr__(self, "_coarse_index", None)
        object.__setattr__(self, "_rank_index_enabled", True)
        object.__setattr__(self, "_rank_index_shards", None)
        object.__setattr__(self, "_rank_mode", "exact")

    def __setattr__(self, name: str, value: object) -> None:  # immutability guard
        raise AttributeError("PackedCorpus is immutable")

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #

    @classmethod
    def pack(
        cls,
        image_ids: Sequence[str],
        categories: Sequence[str],
        matrices: Sequence[np.ndarray],
    ) -> "PackedCorpus":
        """Stack per-image instance matrices into one packed corpus."""
        ids = tuple(image_ids)
        if len(matrices) != len(ids):
            raise DatabaseError(
                f"{len(ids)} image ids but {len(matrices)} instance matrices"
            )
        coerced = []
        for image_id, matrix in zip(ids, matrices):
            block = np.asarray(matrix, dtype=np.float64)
            if block.ndim == 1:
                block = block.reshape(1, -1)
            if block.ndim != 2 or block.shape[0] == 0 or block.shape[1] == 0:
                raise DatabaseError(
                    f"image {image_id!r} has an unusable instance matrix "
                    f"of shape {np.shape(matrix)}"
                )
            if coerced and block.shape[1] != coerced[0].shape[1]:
                raise DatabaseError(
                    f"image {image_id!r} has {block.shape[1]}-dim instances "
                    f"but the corpus holds {coerced[0].shape[1]} dims"
                )
            coerced.append(block)
        if not coerced:
            return cls(
                instances=np.zeros((0, 0)),
                offsets=np.zeros(1, dtype=np.int64),
                image_ids=(),
                categories=(),
            )
        counts = np.array([block.shape[0] for block in coerced], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(
            instances=np.vstack(coerced),
            offsets=offsets,
            image_ids=ids,
            categories=tuple(categories),
        )

    @classmethod
    def from_candidates(
        cls, candidates: Iterable[RetrievalCandidate]
    ) -> "PackedCorpus":
        """Pack an iterable of :class:`RetrievalCandidate` items."""
        items = list(candidates)
        return cls.pack(
            image_ids=[c.image_id for c in items],
            categories=[c.category for c in items],
            matrices=[c.instances for c in items],
        )

    @classmethod
    def coerce(cls, corpus) -> "PackedCorpus":
        """Accept any corpus spelling and return a packed view.

        ``corpus`` may be a :class:`PackedCorpus` (returned as-is), an
        object offering ``packed()`` (the
        :class:`~repro.core.feedback.Corpus` protocol), a legacy corpus
        offering only ``retrieval_candidates()``, or a plain iterable of
        :class:`RetrievalCandidate` items (packed on the spot).
        """
        return packed_view(corpus)

    # ------------------------------------------------------------------ #
    # Shape and access                                                    #
    # ------------------------------------------------------------------ #

    @property
    def n_bags(self) -> int:
        """Number of packed images."""
        return len(self.image_ids)

    @property
    def n_instances(self) -> int:
        """Total instances across all packed images."""
        return self.instances.shape[0]

    @property
    def n_dims(self) -> int:
        """Feature dimensionality."""
        return self.instances.shape[1]

    @property
    def lengths(self) -> np.ndarray:
        """Per-bag instance counts."""
        return np.diff(self.offsets)

    @property
    def id_array(self) -> np.ndarray:
        """Image ids as a numpy string array (parallel to the bags)."""
        return self._id_array

    @property
    def category_array(self) -> np.ndarray:
        """Categories as a numpy string array (parallel to the bags)."""
        return self._category_array

    def __len__(self) -> int:
        return self.n_bags

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._position

    def bag_instances(self, image_id: str) -> np.ndarray:
        """The instance rows of one image (a view into the stacked matrix).

        Raises:
            DatabaseError: for an unknown id.
        """
        try:
            index = self._position[image_id]
        except KeyError:
            raise DatabaseError(f"unknown image id {image_id!r}") from None
        return self.instances[self.offsets[index] : self.offsets[index + 1]]

    def instances_for(self, image_id: str) -> np.ndarray:
        """Corpus-protocol alias of :meth:`bag_instances`.

        Lets a bare :class:`PackedCorpus` stand in for a storage-layer
        corpus (the snapshot layer restores warmed corpora as packed views
        with no backing image store).
        """
        return self.bag_instances(image_id)

    def category_of(self, image_id: str) -> str:
        """Ground-truth category of one packed image (corpus protocol).

        Raises:
            DatabaseError: for an unknown id.
        """
        try:
            index = self._position[image_id]
        except KeyError:
            raise DatabaseError(f"unknown image id {image_id!r}") from None
        return self.categories[index]

    def packed(self, ids: Sequence[str] | None = None) -> "PackedCorpus":
        """Corpus-protocol spelling: itself (or a sub-selection)."""
        return self if ids is None else self.select(tuple(ids))

    def candidates(self) -> Iterator[RetrievalCandidate]:
        """Compatibility iterator over per-image candidates (views)."""
        for index, (image_id, category) in enumerate(
            zip(self.image_ids, self.categories)
        ):
            yield RetrievalCandidate(
                image_id=image_id,
                category=category,
                instances=self.instances[
                    self.offsets[index] : self.offsets[index + 1]
                ],
            )

    def select(self, ids: Sequence[str]) -> "PackedCorpus":
        """A packed sub-corpus holding ``ids`` in the given order.

        Raises:
            DatabaseError: for an unknown id.
        """
        chosen = tuple(ids)
        try:
            indices = np.array(
                [self._position[image_id] for image_id in chosen], dtype=np.int64
            )
        except KeyError as exc:
            raise DatabaseError(f"unknown image id {exc.args[0]!r}") from None
        if not chosen:
            return PackedCorpus(
                instances=np.zeros((0, self.n_dims)),
                offsets=np.zeros(1, dtype=np.int64),
                image_ids=(),
                categories=(),
            )
        lengths = self.lengths[indices]
        starts = self.offsets[:-1][indices]
        new_offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        # Gather the selected bags' rows in one fancy-index pass.
        row_index = concat_ranges(starts, lengths)
        return PackedCorpus(
            instances=self.instances[row_index],
            offsets=new_offsets,
            image_ids=chosen,
            categories=tuple(self.categories[i] for i in indices),
        )

    # ------------------------------------------------------------------ #
    # Scoring kernel                                                      #
    # ------------------------------------------------------------------ #

    def min_distances(self, concept: LearnedConcept) -> np.ndarray:
        """Per-image min weighted squared distance to the concept.

        Uses the expanded quadratic form over the stacked matrix ``X``::

            sum_j w_j (x_j - t_j)^2  =  (X^2) @ w  -  2 X @ (w t)  +  w . t^2

        where ``X^2`` is squared once per corpus and cached, so each query
        costs two matrix-vector products plus a segmented minimum per bag
        (``np.minimum.reduceat``) — no per-query ``(N, d)`` temporaries.
        Distances agree with the naive per-bag formula to ~1e-15 relative
        (clamped at zero); the equivalence suite asserts the resulting
        *orderings* are identical to the reference loop.

        Raises:
            DatabaseError: if the concept's dimensionality does not match
                the corpus.
        """
        if self.n_bags == 0:
            return np.zeros(0)
        if concept.n_dims != self.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the packed corpus "
                f"holds {self.n_dims}"
            )
        if self._squared is None:
            object.__setattr__(self, "_squared", self.instances * self.instances)
        return _expanded_min_kernel(
            self.instances, self._squared, concept, self.offsets[:-1]
        )

    def min_distances_at(
        self, concept: LearnedConcept, bag_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Per-bag min weighted squared distances for a subset of bags.

        The pruned rank path evaluates surviving bags in memory-bounded
        chunks: the selected bags' rows are gathered in one fancy-index
        pass and scored with the same expanded quadratic form as
        :meth:`min_distances` (reusing the cached squares when they exist),
        so chunked evaluation never materialises an ``(N, d)`` temporary.

        Args:
            bag_indices: positions (0-based) of the bags to score, in the
                order the distances should come back.

        Raises:
            DatabaseError: on an out-of-range index or a concept whose
                dimensionality does not match the corpus.
        """
        if concept.n_dims != self.n_dims:
            raise DatabaseError(
                f"concept has {concept.n_dims} dims but the packed corpus "
                f"holds {self.n_dims}"
            )
        chosen = np.asarray(bag_indices, dtype=np.int64).reshape(-1)
        if chosen.size == 0:
            return np.zeros(0)
        if chosen.min() < 0 or chosen.max() >= self.n_bags:
            raise DatabaseError(
                f"bag indices must lie in [0, {self.n_bags}), got "
                f"[{chosen.min()}, {chosen.max()}]"
            )
        lengths = self.lengths[chosen]
        starts = self.offsets[:-1][chosen]
        local_offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        row_index = concat_ranges(starts, lengths)
        rows = self.instances[row_index]
        squares = (
            self._squared[row_index]
            if self._squared is not None
            else np.square(rows)
        )
        return _expanded_min_kernel(rows, squares, concept, local_offsets[:-1])

    # ------------------------------------------------------------------ #
    # Rank index (repro.core.sharding)                                    #
    # ------------------------------------------------------------------ #

    def shard_index(self, n_shards: int | None = None):
        """The (cached) bound-pruning shard index over this corpus.

        Built lazily on first use — one min/max ``reduceat`` pass over the
        stacked matrix — and cached on the corpus, so the build cost is
        amortised across every subsequent query.  Because storage adapters
        drop their packed view on mutation, a stale index can never survive
        a database change.  Passing an explicit ``n_shards`` that differs
        from the cached partition re-shards cheaply (the per-bag envelopes
        are partition-independent).
        """
        from repro.core.sharding import ShardIndex

        index = self._shard_index
        if n_shards is None:
            n_shards = self._rank_index_shards
        if index is None:
            index = ShardIndex.build(self, n_shards=n_shards)
            object.__setattr__(self, "_shard_index", index)
        elif n_shards is not None and index.n_shards != n_shards:
            index = index.reshard(n_shards)
            object.__setattr__(self, "_shard_index", index)
        return index

    @property
    def cached_shard_index(self):
        """The cached shard index, or ``None`` — never triggers a build.

        The snapshot layer uses this to decide whether the index rides
        along with a warm-worker snapshot.
        """
        return self._shard_index

    def adopt_shard_index(self, index) -> None:
        """Install an externally built shard index (snapshot restore path).

        Raises:
            DatabaseError: if the index does not describe this corpus.
        """
        if index.n_bags != self.n_bags or index.n_dims != self.n_dims:
            raise DatabaseError(
                f"adopted shard index covers {index.n_bags} bags x "
                f"{index.n_dims} dims but the corpus holds "
                f"{self.n_bags} x {self.n_dims}"
            )
        object.__setattr__(self, "_shard_index", index)

    def coarse_index(self):
        """The (cached) hash-coded coarse index over this corpus.

        Built lazily on first use — one summary pass plus the sign
        projections (:class:`repro.index.ann.CoarseIndex`) — and cached
        like the shard index, reusing the cached shard index's envelopes
        when one exists.  Adapters drop their packed view on mutation, so
        a stale coarse tier can never outlive a corpus change.
        """
        from repro.index.ann import CoarseIndex

        coarse = self._coarse_index
        if coarse is None:
            coarse = CoarseIndex.build(self, index=self._shard_index)
            object.__setattr__(self, "_coarse_index", coarse)
        return coarse

    @property
    def cached_coarse_index(self):
        """The cached coarse index, or ``None`` — never triggers a build."""
        return self._coarse_index

    def adopt_coarse_index(self, coarse) -> None:
        """Install an externally built coarse index (snapshot restore path).

        Raises:
            DatabaseError: if the index does not describe this corpus.
        """
        if coarse.n_bags != self.n_bags or coarse.coder.n_dims != self.n_dims:
            raise DatabaseError(
                f"adopted coarse index covers {coarse.n_bags} bags x "
                f"{coarse.coder.n_dims} dims but the corpus holds "
                f"{self.n_bags} x {self.n_dims}"
            )
        object.__setattr__(self, "_coarse_index", coarse)

    def reordered_by_centroid(
        self, *, group_size: int | None = None
    ) -> "tuple[PackedCorpus, np.ndarray]":
        """The same bags re-packed in clustered-centroid order.

        Returns ``(reordered corpus, permutation)`` where
        ``permutation[i]`` is the old position of the bag now at position
        ``i`` (:func:`repro.index.ann.centroid_order` — id-stable, so the
        produced bag sequence is identical for any ingestion order of the
        same bags).  Rankings over the reordered corpus are
        ordering-identical to the original (results order by ``(distance,
        image_id)`` only — property-tested against ``rank_by_loop``);
        what changes is pruning efficiency, because consecutive bags now
        share tight group envelopes regardless of ingestion order.  The
        reordered view inherits this view's rank policy; its shard/coarse
        caches start empty (both are position-dependent).
        """
        from repro.index.ann import centroid_order

        permutation = centroid_order(self, group_size=group_size)
        ordered = self.select(tuple(self._id_array[permutation].tolist()))
        ordered.configure_rank_index(
            enabled=self._rank_index_enabled,
            n_shards=self._rank_index_shards,
            rank_mode=self._rank_mode,
        )
        return ordered, permutation

    def configure_rank_index(
        self,
        *,
        enabled: bool | None = None,
        n_shards: "int | None" = _UNSET,
        rank_mode: str | None = None,
    ) -> None:
        """Set the serving policy for the bound-pruned rank index.

        The policy travels with the corpus view (it is cache state, like
        the squared-instance cache, not corpus data): ``enabled=False``
        makes :class:`Ranker` rank this corpus exhaustively regardless of
        size, ``n_shards`` pins the shard count the index is built with
        (``None`` clears a pin back to automatic), ``rank_mode`` selects
        between the exact and the hash-filtered approximate serving path
        (:data:`RANK_MODES`).  Omitted arguments leave their part of the
        policy unchanged.

        Raises:
            DatabaseError: on a non-positive ``n_shards`` or an unknown
                ``rank_mode``.
        """
        if enabled is not None:
            object.__setattr__(self, "_rank_index_enabled", bool(enabled))
        if n_shards is not _UNSET:
            if n_shards is not None and n_shards < 1:
                raise DatabaseError(f"n_shards must be >= 1, got {n_shards}")
            object.__setattr__(
                self,
                "_rank_index_shards",
                None if n_shards is None else int(n_shards),
            )
        if rank_mode is not None:
            if rank_mode not in RANK_MODES:
                raise DatabaseError(
                    f"rank_mode must be one of {RANK_MODES}, got {rank_mode!r}"
                )
            object.__setattr__(self, "_rank_mode", rank_mode)

    @property
    def rank_index_enabled(self) -> bool:
        """Whether :class:`Ranker` may route this corpus through the index."""
        return self._rank_index_enabled

    @property
    def rank_index_shards(self) -> int | None:
        """Pinned shard count for the rank index (``None`` = automatic)."""
        return self._rank_index_shards

    @property
    def rank_mode(self) -> str:
        """The serving rank mode this view carries (:data:`RANK_MODES`)."""
        return self._rank_mode

    def __repr__(self) -> str:
        return (
            f"PackedCorpus({self.n_bags} images, {self.n_instances} instances, "
            f"{self.n_dims} dims)"
        )


class CorpusPacker:
    """Cache-or-pack policy shared by the corpus adapters.

    Every adapter (the image database, the colour corpora) wants the same
    behaviour: pack the *full* corpus once and cache it, answer subset
    requests from the cache, pack a subset directly when the cache does
    not exist yet (never touching images outside the subset — they may be
    unfeaturisable), and drop the cache when the owner's ``version``
    (a mutation counter) changes.
    """

    def __init__(self) -> None:
        self._packed: PackedCorpus | None = None
        self._version = None

    def cached(self, version=None) -> PackedCorpus | None:
        """The cached full view, or ``None`` when absent or stale.

        Lets persistence snapshot the packed corpus without forcing a
        (potentially expensive) build on databases that never ranked.
        """
        if self._version != version:
            return None
        return self._packed

    def adopt(self, packed: PackedCorpus, version=None) -> None:
        """Install an externally built full view (snapshot restore path)."""
        self._packed = packed
        self._version = version

    def packed(
        self,
        ids: Sequence[str] | None,
        *,
        all_ids: Sequence[str],
        category_of,
        instances_for,
        version=None,
    ) -> PackedCorpus:
        """The packed view for ``ids`` (the full corpus when ``None``).

        Args:
            ids: requested image ids, in order; ``None`` means all.
            all_ids: every id the corpus covers, in canonical order.
            category_of: ``image_id -> category`` lookup.
            instances_for: ``image_id -> (n, d) matrix`` lookup.
            version: the owner's mutation counter; a change invalidates
                the cached full view.
        """
        if self._version != version:
            self._packed = None
        if self._packed is not None:
            return self._packed if ids is None else self._packed.select(tuple(ids))
        chosen = tuple(all_ids if ids is None else ids)
        packed = PackedCorpus.pack(
            image_ids=chosen,
            categories=tuple(category_of(i) for i in chosen),
            matrices=[instances_for(i) for i in chosen],
        )
        if ids is None:
            self._packed = packed
            self._version = version
        return packed


@dataclass(frozen=True)
class RankedImage:
    """One entry of a retrieval ranking.

    Attributes:
        rank: 0-based position in the ranking (0 = best match).
        image_id: the image's database id.
        category: ground-truth category (used only for evaluation).
        distance: the image's min-instance weighted distance to the concept.
    """

    rank: int
    image_id: str
    category: str
    distance: float


class RetrievalResult:
    """An ordered retrieval ranking with evaluation helpers.

    A result may be *truncated*: a ``top_k`` ranking keeps only the best
    ``k`` entries while :attr:`total_candidates` still reports how many
    images competed.  Helpers that need unseen tail entries
    (:meth:`precision_at` beyond the kept prefix) refuse to guess on a
    truncated result.
    """

    def __init__(
        self, ranked: Sequence[RankedImage], total_candidates: int | None = None
    ) -> None:
        self._ranked = tuple(ranked)
        for position, entry in enumerate(self._ranked):
            if entry.rank != position:
                raise DatabaseError(
                    f"ranking entry {entry.image_id!r} has rank {entry.rank}, "
                    f"expected {position}"
                )
        if total_candidates is None:
            total_candidates = len(self._ranked)
        if total_candidates < len(self._ranked):
            raise DatabaseError(
                f"total_candidates ({total_candidates}) cannot be smaller "
                f"than the ranking length ({len(self._ranked)})"
            )
        self._total_candidates = int(total_candidates)

    @property
    def ranked(self) -> tuple[RankedImage, ...]:
        """All kept entries, best match first."""
        return self._ranked

    @property
    def total_candidates(self) -> int:
        """How many images competed, including any truncated away."""
        return self._total_candidates

    @property
    def is_truncated(self) -> bool:
        """True when a ``top_k`` request dropped lower-ranked entries."""
        return len(self._ranked) < self._total_candidates

    def truncate(self, k: int | None) -> "RetrievalResult":
        """The same ranking keeping only the best ``k`` entries.

        ``total_candidates`` is preserved, so the result remembers how many
        images it was ranked against.  ``None`` returns ``self`` unchanged.
        """
        if k is None:
            return self
        if k < 0:
            raise DatabaseError(f"k must be >= 0, got {k}")
        if k >= len(self._ranked):
            return self
        return RetrievalResult(
            self._ranked[:k], total_candidates=self._total_candidates
        )

    def top(self, k: int) -> tuple[RankedImage, ...]:
        """The best ``k`` matches.

        When ``k`` exceeds the (possibly truncated) ranking length, every
        kept entry is returned — ``top`` never invents entries and never
        raises for an over-large ``k``.
        """
        if k < 0:
            raise DatabaseError(f"k must be >= 0, got {k}")
        return self._ranked[:k]

    @property
    def image_ids(self) -> tuple[str, ...]:
        """Image ids in ranked order."""
        return tuple(entry.image_id for entry in self._ranked)

    @property
    def distances(self) -> np.ndarray:
        """Distances in ranked order (non-decreasing)."""
        return np.array([entry.distance for entry in self._ranked])

    def relevance(self, target_category: str) -> np.ndarray:
        """Boolean relevance mask in ranked order for a target category."""
        return np.array(
            [entry.category == target_category for entry in self._ranked], dtype=bool
        )

    def false_positives(
        self, target_category: str, limit: int, exclude: Iterable[str] = ()
    ) -> tuple[RankedImage, ...]:
        """The top-ranked *incorrect* images (the feedback loop's fodder).

        Operates on the kept entries only; on a truncated result the tail
        beyond ``top_k`` is never consulted.

        Args:
            target_category: what the user is searching for.
            limit: how many false positives to return at most.
            exclude: image ids to skip (e.g. existing examples).
        """
        if limit < 0:
            raise DatabaseError(f"limit must be >= 0, got {limit}")
        excluded = set(exclude)
        found: list[RankedImage] = []
        for entry in self._ranked:
            if len(found) >= limit:
                break
            if entry.category != target_category and entry.image_id not in excluded:
                found.append(entry)
        return tuple(found)

    def precision_at(self, k: int, target_category: str) -> float:
        """Precision among the top ``k`` results.

        When ``k`` exceeds the length of a *complete* ranking, precision is
        computed over the full ranking (there is nothing below it).  On a
        *truncated* ranking the entries beyond the kept prefix are unknown,
        so asking for ``k`` past the prefix raises instead of silently
        returning a wrong number.

        Raises:
            DatabaseError: for ``k < 1``, or ``k`` beyond the kept prefix
                of a truncated ranking.
        """
        if k < 1:
            raise DatabaseError(f"k must be >= 1, got {k}")
        if k > len(self._ranked) and self.is_truncated:
            raise DatabaseError(
                f"precision@{k} is undefined: the ranking was truncated to "
                f"its top {len(self._ranked)} of {self._total_candidates} "
                "candidates"
            )
        top = self._ranked[:k]
        if not top:
            return 0.0
        hits = sum(1 for entry in top if entry.category == target_category)
        return hits / len(top)

    def __len__(self) -> int:
        return len(self._ranked)

    def __iter__(self) -> Iterator[RankedImage]:
        return iter(self._ranked)

    def __repr__(self) -> str:
        if self.is_truncated:
            return (
                f"RetrievalResult(top {len(self._ranked)} of "
                f"{self._total_candidates} images)"
            )
        return f"RetrievalResult({len(self._ranked)} images)"


def _ephemeral_view(packed: PackedCorpus) -> PackedCorpus:
    """Mark a view no cache owns as non-routable for the rank index.

    A shard index built on such a view dies with it when the caller
    returns, so routing would pay an index build *plus* the bound pass on
    every query — strictly more than one exhaustive kernel pass.
    """
    if packed.rank_index_enabled:
        packed.configure_rank_index(enabled=False)
    return packed


def packed_view(corpus, ids: Sequence[str] | None = None) -> PackedCorpus:
    """The best packed view a corpus offers for the given ids.

    Accepts every corpus spelling: a :class:`PackedCorpus` (sub-selected
    when ``ids`` is given), an object offering ``packed(ids)`` (answered
    from its cache), a legacy corpus offering only
    ``retrieval_candidates(ids)``, or a plain iterable of
    :class:`RetrievalCandidate` items (``ids`` must be ``None``).

    Views this function creates that no adapter cache owns — id subsets,
    legacy re-packs, raw-iterable packs — come back with the rank index
    disabled (:meth:`PackedCorpus.configure_rank_index`): they are
    discarded when the caller returns, so :class:`Ranker` must never
    build a throwaway shard index on them.  Caller-held views (a
    :class:`PackedCorpus` passed directly, an adapter's cached full view)
    keep their own policy.
    """
    if isinstance(corpus, PackedCorpus):
        if ids is None:
            return corpus
        return _ephemeral_view(corpus.select(tuple(ids)))
    packer = getattr(corpus, "packed", None)
    if callable(packer):
        view = packer(ids)
        return view if ids is None else _ephemeral_view(view)
    legacy = getattr(corpus, "retrieval_candidates", None)
    if callable(legacy):
        if ids is None:
            # The legacy protocol took an explicit id list; recover the
            # whole-corpus spelling from ``image_ids`` when offered.
            all_ids = getattr(corpus, "image_ids", None)
            if all_ids is not None:
                ids = tuple(all_ids)
        return _ephemeral_view(PackedCorpus.from_candidates(legacy(ids)))
    return _ephemeral_view(PackedCorpus.from_candidates(corpus))


#: Bag count above which :class:`Ranker` routes a ``top_k`` query through
#: the bound-pruned shard index by default.  Below it the exhaustive kernel
#: is already a handful of microseconds and the index build would never pay
#: for itself.
AUTO_SHARD_MIN_BAGS = 4096


def top_order(
    ids: np.ndarray, distances: np.ndarray, top_k: int | None
) -> np.ndarray:
    """Indices of the best entries in ``(distance, image_id)`` order.

    The exact prefix of the full id-tie-broken lexsort.  When ``top_k`` is
    set and smaller than the pool, an ``np.partition`` pass finds the kth
    smallest distance and only the contenders at or below it (distance ties
    kept, so id tie-breaking stays exact) are lexsorted — O(N + c log c)
    instead of the O(N log N) full sort the serving path used to pay.
    """
    if top_k is None or top_k >= ids.size:
        return np.lexsort((ids, distances))[:top_k]
    kth = np.partition(distances, top_k - 1)[top_k - 1]
    contenders = np.nonzero(distances <= kth)[0]
    order = contenders[np.lexsort((ids[contenders], distances[contenders]))]
    return order[:top_k]


def keep_mask(
    packed: PackedCorpus,
    exclude: Iterable[str] = (),
    category_filter: str | None = None,
) -> np.ndarray:
    """Boolean mask of the bags surviving id exclusion and category filtering."""
    keep = np.ones(packed.n_bags, dtype=bool)
    excluded = set(exclude)
    if excluded:
        keep &= ~np.isin(packed.id_array, sorted(excluded))
    if category_filter is not None:
        keep &= packed.category_array == category_filter
    return keep


def build_result(
    ids: np.ndarray,
    categories: np.ndarray,
    distances: np.ndarray,
    order: np.ndarray,
    total: int,
) -> RetrievalResult:
    """Materialise a :class:`RetrievalResult` from ordered array indices.

    ``tolist()`` converts to native str/float in bulk — far cheaper than
    per-element numpy scalar coercion when building the result.
    """
    ranked = [
        RankedImage(rank=position, image_id=image_id, category=category,
                    distance=distance)
        for position, (image_id, category, distance) in enumerate(
            zip(
                ids[order].tolist(),
                categories[order].tolist(),
                distances[order].tolist(),
            )
        )
    ]
    return RetrievalResult(ranked, total_candidates=total)


class Ranker:
    """Vectorised top-k ranking of a corpus against a learned concept.

    The serving hot path: scores every candidate with one broadcast
    weighted-distance kernel (:meth:`PackedCorpus.min_distances`), orders by
    ``(distance, image_id)`` — identical tie-breaking to the legacy loop,
    via :func:`top_order`'s partial sort when ``top_k`` is set — and
    truncates to the best ``top_k`` while preserving
    :attr:`RetrievalResult.total_candidates`.

    Large corpora take the bound-pruned path instead: a ``top_k`` query
    over a :class:`PackedCorpus` of at least ``min_shard_bags`` bags is
    routed through :class:`repro.core.sharding.ShardedRanker`, which skips
    every bag whose geometric lower bound proves it cannot enter the top
    ``k``.  The routed ranking is ordering-identical to the exhaustive one
    (the pruning bound is exact), so routing is purely a performance
    decision.

    ``rank_mode="approx"`` (set explicitly, or carried by the corpus view
    via :meth:`PackedCorpus.configure_rank_index`) routes ``top_k``
    queries through the hash-coded coarse tier
    (:class:`repro.index.ann.ApproxRanker`): a banded code lookup selects
    a bounded candidate set, the candidates are re-ranked exactly, and
    requests the filter cannot help fall back to the exact path (counted
    on the corpus's coarse index).  Approximate routing respects the same
    ``rank_index_enabled`` policy as shard routing — an ephemeral view
    never pays a throwaway index build.

    Args:
        auto_shard: allow routing through the shard index (default on).
        min_shard_bags: corpus size at which routing starts.
        workers: thread-pool width for the sharded path (``None`` = one
            thread per shard, capped by the machine).
        rank_mode: ``"exact"`` / ``"approx"`` to override the corpus
            view's carried mode; ``None`` (default) respects it.
    """

    def __init__(
        self,
        *,
        auto_shard: bool = True,
        min_shard_bags: int = AUTO_SHARD_MIN_BAGS,
        workers: int | None = None,
        rank_mode: str | None = None,
    ) -> None:
        if min_shard_bags < 1:
            raise DatabaseError(
                f"min_shard_bags must be >= 1, got {min_shard_bags}"
            )
        if workers is not None and workers < 1:
            raise DatabaseError(f"workers must be >= 1 or None, got {workers}")
        if rank_mode is not None and rank_mode not in RANK_MODES:
            raise DatabaseError(
                f"rank_mode must be one of {RANK_MODES} or None, "
                f"got {rank_mode!r}"
            )
        self._auto_shard = auto_shard
        self._min_shard_bags = min_shard_bags
        self._workers = workers
        self._rank_mode = rank_mode

    def rank(
        self,
        concept: LearnedConcept,
        corpus,
        *,
        top_k: int | None = None,
        exclude: Iterable[str] = (),
        category_filter: str | None = None,
    ) -> RetrievalResult:
        """Rank a corpus, best match first.

        Args:
            concept: the learned ``(t, w)``.
            corpus: a :class:`PackedCorpus`, an object offering
                ``packed()``, or an iterable of
                :class:`RetrievalCandidate` items.
            top_k: keep only the best ``top_k`` entries (``None`` keeps
                the full ranking); the result still reports
                ``total_candidates``.
            exclude: image ids to leave out (e.g. the training examples).
            category_filter: keep only candidates of this ground-truth
                category (evaluation workflows).

        Ties in distance are broken by image id so rankings are
        deterministic across runs.

        Raises:
            DatabaseError: on a non-positive ``top_k`` or a concept whose
                dimensionality does not match the corpus.
        """
        if top_k is not None and top_k < 1:
            raise DatabaseError(f"top_k must be >= 1 or None, got {top_k}")
        packed = PackedCorpus.coerce(corpus)
        mode = self._rank_mode if self._rank_mode is not None else packed.rank_mode
        if (
            mode == "approx"
            and top_k is not None
            and packed.rank_index_enabled
            and packed.n_bags > 0
        ):
            from repro.index.ann import ApproxRanker

            return ApproxRanker(workers=self._workers).rank(
                concept,
                packed,
                top_k=top_k,
                exclude=exclude,
                category_filter=category_filter,
            )
        if (
            self._auto_shard
            and top_k is not None
            and packed.rank_index_enabled
            and packed.n_bags >= self._min_shard_bags
        ):
            from repro.core.sharding import ShardedRanker

            return ShardedRanker(workers=self._workers).rank(
                concept,
                packed,
                top_k=top_k,
                exclude=exclude,
                category_filter=category_filter,
            )
        if packed.n_bags == 0:
            return RetrievalResult((), total_candidates=0)
        keep = keep_mask(packed, exclude, category_filter)
        if not keep.any():
            return RetrievalResult((), total_candidates=0)
        distances = packed.min_distances(concept)[keep]
        ids = packed.id_array[keep]
        categories = packed.category_array[keep]
        order = top_order(ids, distances, top_k)
        return build_result(ids, categories, distances, order, int(ids.size))


def rank_by_loop(
    concept: LearnedConcept,
    candidates: Iterable[RetrievalCandidate],
    exclude: Iterable[str] = (),
) -> RetrievalResult:
    """The legacy per-bag ranking loop, kept as the reference implementation.

    Scores one candidate at a time with :meth:`LearnedConcept.bag_distance`
    and sorts in Python.  The vectorised :class:`Ranker` is asserted
    order-identical to this function by the equivalence suite
    (``tests/test_rank_equivalence.py``) and raced against it in
    ``benchmarks/bench_rank_corpus.py``; production code should use
    :class:`Ranker`.
    """
    excluded = set(exclude)
    scored: list[tuple[float, str, str]] = []
    for candidate in candidates:
        if candidate.image_id in excluded:
            continue
        distance = concept.bag_distance(candidate.instances)
        scored.append((distance, candidate.image_id, candidate.category))
    scored.sort(key=lambda item: (item[0], item[1]))
    ranked = [
        RankedImage(rank=position, image_id=image_id, category=category, distance=distance)
        for position, (distance, image_id, category) in enumerate(scored)
    ]
    return RetrievalResult(ranked)


class RetrievalEngine:
    """Compatibility facade over :class:`Ranker`.

    Older call sites built against the per-bag engine keep working — and
    now get the vectorised kernel.  Inputs the columnar representation
    cannot express (duplicate image ids in a candidate list) fall back to
    the reference loop, so the legacy contract holds in full.  New code
    should use :class:`Ranker` directly, which also exposes ``top_k`` and
    ``category_filter``.
    """

    def __init__(self) -> None:
        self._ranker = Ranker()

    def rank(
        self,
        concept: LearnedConcept,
        candidates: Iterable[RetrievalCandidate],
        exclude: Iterable[str] = (),
    ) -> RetrievalResult:
        """Produce the full ranking, best match first (delegates to Ranker)."""
        items = candidates if isinstance(candidates, (list, tuple)) else list(candidates)
        try:
            packed = PackedCorpus.from_candidates(items)
        except DatabaseError:
            return rank_by_loop(concept, items, exclude=exclude)
        return self._ranker.rank(concept, packed, exclude=exclude)
