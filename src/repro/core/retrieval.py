"""Ranking an image database against a learned concept (Section 3.5).

After training, the system "goes to the image database and ranks all images
based on their weighted Euclidean distances to the ideal point", where an
image's distance is the minimum over its instances.  This module implements
that ranking over any *corpus* — an object yielding
:class:`RetrievalCandidate` items — so the engine is independent of the
storage layer (the :class:`~repro.database.store.ImageDatabase` provides the
corpus view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.concept import LearnedConcept
from repro.errors import DatabaseError


@dataclass(frozen=True)
class RetrievalCandidate:
    """One rankable image: its id, ground-truth category and instances."""

    image_id: str
    category: str
    instances: np.ndarray


@dataclass(frozen=True)
class RankedImage:
    """One entry of a retrieval ranking.

    Attributes:
        rank: 0-based position in the ranking (0 = best match).
        image_id: the image's database id.
        category: ground-truth category (used only for evaluation).
        distance: the image's min-instance weighted distance to the concept.
    """

    rank: int
    image_id: str
    category: str
    distance: float


class RetrievalResult:
    """An ordered retrieval ranking with evaluation helpers."""

    def __init__(self, ranked: Sequence[RankedImage]):
        self._ranked = tuple(ranked)
        for position, entry in enumerate(self._ranked):
            if entry.rank != position:
                raise DatabaseError(
                    f"ranking entry {entry.image_id!r} has rank {entry.rank}, "
                    f"expected {position}"
                )

    @property
    def ranked(self) -> tuple[RankedImage, ...]:
        """All entries, best match first."""
        return self._ranked

    def top(self, k: int) -> tuple[RankedImage, ...]:
        """The best ``k`` matches."""
        if k < 0:
            raise DatabaseError(f"k must be >= 0, got {k}")
        return self._ranked[:k]

    @property
    def image_ids(self) -> tuple[str, ...]:
        """Image ids in ranked order."""
        return tuple(entry.image_id for entry in self._ranked)

    @property
    def distances(self) -> np.ndarray:
        """Distances in ranked order (non-decreasing)."""
        return np.array([entry.distance for entry in self._ranked])

    def relevance(self, target_category: str) -> np.ndarray:
        """Boolean relevance mask in ranked order for a target category."""
        return np.array(
            [entry.category == target_category for entry in self._ranked], dtype=bool
        )

    def false_positives(
        self, target_category: str, limit: int, exclude: Iterable[str] = ()
    ) -> tuple[RankedImage, ...]:
        """The top-ranked *incorrect* images (the feedback loop's fodder).

        Args:
            target_category: what the user is searching for.
            limit: how many false positives to return at most.
            exclude: image ids to skip (e.g. existing examples).
        """
        if limit < 0:
            raise DatabaseError(f"limit must be >= 0, got {limit}")
        excluded = set(exclude)
        found: list[RankedImage] = []
        for entry in self._ranked:
            if len(found) >= limit:
                break
            if entry.category != target_category and entry.image_id not in excluded:
                found.append(entry)
        return tuple(found)

    def precision_at(self, k: int, target_category: str) -> float:
        """Precision among the top ``k`` results."""
        if k < 1:
            raise DatabaseError(f"k must be >= 1, got {k}")
        top = self._ranked[:k]
        if not top:
            return 0.0
        hits = sum(1 for entry in top if entry.category == target_category)
        return hits / len(top)

    def __len__(self) -> int:
        return len(self._ranked)

    def __iter__(self) -> Iterator[RankedImage]:
        return iter(self._ranked)

    def __repr__(self) -> str:
        return f"RetrievalResult({len(self._ranked)} images)"


class RetrievalEngine:
    """Ranks corpus candidates by min-instance distance to a concept."""

    def rank(
        self,
        concept: LearnedConcept,
        candidates: Iterable[RetrievalCandidate],
        exclude: Iterable[str] = (),
    ) -> RetrievalResult:
        """Produce the full ranking, best match first.

        Args:
            concept: the learned ``(t, w)``.
            candidates: the corpus to rank.
            exclude: image ids to leave out (e.g. the training examples).

        Ties in distance are broken by image id so rankings are
        deterministic across runs.
        """
        excluded = set(exclude)
        scored: list[tuple[float, str, str]] = []
        for candidate in candidates:
            if candidate.image_id in excluded:
                continue
            distance = concept.bag_distance(candidate.instances)
            scored.append((distance, candidate.image_id, candidate.category))
        scored.sort(key=lambda item: (item[0], item[1]))
        ranked = [
            RankedImage(rank=position, image_id=image_id, category=category, distance=distance)
            for position, (distance, image_id, category) in enumerate(scored)
        ]
        return RetrievalResult(ranked)
