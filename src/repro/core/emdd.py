"""EM-DD: expectation-maximisation Diverse Density (post-paper extension).

The paper's training cost is dominated by the noisy-or objective, whose
every evaluation touches *all* instances of *all* bags.  EM-DD (Zhang &
Goldman, NIPS 2001) — the best-known successor to the Diverse Density
algorithm this paper builds on — replaces the noisy-or with an
expectation-maximisation loop:

* **E-step**: with the current concept ``(t, w)``, select from every bag the
  single instance most likely to be the bag's representative (the closest
  one under the weighted distance);
* **M-step**: maximise the *single-instance* DD objective — each bag
  reduced to its representative — which is far cheaper and smoother;
* iterate until the selected representatives stop changing or the NLL
  stops improving.

The result is a drop-in alternative trainer with the same inputs and
outputs as :class:`~repro.core.diverse_density.DiverseDensityTrainer`,
including the two execution engines:

* ``engine="batched"`` (default) runs every restart's EM loop in lockstep —
  the E-step distances of all still-active restarts come from one
  ``(R, n_instances)`` tensor, and the final full-objective refinement
  scores (which make EM-DD concepts comparable with plain DD concepts) are
  evaluated for the whole restart population in a single batched call.
  ``restart_prune_margin`` freezes restarts whose reduced NLL trails the
  incumbent best.  M-steps operate on per-restart reduced bag sets and run
  per restart in both engines, so the two engines are bit-identical when
  pruning is off.
* ``engine="sequential"`` runs one restart at a time, as the original
  implementation did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bags.bag import Bag, BagSet
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import (
    ENGINES,
    ExtraStart,
    StartRecord,
    TrainingResult,
    select_restart_points,
)
from repro.core.engine import RestartMasks
from repro.core.objective import (
    BatchedDiverseDensityObjective,
    DiverseDensityObjective,
    batched_weighted_distances,
)
from repro.core.schemes import WeightScheme, make_scheme
from repro.errors import TrainingError


@dataclass(frozen=True)
class EMDDConfig:
    """Configuration of the EM-DD trainer.

    Attributes:
        inner_scheme: weight treatment used in each M-step (any of the four
            paper schemes by name, or a scheme object).
        beta / alpha: forwarded to the named scheme.
        max_em_iterations: cap on E/M alternations per restart.
        tolerance: stop when the NLL improves by less than this.
        max_inner_iterations: per-M-step solver cap.
        start_bag_subset: positive-bag restart subset (Section 4.3 carries
            over unchanged).
        start_instance_stride: restart thinning within each start bag.
        seed: RNG seed for the subset choice.
        engine: ``"batched"`` (lockstep EM with batched E-steps and final
            scoring, the default) or ``"sequential"`` (one restart at a
            time).
        restart_prune_margin: batched engine only — freeze a restart whose
            reduced NLL trails the incumbent best by more than this margin;
            ``None`` disables pruning.
    """

    inner_scheme: WeightScheme | str = "identical"
    beta: float = 0.5
    alpha: float = 50.0
    max_em_iterations: int = 10
    tolerance: float = 1e-6
    max_inner_iterations: int = 60
    start_bag_subset: int | None = None
    start_instance_stride: int = 1
    seed: int = 0
    engine: str = "batched"
    restart_prune_margin: float | None = None

    def __post_init__(self) -> None:
        if self.max_em_iterations < 1:
            raise TrainingError(
                f"max_em_iterations must be >= 1, got {self.max_em_iterations}"
            )
        if self.tolerance < 0:
            raise TrainingError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.start_instance_stride < 1:
            raise TrainingError(
                f"start_instance_stride must be >= 1, got {self.start_instance_stride}"
            )
        if self.engine not in ENGINES:
            raise TrainingError(
                f"unknown training engine {self.engine!r}; known: {', '.join(ENGINES)}"
            )
        if self.restart_prune_margin is not None and self.restart_prune_margin < 0:
            raise TrainingError(
                f"restart_prune_margin must be >= 0 or None, got {self.restart_prune_margin}"
            )

    def resolve_scheme(self) -> WeightScheme:
        """The M-step scheme object."""
        if isinstance(self.inner_scheme, WeightScheme):
            return self.inner_scheme
        return make_scheme(
            self.inner_scheme,
            beta=self.beta,
            alpha=self.alpha,
            max_iterations=self.max_inner_iterations,
        )

    def fingerprint(self) -> str:
        """Stable identity string for concept-cache keys."""
        scheme = self.resolve_scheme()
        return "|".join(
            [
                "emdd",
                f"scheme={scheme.fingerprint()}",
                f"em={self.max_em_iterations}",
                f"tol={self.tolerance:g}",
                f"subset={self.start_bag_subset}",
                f"stride={self.start_instance_stride}",
                f"seed={self.seed}",
                f"engine={self.engine}",
                f"prune={self.restart_prune_margin}",
            ]
        )


class EMDDTrainer:
    """EM-DD with multi-restart, mirroring the DD trainer's interface."""

    def __init__(self, config: EMDDConfig | None = None) -> None:
        self._config = config or EMDDConfig()
        self._scheme = self._config.resolve_scheme()

    @property
    def config(self) -> EMDDConfig:
        """The trainer configuration."""
        return self._config

    @property
    def fingerprint(self) -> str:
        """Concept-cache identity of this trainer (see ``EMDDConfig``)."""
        return self._config.fingerprint()

    def train(
        self, bag_set: BagSet, extra_starts: Sequence[ExtraStart] = ()
    ) -> TrainingResult:
        """Run EM-DD from every configured restart; keep the best concept.

        Args:
            bag_set: the labelled example bags.
            extra_starts: additional ``(t, w)`` seeds appended after the
                positive-instance restarts.

        Raises:
            BagError: if the set has no positive bag.
            TrainingError: if no restart produced a finite optimum.
        """
        bag_set.validate_for_training()
        started_at = time.perf_counter()
        full_objective = BatchedDiverseDensityObjective(bag_set)
        starts = select_restart_points(
            bag_set,
            subset=self._config.start_bag_subset,
            stride=self._config.start_instance_stride,
            seed=self._config.seed,
            extra_starts=extra_starts,
        )

        if self._config.engine == "batched":
            records, best = self._train_batched(bag_set, full_objective, starts)
        else:
            records, best = self._train_sequential(bag_set, full_objective, starts)

        if best is None:
            raise TrainingError("no EM-DD restart produced a finite optimum")
        n_pruned = sum(1 for record in records if record.pruned)
        elapsed = time.perf_counter() - started_at
        nll, t, w = best
        concept = LearnedConcept(
            t=t,
            w=w,
            nll=nll,
            scheme=f"emdd({self._scheme.describe()})",
            metadata={
                "n_starts": len(records),
                "n_starts_pruned": n_pruned,
                "engine": self._config.engine,
                "elapsed_seconds": elapsed,
                "n_positive_bags": bag_set.n_positive,
                "n_negative_bags": bag_set.n_negative,
            },
        )
        return TrainingResult(
            concept=concept,
            starts=tuple(records),
            n_starts=len(records),
            elapsed_seconds=elapsed,
            n_starts_pruned=n_pruned,
        )

    # ------------------------------------------------------------------ #
    # Engines                                                             #
    # ------------------------------------------------------------------ #

    def _train_sequential(
        self,
        bag_set: BagSet,
        full_objective: BatchedDiverseDensityObjective,
        starts: list[tuple[str, int, np.ndarray, np.ndarray | None]],
    ) -> tuple[list[StartRecord], tuple[float, np.ndarray, np.ndarray] | None]:
        """One restart at a time (the historical path)."""
        best: tuple[float, np.ndarray, np.ndarray] | None = None
        records: list[StartRecord] = []
        for bag_id, instance_index, t0, w0 in starts:
            t, w, _, n_iterations = self._run_em(bag_set, t0, w0)
            # Score restarts on the *full* noisy-or objective so EM-DD
            # concepts are comparable with plain DD concepts.
            full_nll = float(
                full_objective.value(t.reshape(1, -1), w.reshape(1, -1))[0]
            )
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=full_nll,
                    n_iterations=n_iterations,
                    converged=True,
                )
            )
            if np.isfinite(full_nll) and (best is None or full_nll < best[0]):
                best = (full_nll, t, w)
        return records, best

    def _train_batched(
        self,
        bag_set: BagSet,
        full_objective: BatchedDiverseDensityObjective,
        starts: list[tuple[str, int, np.ndarray, np.ndarray | None]],
    ) -> tuple[list[StartRecord], tuple[float, np.ndarray, np.ndarray] | None]:
        """All restarts' EM loops in lockstep with batched E-steps."""
        n_dims = bag_set.n_dims
        n_restarts = len(starts)
        all_x, spans = self._stacked_bags(bag_set)
        all_sq = all_x * all_x

        t = np.vstack([t0 for _, _, t0, _ in starts])
        w = np.ones((n_restarts, n_dims))
        for row, (_, _, _, w0) in enumerate(starts):
            if w0 is not None:
                w[row] = np.asarray(w0, dtype=np.float64).reshape(-1)

        masks = RestartMasks(n_restarts, self._config.max_em_iterations)
        reduced_nll = np.full(n_restarts, np.inf)
        previous_selection: list[tuple[int, ...] | None] = [None] * n_restarts
        total_inner = np.zeros(n_restarts, dtype=np.int64)

        for iteration in range(self._config.max_em_iterations):
            rows = np.flatnonzero(masks.active)
            if rows.size == 0:
                break
            # Batched E-step: one distance tensor for every active restart.
            d2 = batched_weighted_distances(all_x, all_sq, t[rows], w[rows])
            chosen = np.stack(
                [d2[:, s:e].argmin(axis=1) for s, e in spans], axis=1
            )
            # M-steps stay per restart: every restart owns its own reduced
            # bag set, so there is no shared tensor to batch over.
            for local, row in enumerate(rows):
                selection = tuple(int(v) for v in chosen[local])
                reduced = self._reduced_bag_set(bag_set, selection)
                objective = DiverseDensityObjective(reduced)
                result = self._scheme.optimize(objective, t[row], w0=w[row])
                total_inner[row] += result.n_iterations
                t[row], w[row] = result.t, result.w
                improved = reduced_nll[row] - result.value > self._config.tolerance
                stable = selection == previous_selection[row]
                reduced_nll[row] = result.value
                previous_selection[row] = selection
                if stable or not improved:
                    masks.active[row] = False
            masks.prune(reduced_nll, iteration, self._config.restart_prune_margin)

        # Batched DD refinement scoring: one full-objective pass ranks the
        # whole restart population on the comparable noisy-or NLL.
        full_values = full_objective.value(t, w)
        records: list[StartRecord] = []
        best: tuple[float, np.ndarray, np.ndarray] | None = None
        for row, (bag_id, instance_index, _, _) in enumerate(starts):
            full_nll = float(full_values[row])
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=full_nll,
                    n_iterations=int(total_inner[row]),
                    converged=not masks.pruned[row],
                    pruned=bool(masks.pruned[row]),
                )
            )
            if np.isfinite(full_nll) and (best is None or full_nll < best[0]):
                best = (full_nll, t[row].copy(), w[row].copy())
        return records, best

    # ------------------------------------------------------------------ #
    # EM internals                                                        #
    # ------------------------------------------------------------------ #

    def _run_em(
        self, bag_set: BagSet, t0: np.ndarray, w0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One restart: alternate representative selection and M-steps."""
        n_dims = bag_set.n_dims
        all_x, spans = self._stacked_bags(bag_set)
        all_sq = all_x * all_x
        t = np.asarray(t0, dtype=np.float64).copy()
        w = (
            np.ones(n_dims)
            if w0 is None
            else np.asarray(w0, dtype=np.float64).reshape(-1).copy()
        )
        previous_nll = np.inf
        previous_selection: tuple[int, ...] | None = None
        total_inner = 0

        for _ in range(self._config.max_em_iterations):
            selection = self._select_representatives(all_x, all_sq, spans, t, w)
            reduced = self._reduced_bag_set(bag_set, selection)
            objective = DiverseDensityObjective(reduced)
            result = self._scheme.optimize(objective, t, w0=w)
            total_inner += result.n_iterations
            t, w = result.t, result.w
            improved = previous_nll - result.value > self._config.tolerance
            stable = selection == previous_selection
            previous_nll = result.value
            previous_selection = selection
            if stable or not improved:
                break
        return t, w, previous_nll, total_inner

    @staticmethod
    def _stacked_bags(bag_set: BagSet) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """All bags' instances stacked in insertion order, plus bag spans."""
        matrices = [bag.instances for bag in bag_set.bags]
        spans: list[tuple[int, int]] = []
        offset = 0
        for matrix in matrices:
            spans.append((offset, offset + matrix.shape[0]))
            offset += matrix.shape[0]
        return np.vstack(matrices), spans

    @staticmethod
    def _select_representatives(
        all_x: np.ndarray,
        all_sq: np.ndarray,
        spans: list[tuple[int, int]],
        t: np.ndarray,
        w: np.ndarray,
    ) -> tuple[int, ...]:
        """E-step: index of the closest instance within each bag.

        Operates on the pre-stacked corpus (built once per restart) and
        evaluates through the batched distance kernel with ``R = 1`` so the
        sequential and lockstep engines pick identical representatives.
        """
        d2 = batched_weighted_distances(
            all_x, all_sq, t.reshape(1, -1), w.reshape(1, -1)
        )[0]
        return tuple(int(d2[s:e].argmin()) for s, e in spans)

    @staticmethod
    def _reduced_bag_set(bag_set: BagSet, selection: tuple[int, ...]) -> BagSet:
        """M-step input: every bag reduced to its representative instance."""
        reduced = BagSet()
        for bag, index in zip(bag_set.bags, selection):
            reduced.add(
                Bag(
                    instances=bag.instances[index : index + 1],
                    label=bag.label,
                    bag_id=bag.bag_id,
                )
            )
        return reduced
