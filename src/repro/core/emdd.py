"""EM-DD: expectation-maximisation Diverse Density (post-paper extension).

The paper's training cost is dominated by the noisy-or objective, whose
every evaluation touches *all* instances of *all* bags.  EM-DD (Zhang &
Goldman, NIPS 2001) — the best-known successor to the Diverse Density
algorithm this paper builds on — replaces the noisy-or with an
expectation-maximisation loop:

* **E-step**: with the current concept ``(t, w)``, select from every bag the
  single instance most likely to be the bag's representative (the closest
  one under the weighted distance);
* **M-step**: maximise the *single-instance* DD objective — each bag
  reduced to its representative — which is far cheaper and smoother;
* iterate until the selected representatives stop changing or the NLL
  stops improving.

The result is a drop-in alternative trainer with the same inputs and
outputs as :class:`~repro.core.diverse_density.DiverseDensityTrainer`; the
``bench_core_kernels`` numbers and the EM-DD tests show it reaches
comparable optima in a fraction of the evaluations on the paper's bag
shapes.  It reuses this package's objective, optimisers and restart
machinery unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bags.bag import Bag, BagSet
from repro.core.concept import LearnedConcept
from repro.core.diverse_density import StartRecord, TrainingResult
from repro.core.objective import DiverseDensityObjective
from repro.core.schemes import WeightScheme, make_scheme
from repro.errors import TrainingError


@dataclass(frozen=True)
class EMDDConfig:
    """Configuration of the EM-DD trainer.

    Attributes:
        inner_scheme: weight treatment used in each M-step (any of the four
            paper schemes by name, or a scheme object).
        beta / alpha: forwarded to the named scheme.
        max_em_iterations: cap on E/M alternations per restart.
        tolerance: stop when the NLL improves by less than this.
        max_inner_iterations: per-M-step solver cap.
        start_bag_subset: positive-bag restart subset (Section 4.3 carries
            over unchanged).
        start_instance_stride: restart thinning within each start bag.
        seed: RNG seed for the subset choice.
    """

    inner_scheme: WeightScheme | str = "identical"
    beta: float = 0.5
    alpha: float = 50.0
    max_em_iterations: int = 10
    tolerance: float = 1e-6
    max_inner_iterations: int = 60
    start_bag_subset: int | None = None
    start_instance_stride: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_em_iterations < 1:
            raise TrainingError(
                f"max_em_iterations must be >= 1, got {self.max_em_iterations}"
            )
        if self.tolerance < 0:
            raise TrainingError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.start_instance_stride < 1:
            raise TrainingError(
                f"start_instance_stride must be >= 1, got {self.start_instance_stride}"
            )

    def resolve_scheme(self) -> WeightScheme:
        """The M-step scheme object."""
        if isinstance(self.inner_scheme, WeightScheme):
            return self.inner_scheme
        return make_scheme(
            self.inner_scheme,
            beta=self.beta,
            alpha=self.alpha,
            max_iterations=self.max_inner_iterations,
        )


class EMDDTrainer:
    """EM-DD with multi-restart, mirroring the DD trainer's interface."""

    def __init__(self, config: EMDDConfig | None = None):
        self._config = config or EMDDConfig()
        self._scheme = self._config.resolve_scheme()

    @property
    def config(self) -> EMDDConfig:
        """The trainer configuration."""
        return self._config

    def train(self, bag_set: BagSet) -> TrainingResult:
        """Run EM-DD from every configured restart; keep the best concept.

        Raises:
            BagError: if the set has no positive bag.
            TrainingError: if no restart produced a finite optimum.
        """
        bag_set.validate_for_training()
        started_at = time.perf_counter()
        full_objective = DiverseDensityObjective(bag_set)

        best: tuple[float, np.ndarray, np.ndarray] | None = None
        records: list[StartRecord] = []
        for bag_id, instance_index, t0 in self._select_starts(bag_set):
            t, w, reduced_nll, n_iterations = self._run_em(bag_set, t0)
            # Score restarts on the *full* noisy-or objective so EM-DD
            # concepts are comparable with plain DD concepts.
            full_nll = full_objective.value(t, w)
            records.append(
                StartRecord(
                    bag_id=bag_id,
                    instance_index=instance_index,
                    value=full_nll,
                    n_iterations=n_iterations,
                    converged=True,
                )
            )
            if np.isfinite(full_nll) and (best is None or full_nll < best[0]):
                best = (full_nll, t, w)

        if best is None:
            raise TrainingError("no EM-DD restart produced a finite optimum")
        elapsed = time.perf_counter() - started_at
        nll, t, w = best
        concept = LearnedConcept(
            t=t,
            w=w,
            nll=nll,
            scheme=f"emdd({self._scheme.describe()})",
            metadata={
                "n_starts": len(records),
                "elapsed_seconds": elapsed,
                "n_positive_bags": bag_set.n_positive,
                "n_negative_bags": bag_set.n_negative,
            },
        )
        return TrainingResult(
            concept=concept,
            starts=tuple(records),
            n_starts=len(records),
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # EM internals                                                        #
    # ------------------------------------------------------------------ #

    def _run_em(
        self, bag_set: BagSet, t0: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One restart: alternate representative selection and M-steps."""
        n_dims = bag_set.n_dims
        t = np.asarray(t0, dtype=np.float64).copy()
        w = np.ones(n_dims)
        previous_nll = np.inf
        previous_selection: tuple[int, ...] | None = None
        total_inner = 0

        for _ in range(self._config.max_em_iterations):
            selection = self._select_representatives(bag_set, t, w)
            reduced = self._reduced_bag_set(bag_set, selection)
            objective = DiverseDensityObjective(reduced)
            result = self._scheme.optimize(objective, t, w0=w)
            total_inner += result.n_iterations
            t, w = result.t, result.w
            improved = previous_nll - result.value > self._config.tolerance
            stable = selection == previous_selection
            previous_nll = result.value
            previous_selection = selection
            if stable or not improved:
                break
        return t, w, previous_nll, total_inner

    @staticmethod
    def _select_representatives(
        bag_set: BagSet, t: np.ndarray, w: np.ndarray
    ) -> tuple[int, ...]:
        """E-step: index of the closest instance within each bag."""
        chosen = []
        for bag in bag_set.bags:
            diff = bag.instances - t
            distances = (diff * diff) @ w
            chosen.append(int(distances.argmin()))
        return tuple(chosen)

    @staticmethod
    def _reduced_bag_set(bag_set: BagSet, selection: tuple[int, ...]) -> BagSet:
        """M-step input: every bag reduced to its representative instance."""
        reduced = BagSet()
        for bag, index in zip(bag_set.bags, selection):
            reduced.add(
                Bag(
                    instances=bag.instances[index : index + 1],
                    label=bag.label,
                    bag_id=bag.bag_id,
                )
            )
        return reduced

    def _select_starts(self, bag_set: BagSet) -> list[tuple[str, int, np.ndarray]]:
        positive = list(bag_set.positive_bags)
        subset = self._config.start_bag_subset
        if subset is not None and subset < len(positive):
            rng = np.random.default_rng(self._config.seed)
            chosen = rng.choice(len(positive), size=subset, replace=False)
            positive = [positive[i] for i in sorted(chosen)]
        stride = self._config.start_instance_stride
        starts = []
        for bag in positive:
            for index in range(0, bag.n_instances, stride):
                starts.append((bag.bag_id, index, bag.instances[index].copy()))
        return starts
